"""Streaming poll latency — incremental maintenance vs rebuild-on-poll.

Quantifies the ISSUE 5 tentpole and writes it to ``BENCH_streaming.json``:
the same time-ordered stream is replayed through
:class:`repro.core.streaming.StreamingDetector` in both modes, polling
every ``batch`` events. ``mode="rebuild"`` (the legacy design) pays
O(|E| + matches) on the first poll after any add — so small batches, the
whole point of online detection, are quadratic over the stream.
``mode="incremental"`` grows the graph in place, extends matches only
through newly connected pairs, and pops only matches with closed windows.

Both replays must emit the identical instance multiset (asserted), and
``rebuild_count`` must stay 0 in incremental mode. Acceptance: ≥ 3×
poll-latency improvement at the smallest batch size.

Run directly to print the table and regenerate the JSON::

    PYTHONPATH=src python benchmarks/bench_streaming_incremental.py [--quick] [--out BENCH_streaming.json]

or through pytest for the regression assertions (the CI smoke step)::

    PYTHONPATH=src python -m pytest benchmarks/bench_streaming_incremental.py -q
"""

from __future__ import annotations

import random
import time
from collections import Counter
from typing import List, Tuple

import pytest

import harness

from repro.core.motif import Motif
from repro.core.streaming import StreamingDetector

BATCH_SIZES = (1, 16, 128)


def _stream(num_events: int, nodes: int, horizon: float, seed: int = 3):
    """Dense time-ordered stream (integer grid: tied timestamps occur)."""
    rng = random.Random(seed)
    stream: List[Tuple[int, int, float, float]] = []
    for _ in range(num_events):
        u, v = rng.sample(range(nodes), 2)
        stream.append(
            (u, v, float(rng.randrange(0, int(horizon))), float(rng.randint(1, 9)))
        )
    stream.sort(key=lambda e: e[2])
    return stream


def _replay(stream, motif: Motif, mode: str, batch: int) -> dict:
    detector = StreamingDetector(motif, mode=mode)
    emitted: Counter = Counter()
    add_seconds = 0.0
    poll_seconds = 0.0
    polls = 0
    worst_poll = 0.0
    for i, (src, dst, t, f) in enumerate(stream):
        start = time.perf_counter()
        detector.add(src, dst, t, f)
        add_seconds += time.perf_counter() - start
        if (i + 1) % batch == 0:
            start = time.perf_counter()
            out = detector.poll()
            elapsed = time.perf_counter() - start
            poll_seconds += elapsed
            worst_poll = max(worst_poll, elapsed)
            polls += 1
            emitted.update(inst.canonical_key() for inst in out)
    start = time.perf_counter()
    emitted.update(inst.canonical_key() for inst in detector.flush())
    flush_seconds = time.perf_counter() - start
    assert max(emitted.values(), default=1) == 1, "duplicate emission"
    snapshot = detector.metrics().snapshot()
    return {
        "metrics": {
            "counters": snapshot["counters"],
            "gauges": snapshot["gauges"],
        },
        "mode": mode,
        "batch": batch,
        "polls": polls,
        "add_seconds": add_seconds,
        "poll_seconds": poll_seconds,
        "flush_seconds": flush_seconds,
        "mean_poll_ms": 1e3 * poll_seconds / max(polls, 1),
        "worst_poll_ms": 1e3 * worst_poll,
        "rebuilds": detector.rebuild_count,
        "instances": sum(emitted.values()),
        "emitted": emitted,
    }


def run_benchmark(quick: bool = False) -> dict:
    num_events = 600 if quick else 2200
    horizon = num_events * 0.08
    motif = Motif.chain(3, delta=10.0, phi=2.0)
    stream = _stream(num_events, nodes=10, horizon=horizon)
    rows = []
    by_batch: dict = {}
    for batch in BATCH_SIZES:
        pair = {}
        for mode in ("incremental", "rebuild"):
            row = _replay(stream, motif, mode, batch)
            pair[mode] = row
            rows.append(row)
        assert (
            pair["incremental"]["emitted"] == pair["rebuild"]["emitted"]
        ), f"mode emissions diverge at batch={batch}"
        assert pair["incremental"]["rebuilds"] == 0
        by_batch[batch] = (
            pair["rebuild"]["poll_seconds"]
            / max(pair["incremental"]["poll_seconds"], 1e-12)
        )
    metrics = None
    for row in rows:
        row.pop("emitted")  # not JSON material
        # Keep one representative detector-metrics snapshot (incremental
        # mode at the smallest batch, the headline configuration) at the
        # report's top level instead of bloating every row.
        snap = row.pop("metrics")
        if row["mode"] == "incremental" and row["batch"] == min(BATCH_SIZES):
            metrics = snap
    return harness.make_report("bench_streaming_incremental", quick, {
        "num_events": num_events,
        "motif": motif.display_name,
        "delta": motif.delta,
        "phi": motif.phi,
        "batch_sizes": list(BATCH_SIZES),
        "rows": rows,
        "poll_speedup_by_batch": {str(b): s for b, s in by_batch.items()},
        "speedup_smallest_batch": by_batch[min(BATCH_SIZES)],
        "metrics": metrics,
    })


# ----------------------------------------------------------------------
# pytest entry points (regression assertions; CI runs these via --quick)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def report():
    return run_benchmark(quick=True)


def test_incremental_at_least_3x_at_small_batches(report):
    """The ISSUE 5 acceptance bar: ≥ 3× poll latency at small batches."""
    speedup = report["speedup_smallest_batch"]
    assert speedup >= 3.0, f"incremental only {speedup:.2f}x at batch=1"


def test_no_rebuilds_in_incremental_mode(report):
    for row in report["rows"]:
        if row["mode"] == "incremental":
            assert row["rebuilds"] == 0


def test_metrics_section_present(report):
    """ISSUE 7: benchmark reports carry a detector-metrics section."""
    counters = report["metrics"]["counters"]
    assert counters["stream.events"] == report["num_events"]
    assert counters["p1.expansions"] > 0
    assert counters["stream.heap_pushes"] >= counters["stream.heap_pops"]


def test_modes_agree(report):
    # run_benchmark asserts emission equality internally; reaching here
    # means both modes emitted the identical instance multiset at every
    # batch size.
    assert all(row["instances"] > 0 for row in report["rows"])


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced workload (seconds, used by the CI smoke step)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the report JSON to this path",
    )
    args = parser.parse_args()
    report_dict = run_benchmark(quick=args.quick)

    print(
        f"stream: {report_dict['num_events']} events, "
        f"{report_dict['motif']} delta={report_dict['delta']:g} "
        f"phi={report_dict['phi']:g}"
    )
    print(f"{'mode':12s} {'batch':>6s} {'polls':>6s} {'poll total':>11s} "
          f"{'mean':>9s} {'worst':>9s} {'rebuilds':>8s} {'instances':>9s}")
    for row in report_dict["rows"]:
        print(
            f"{row['mode']:12s} {row['batch']:6d} {row['polls']:6d} "
            f"{row['poll_seconds']:10.3f}s {row['mean_poll_ms']:7.2f}ms "
            f"{row['worst_poll_ms']:7.2f}ms {row['rebuilds']:8d} "
            f"{row['instances']:9d}"
        )
    for batch, speedup in report_dict["poll_speedup_by_batch"].items():
        print(f"  batch {batch:>4s}: incremental {speedup:.1f}x faster polls")
    counters = report_dict["metrics"]["counters"]
    print(
        f"metrics (incremental, batch={min(BATCH_SIZES)}): "
        f"{counters['p1.expansions']:.0f} expansions, "
        f"{counters['p1.watchlist_hits']:.0f} watch-list hits, "
        f"{counters['stream.heap_pushes']:.0f} heap pushes"
    )
    if args.out:
        harness.write_report(report_dict, args.out)
        print(f"[saved {args.out}]")


if __name__ == "__main__":
    main()
