"""Figure 14 — cost of the significance pipeline and its signal.

Benchmarks one unit of the Figure 14 protocol (permute flows + recount a
motif on the randomized graph) and asserts the headline result: the real
count exceeds every randomized count (empirical p-value 0) for a cascade
motif on each dataset.
"""

from __future__ import annotations

import pytest

from repro.core.counting import count_instances
from repro.core.motif import paper_motifs
from repro.significance.experiment import _transplant_matches, motif_significance
from repro.significance.randomization import permute_flows

FIG14_MOTIF = {"Bitcoin": "M(3,3)", "Facebook": "M(3,2)", "Passenger": "M(3,2)"}


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
def test_one_permutation_round(benchmark, engines, datasets, dataset):
    graph, delta, phi = datasets[dataset]
    engine = engines[dataset]
    motif = paper_motifs(delta, phi)[FIG14_MOTIF[dataset]]
    matches = engine.structural_matches(motif)

    def round_trip(seed):
        randomized = permute_flows(graph, seed)
        ts = randomized.to_time_series()
        return count_instances(_transplant_matches(matches, ts))

    count = benchmark(round_trip, 1)
    assert count >= 0


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
def test_real_count_beats_randomized(datasets, dataset):
    graph, delta, phi = datasets[dataset]
    name = FIG14_MOTIF[dataset]
    motif = paper_motifs(delta, phi)[name]
    [record] = motif_significance(
        graph, {name: motif}, num_random=5, seed=0
    )
    assert record.summary.p_value == 0.0
    assert record.real_count > max(record.random_counts)
