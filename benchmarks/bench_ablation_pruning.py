"""Ablation — φ-prefix pruning (line 16 of Algorithm 1) on vs off.

With pruning off, the recursion explores every prefix combination and
rejects sub-φ edge-sets only on complete assignments. Results are
identical (asserted); the benchmark quantifies the paper's claim that the
φ check "effectively prunes the search space".
"""

from __future__ import annotations

import pytest

from repro.core.motif import paper_motifs


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
@pytest.mark.parametrize("pruning", [True, False], ids=["pruning_on", "pruning_off"])
def test_phi_pruning(benchmark, engines, datasets, dataset, pruning):
    _, delta, phi = datasets[dataset]
    engine = engines[dataset]
    # Double the default φ: stronger constraint → more pruning opportunity.
    motif = paper_motifs(delta, phi * 2)["M(3,2)"]
    result = benchmark(
        engine.find_instances, motif, None, None, False, True, pruning
    )
    reference = engine.find_instances(motif, collect=False)
    assert result.count == reference.count
