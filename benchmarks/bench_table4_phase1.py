"""Table 4 — structural matches and phase-P1 runtime per motif.

Phase P1 is independent of δ and φ; the paper reports match counts and P1
time for the ten catalog motifs. The benchmark covers a chain/cycle subset
per dataset and asserts the paper's qualitative shape: within one motif
size, cycles have (far) fewer structural matches than chains.
"""

from __future__ import annotations

import pytest

from repro.core.matching import find_structural_matches
from repro.core.motif import paper_motifs

from conftest import BENCH_MOTIF_NAMES


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
@pytest.mark.parametrize("motif_name", BENCH_MOTIF_NAMES)
def test_phase1_matching(benchmark, datasets, dataset, motif_name):
    graph, delta, phi = datasets[dataset]
    ts = graph.to_time_series()
    motif = paper_motifs(delta, phi)[motif_name]
    matches = benchmark(find_structural_matches, ts, motif)
    assert isinstance(matches, list)


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
def test_cycles_have_fewer_matches_than_chains(datasets, dataset):
    graph, delta, phi = datasets[dataset]
    ts = graph.to_time_series()
    catalog = paper_motifs(delta, phi)
    chains = len(find_structural_matches(ts, catalog["M(3,2)"]))
    cycles = len(find_structural_matches(ts, catalog["M(3,3)"]))
    assert cycles < chains
