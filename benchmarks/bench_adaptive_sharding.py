"""Adaptive shard sizing benchmark — cost-model cuts vs event quantiles.

The ISSUE 9 acceptance workload: a timeline whose event density is
heavily skewed (a dense burst followed by a long sparse tail) makes
event-quantile partitioning cost-blind — shards with equal event counts
do wildly different amounts of phase-P2 work, because P2 cost grows with
the number of within-δ neighbours and the burst packs them tight. Three
measurements, written to ``BENCH_adaptive.json``:

1. **Adaptive vs quantile imbalance**: the same (motif, δ, φ) grid run
   through :class:`BatchRunner` twice — once on plain event-quantile
   cuts, once with the EWMA :class:`ShardCostModel` (probe wave on
   quantile cuts, remaining configurations on cost-balanced re-cuts).
   Acceptance: the adapted waves show **≥1.3× lower** shard imbalance
   ratio, with result multisets identical to the serial oracle.
2. **Profile/trace reconciliation**: a profiled parallel ``find`` whose
   span-attributed samples must name the same dominant phase as the
   tracer's span totals.
3. **Observability overhead**: profiler and flight recorder stay off by
   default; with counters *on* (and profiler/flight still off, as
   shipped) the search stays within the existing ≤1.5× budget.

Run directly to print the table and regenerate the JSON::

    PYTHONPATH=src python benchmarks/bench_adaptive_sharding.py [--quick] [--out BENCH_adaptive.json]

or through pytest for the regression assertions::

    PYTHONPATH=src python -m pytest benchmarks/bench_adaptive_sharding.py -v
"""

from __future__ import annotations

import random
import statistics
import time
from collections import Counter

import pytest

import harness

from repro import obs
from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph
from repro.parallel import ParallelFlowMotifEngine
from repro.parallel.batch import BatchRunner, MotifConfig

SHARDS = 8
HORIZON = 4000.0


def _skewed_graph(quick: bool) -> InteractionGraph:
    """Power-law density gradient: t = horizon·u², u uniform.

    Event density decays as ~t^(-1/2), so every event-quantile shard has
    a different local density — and since phase-P2 cost per event grows
    with the number of within-δ neighbours, equal-event shards do very
    unequal work. (A binary burst would not show this: its interior
    shards are all equally dense.)
    """
    rng = random.Random(7)
    g = InteractionGraph()
    nodes = [f"n{i}" for i in range(12)]
    events = 9000 if quick else 14000
    for _ in range(events):
        u, v = rng.sample(nodes, 2)
        t = HORIZON * rng.random() ** 2
        g.add_interaction(u, v, t, rng.uniform(0.5, 5.0))
    return g


def _grid():
    """Same-topology grid: one P1 pass per shard, P2 varies with δ/φ."""
    base = Motif.chain(3, delta=5.0, phi=0.0)
    return [
        MotifConfig(base),
        MotifConfig(base, phi=0.5),
        MotifConfig(base, phi=1.0),
        MotifConfig(base, phi=2.0),
        MotifConfig(base, delta=4.0),
        MotifConfig(base, delta=4.0, phi=1.0),
    ]


def _multisets(results):
    return [Counter(i.canonical_key() for i in r.instances) for r in results]


def _adapted_imbalance(results) -> float:
    """Median imbalance over the non-probe configurations (index ≥ 1).

    The adaptive runner's first configuration always runs on quantile
    cuts (it *is* the probe), so the comparison restricts both runs to
    the configurations the model had a chance to influence. The median
    (not the mean) damps one-off scheduler/GC spikes, which the max/mean
    per-config ratio is maximally sensitive to.
    """
    ratios = [
        r.shard_timings.imbalance_ratio
        for r in results[1:]
        if r.shard_timings is not None
    ]
    return statistics.median(ratios) if ratios else 1.0


def run_adaptive_benchmark(quick: bool) -> dict:
    graph = _skewed_graph(quick)
    configs = _grid()

    # Correctness pass (untimed): full instance multisets of both
    # partitioners against the serial oracle. Materializing tens of
    # thousands of instances triggers GC pauses on random shards, so the
    # imbalance measurement below runs separately with collect=False.
    serial_results = BatchRunner(graph, jobs=1).run(configs)
    serial_keys = _multisets(serial_results)
    results_identical = (
        _multisets(
            BatchRunner(graph, jobs=1, shards=SHARDS, backend="serial").run(
                configs
            )
        )
        == serial_keys
        and _multisets(
            BatchRunner(
                graph, jobs=1, shards=SHARDS, backend="serial", adaptive=True
            ).run(configs)
        )
        == serial_keys
    )

    # Timing pass (count-only): the actual imbalance comparison.
    quantile_runner = BatchRunner(
        graph, jobs=1, shards=SHARDS, backend="serial"
    )
    quantile_results = quantile_runner.run(configs, collect=False)

    adaptive_runner = BatchRunner(
        graph, jobs=1, shards=SHARDS, backend="serial", adaptive=True
    )
    adaptive_results = adaptive_runner.run(configs, collect=False)

    quantile_imbalance = _adapted_imbalance(quantile_results)
    adaptive_imbalance = _adapted_imbalance(adaptive_results)
    stats = adaptive_runner.last_stats
    return {
        "num_events": graph.num_edges,
        "num_configs": len(configs),
        "shards": SHARDS,
        "instances_found": [r.count for r in serial_results],
        "results_identical": results_identical,
        "quantile_imbalance": quantile_imbalance,
        "adaptive_imbalance": adaptive_imbalance,
        "improvement": quantile_imbalance / max(adaptive_imbalance, 1e-12),
        "probe_imbalance": stats.get("imbalance_before", 0.0),
        "adapted_wave_imbalance": stats.get("imbalance_after", 0.0),
        "prediction_error": stats.get("prediction_error", 0.0),
    }


def run_profile_benchmark(quick: bool) -> dict:
    """Profiled parallel find: samples vs tracer span totals must agree
    on the dominant phase (the ISSUE 9 reconciliation bar)."""
    graph = _skewed_graph(quick)
    motif = Motif.chain(3, delta=5.0, phi=0.0)
    with obs.observe(trace=True, profile=True) as observation:
        with ParallelFlowMotifEngine(
            graph, jobs=2, shards=4, backend="process"
        ) as engine:
            count = engine.find_instances(motif, collect=False).count
    profile = observation.profile()
    span_seconds: dict = {}
    for span in observation.spans():
        name = span["name"]
        if name.startswith(("p1.", "p2.")):
            duration = (span["end"] or span["start"]) - span["start"]
            span_seconds[name] = span_seconds.get(name, 0.0) + duration
    dominant_by_time = (
        max(span_seconds.items(), key=lambda kv: kv[1])[0]
        if span_seconds
        else None
    )
    dominant_by_samples = profile.dominant_span() if profile else None
    return {
        "instances_found": count,
        "profile_hz": profile.hz if profile else 0.0,
        "profile_samples": profile.samples if profile else 0,
        "samples_by_span": dict(profile.by_span) if profile else {},
        "span_seconds": span_seconds,
        "dominant_by_samples": dominant_by_samples,
        "dominant_by_time": dominant_by_time,
        "dominant_agrees": (
            dominant_by_samples is not None
            and dominant_by_samples == dominant_by_time
        ),
    }


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_overhead_benchmark(quick: bool) -> dict:
    """Counters-on vs all-off on the serial search path.

    "Off" is the shipped default — which now includes the profiler's
    and flight recorder's activation predicates; neither is armed. "On"
    additionally maintains live counters (profiler/flight still off, as
    in production). The runs interleave so clock drift cancels.
    """
    graph = _skewed_graph(quick).to_time_series()
    motif = Motif.chain(3, delta=5.0, phi=0.0)
    engine = FlowMotifEngine(graph)
    reps = 3
    off: list = []
    on: list = []
    for _ in range(reps):
        off.append(_timed(lambda: engine.find_instances(motif, collect=False)))
        with obs.observe(trace=False):
            on.append(
                _timed(lambda: engine.find_instances(motif, collect=False))
            )
    off_seconds = min(off)
    on_seconds = min(on)
    return {
        "reps": reps,
        "off_seconds": off_seconds,
        "on_seconds": on_seconds,
        "on_over_off": on_seconds / max(off_seconds, 1e-12),
    }


def run_benchmark(quick: bool = False) -> dict:
    return harness.make_report(
        "bench_adaptive_sharding",
        quick,
        {
            "adaptive": run_adaptive_benchmark(quick),
            "profile": run_profile_benchmark(quick),
            "overhead": run_overhead_benchmark(quick),
        },
    )


# ----------------------------------------------------------------------
# pytest entry points (regression assertions; CI runs --quick via main)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def report():
    return run_benchmark(quick=True)


def test_adaptive_lowers_imbalance_at_least_1_3x(report):
    """The ISSUE 9 acceptance bar."""
    improvement = report["adaptive"]["improvement"]
    assert improvement >= 1.3, (
        f"adaptive cuts only {improvement:.2f}x better than quantile"
    )


def test_adaptive_results_identical_to_serial(report):
    assert report["adaptive"]["results_identical"]
    assert all(c > 0 for c in report["adaptive"]["instances_found"])


def test_profile_reconciles_with_tracer(report):
    profile = report["profile"]
    assert profile["profile_samples"] > 0
    assert profile["dominant_agrees"], (
        f"samples say {profile['dominant_by_samples']}, "
        f"tracer says {profile['dominant_by_time']}"
    )


def test_observability_overhead_within_budget(report):
    ratio = report["overhead"]["on_over_off"]
    assert ratio < 1.5, f"counters-on search {ratio:.2f}x over off"


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced workload (seconds, used by the CI smoke step)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the report JSON to this path",
    )
    args = parser.parse_args()
    report_dict = run_benchmark(quick=args.quick)

    adaptive = report_dict["adaptive"]
    print(
        f"adaptive sharding ({adaptive['num_events']} events, "
        f"{adaptive['num_configs']} configs, {adaptive['shards']} shards):\n"
        f"  quantile imbalance {adaptive['quantile_imbalance']:.3f}, "
        f"adaptive {adaptive['adaptive_imbalance']:.3f} "
        f"({adaptive['improvement']:.2f}x better), "
        f"prediction error {adaptive['prediction_error']:.3f}, "
        f"identical results: {adaptive['results_identical']}"
    )
    profile = report_dict["profile"]
    print(
        f"profiled parallel find: {profile['profile_samples']} samples "
        f"@ {profile['profile_hz']:g} Hz, dominant by samples "
        f"{profile['dominant_by_samples']} vs by tracer "
        f"{profile['dominant_by_time']} "
        f"(agree: {profile['dominant_agrees']})"
    )
    overhead = report_dict["overhead"]
    print(
        f"observability overhead: off {overhead['off_seconds']:.3f}s, "
        f"counters-on {overhead['on_seconds']:.3f}s "
        f"({overhead['on_over_off']:.2f}x)"
    )
    if args.out:
        harness.write_report(report_dict, args.out)
        print(f"[saved {args.out}]")


if __name__ == "__main__":
    main()
