"""Figure 10 — phase-2 cost as φ grows (δ at the dataset default).

The paper's shape: both counts and runtime fall as φ rises, because the
φ-check prunes partial instances early (line 16 of Algorithm 1).
"""

from __future__ import annotations

import pytest

from repro.core.motif import paper_motifs

PHI_FACTORS = [0.0, 1.0, 2.0, 4.0]


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
@pytest.mark.parametrize("factor", PHI_FACTORS, ids=lambda f: f"phi_x{f:g}")
def test_find_instances_vs_phi(benchmark, engines, datasets, dataset, factor):
    _, delta, phi = datasets[dataset]
    engine = engines[dataset]
    motif = paper_motifs(delta, phi * factor)["M(3,2)"]
    result = benchmark(engine.find_instances, motif, collect=False)
    assert result.count >= 0


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
def test_counts_drop_with_phi(engines, datasets, dataset):
    _, delta, phi = datasets[dataset]
    engine = engines[dataset]
    motif = paper_motifs(delta, phi)["M(3,2)"]
    loose = engine.find_instances(motif, phi=0.0, collect=False).count
    strict = engine.find_instances(motif, phi=phi * 4, collect=False).count
    assert strict <= loose
