"""Figure 9 — phase-2 cost as δ grows (φ at the dataset default).

One benchmark per (dataset, δ grid point) on the M(3,2) chain; the match
cache is warm, so the measurement isolates phase P2 — the part Figure 9's
runtime curves are about. A non-benchmark check asserts the paper's shape:
instance counts grow with δ.
"""

from __future__ import annotations

import pytest

DELTA_FACTORS = [1 / 3, 2 / 3, 1.0, 4 / 3, 5 / 3]


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
@pytest.mark.parametrize("factor", DELTA_FACTORS, ids=lambda f: f"delta_x{f:.2f}")
def test_find_instances_vs_delta(benchmark, engines, datasets, dataset, factor):
    _, delta, phi = datasets[dataset]
    engine = engines[dataset]
    from repro.core.motif import paper_motifs

    motif = paper_motifs(delta * factor, phi)["M(3,2)"]

    result = benchmark(engine.find_instances, motif, collect=False)
    assert result.count >= 0


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
def test_counts_grow_with_delta(engines, datasets, dataset):
    from repro.core.motif import paper_motifs

    _, delta, phi = datasets[dataset]
    engine = engines[dataset]
    motif = paper_motifs(delta, phi)["M(3,2)"]
    small = engine.find_instances(motif, delta=delta / 3, collect=False).count
    large = engine.find_instances(motif, delta=delta * 5 / 3, collect=False).count
    assert large >= small
