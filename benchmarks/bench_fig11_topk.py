"""Figure 11 — top-k search cost and the k-th instance's flow.

Benchmarks the floating-threshold top-k search for growing k and asserts
the figure's shape: the k-th best flow is non-increasing in k.
"""

from __future__ import annotations

import pytest

from repro.core.motif import paper_motifs
from repro.core.topk import top_k_instances

K_VALUES = [1, 10, 100]


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
@pytest.mark.parametrize("k", K_VALUES)
def test_top_k_search(benchmark, engines, datasets, dataset, k):
    _, delta, phi = datasets[dataset]
    engine = engines[dataset]
    motif = paper_motifs(delta, 0.0)["M(3,2)"]
    matches = engine.structural_matches(motif)
    top = benchmark(top_k_instances, matches, k, delta)
    assert len(top) <= k


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
def test_kth_flow_non_increasing(engines, datasets, dataset):
    _, delta, phi = datasets[dataset]
    engine = engines[dataset]
    motif = paper_motifs(delta, 0.0)["M(3,2)"]
    matches = engine.structural_matches(motif)
    flows = [i.flow for i in top_k_instances(matches, 100, delta)]
    assert flows == sorted(flows, reverse=True)
