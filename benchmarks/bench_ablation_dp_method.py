"""Ablation — the paper's O(τ²) DP recurrence vs the sub-quadratic variants.

All three evaluate Equation 2 exactly (asserted): ``bisect`` exploits the
monotonicity of the two min() arguments in the split point; ``fused``
additionally exploits monotonicity of the crossing index in the window
endpoint, replacing the per-cell binary search with one amortized O(τ)
two-pointer sweep per layer. The gap widens with event density per
window, so Passenger (densest series) benefits most; see
``benchmarks/bench_columnar_store.py`` for the kernel-only comparison.
"""

from __future__ import annotations

import pytest

from repro.core.dp import top_one_instance
from repro.core.motif import paper_motifs


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
@pytest.mark.parametrize("method", ["quadratic", "bisect", "fused"])
def test_dp_method(benchmark, engines, datasets, dataset, method):
    _, delta, phi = datasets[dataset]
    engine = engines[dataset]
    motif = paper_motifs(delta, 0.0)["M(3,2)"]
    matches = engine.structural_matches(motif)
    best = benchmark(top_one_instance, matches, delta, method, False)
    other = "bisect" if method == "quadratic" else "quadratic"
    reference = top_one_instance(matches, delta, other, False)
    assert best.flow == pytest.approx(reference.flow)
