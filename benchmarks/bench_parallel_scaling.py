"""Parallel scaling — δ-overlap sharded search vs. the serial engine.

Measures wall-clock speedup of :class:`repro.parallel.
ParallelFlowMotifEngine` (process backend) over the serial
:class:`~repro.core.engine.FlowMotifEngine` on a synthetic Bitcoin-like
graph large enough to amortize pool startup, and charts parallel
efficiency from the per-shard :class:`~repro.utils.timing.
ShardTimingReport` (critical path, work sum, imbalance ratio).

Run directly for a speedup table::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py [--scale 16]

or through pytest (the >1.5× assertion is skipped on single-core hosts,
where process parallelism cannot pay for itself)::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_scaling.py -v
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.motif import paper_motifs
from repro.datasets.synthetic import DATASET_GENERATORS
from repro.parallel import ParallelFlowMotifEngine

#: Dataset multiplier: ~30k edges, ~0.7 s serial — enough to amortize a
#: 4-worker pool start while keeping the benchmark laptop-friendly.
SCALE = float(os.environ.get("BENCH_PARALLEL_SCALE", "16"))
JOB_COUNTS = [1, 2, 4]


def _build():
    generator, delta, phi = DATASET_GENERATORS["Bitcoin"]
    graph = generator(scale=SCALE, seed=0)
    motif = paper_motifs(delta, phi)["M(3,2)"]
    return graph, motif


def _timed_serial(graph, motif):
    # Default two-phase configuration — the exact search the parallel
    # engine mirrors (the fused use_cache=False pipeline is a different
    # algorithm and is benchmarked in bench_fig8_join_vs_twophase).
    engine = FlowMotifEngine(graph)
    start = time.perf_counter()
    result = engine.find_instances(motif, collect=False)
    return result, time.perf_counter() - start


def _timed_parallel(graph, motif, jobs):
    engine = ParallelFlowMotifEngine(graph, jobs=jobs, shards=jobs, backend="process")
    start = time.perf_counter()
    result = engine.find_instances(motif, collect=False)
    return result, time.perf_counter() - start


@pytest.fixture(scope="module")
def workload():
    return _build()


def test_parallel_count_matches_serial(workload):
    graph, motif = workload
    serial, _ = _timed_serial(graph, motif)
    parallel, _ = _timed_parallel(graph, motif, jobs=2)
    assert parallel.count == serial.count


def test_shard_report_covers_all_shards(workload):
    graph, motif = workload
    parallel, _ = _timed_parallel(graph, motif, jobs=4)
    report = parallel.shard_timings
    assert report.num_shards == 4
    assert report.imbalance_ratio >= 1.0
    assert 0.0 < report.max_seconds <= report.sum_seconds


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="process-pool speedup needs more than one CPU core",
)
def test_speedup_at_jobs_4(workload):
    """The ISSUE acceptance bar: >1.5× wall-clock speedup at jobs=4."""
    graph, motif = workload
    _, serial_seconds = _timed_serial(graph, motif)
    best = min(_timed_parallel(graph, motif, jobs=4)[1] for _ in range(2))
    assert serial_seconds / best > 1.5, (
        f"speedup {serial_seconds / best:.2f}x "
        f"(serial {serial_seconds:.3f}s, jobs=4 {best:.3f}s)"
    )


def main() -> None:
    """Print the scaling table (serial baseline, then each job count)."""
    import argparse

    global SCALE
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=SCALE)
    args = parser.parse_args()
    SCALE = args.scale
    graph, motif = _build()
    print(
        f"graph: {graph.num_edges} edges, motif {motif.display_name}, "
        f"{os.cpu_count()} cores"
    )
    serial, serial_seconds = _timed_serial(graph, motif)
    print(
        f"serial         {serial_seconds:8.3f}s  "
        f"({serial.count} instances)"
    )
    for jobs in JOB_COUNTS:
        result, seconds = _timed_parallel(graph, motif, jobs)
        report = result.shard_timings
        print(
            f"jobs={jobs} shards={jobs}  {seconds:8.3f}s  "
            f"speedup {serial_seconds / seconds:5.2f}x  "
            f"critical-path {report.max_seconds:6.3f}s  "
            f"work {report.sum_seconds:6.3f}s  "
            f"imbalance {report.imbalance_ratio:4.2f}"
        )
        assert result.count == serial.count, "parallel/serial count mismatch"


if __name__ == "__main__":
    main()
