"""Figure 12 — phase-2 time of generic top-k (k=1) vs the DP module.

The paper reports the DP module cutting phase-2 time by 20–40 %. Matches
come from the warm cache, so both measurements are pure phase 2, exactly
like the paper's bar charts. A correctness check asserts both methods
agree on the top-1 flow.
"""

from __future__ import annotations

import pytest

from repro.core.dp import top_one_instance
from repro.core.motif import paper_motifs
from repro.core.topk import top_k_instances

FIG12_MOTIFS = ["M(3,2)", "M(3,3)"]


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
@pytest.mark.parametrize("motif_name", FIG12_MOTIFS)
def test_top1_via_topk(benchmark, engines, datasets, dataset, motif_name):
    _, delta, phi = datasets[dataset]
    engine = engines[dataset]
    motif = paper_motifs(delta, 0.0)[motif_name]
    matches = engine.structural_matches(motif)
    top = benchmark(top_k_instances, matches, 1, delta)
    assert len(top) <= 1


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
@pytest.mark.parametrize("motif_name", FIG12_MOTIFS)
def test_top1_via_dp(benchmark, engines, datasets, dataset, motif_name):
    _, delta, phi = datasets[dataset]
    engine = engines[dataset]
    motif = paper_motifs(delta, 0.0)[motif_name]
    matches = engine.structural_matches(motif)
    best = benchmark(
        top_one_instance, matches, delta, "auto", False
    )
    top = top_k_instances(matches, 1, delta)
    top_flow = top[0].flow if top else 0.0
    assert best.flow == pytest.approx(top_flow)
