"""Ablation — shared-prefix phase-2 evaluation (Section 7 future work).

Structural matches sharing walk prefixes (common around hubs and cycles)
are evaluated together in a series-identity trie. Output equality with
per-match evaluation is asserted; the benchmark reports the saving.
"""

from __future__ import annotations

import pytest

from repro.core.enumeration import find_instances
from repro.core.motif import paper_motifs
from repro.core.prefix_sharing import find_instances_shared


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
@pytest.mark.parametrize("mode", ["per_match", "shared_prefix"])
def test_prefix_sharing(benchmark, engines, datasets, dataset, mode):
    _, delta, phi = datasets[dataset]
    engine = engines[dataset]
    motif = paper_motifs(delta, phi)["M(3,2)"]
    matches = engine.structural_matches(motif)
    if mode == "per_match":
        instances = benchmark(find_instances, matches)
    else:
        instances = benchmark(find_instances_shared, matches)
    assert len(instances) == len(find_instances(matches))
