"""Table 3 — dataset generation and statistics.

Regenerates the Table 3 row for each synthetic stand-in and benchmarks the
two pipeline stages a user pays on load: generation (or parsing) and the
statistics pass.
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import DATASET_GENERATORS
from repro.graph.statistics import dataset_statistics

from conftest import BENCH_SCALE, BENCH_SEED


@pytest.mark.parametrize("name", ["Bitcoin", "Facebook", "Passenger"])
def test_generate_dataset(benchmark, name):
    generator, _, _ = DATASET_GENERATORS[name]
    graph = benchmark(generator, scale=BENCH_SCALE, seed=BENCH_SEED)
    assert graph.num_edges > 0


@pytest.mark.parametrize("name", ["Bitcoin", "Facebook", "Passenger"])
def test_dataset_statistics(benchmark, datasets, name):
    graph, _, _ = datasets[name]
    stats = benchmark(dataset_statistics, graph)
    # Table 3's qualitative shape at any scale:
    if name == "Bitcoin":
        assert stats.average_flow > 2.0  # BTC-sized flows
        assert stats.edges_per_pair < 2.5  # rare parallel edges
    if name == "Facebook":
        assert 1.0 <= stats.average_flow <= 6.0  # bucketed counts
    if name == "Passenger":
        assert stats.average_flow < 3.0  # 1-6 passengers, mostly 1
        assert stats.num_nodes < 100  # small dense zone set
