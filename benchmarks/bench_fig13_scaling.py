"""Figure 13 — scalability over growing time-prefix samples.

Benchmarks the full two-phase search on each prefix sample (B1..B5-style
fractions of the covered period) and asserts the paper's shape: work grows
with the sample, and runtime grows no faster than the data.
"""

from __future__ import annotations

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.motif import paper_motifs
from repro.graph.transform import time_prefix

FRACTIONS = [0.25, 0.5, 1.0]


def _search(subgraph, motif):
    engine = FlowMotifEngine(subgraph)
    return engine.find_instances(motif, collect=False, use_cache=False).count


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
@pytest.mark.parametrize("fraction", FRACTIONS, ids=lambda f: f"prefix_{f:g}")
def test_search_on_prefix_sample(benchmark, datasets, dataset, fraction):
    graph, delta, phi = datasets[dataset]
    subgraph = graph if fraction >= 1.0 else time_prefix(graph, fraction)
    motif = paper_motifs(delta, phi)["M(3,2)"]
    count = benchmark(_search, subgraph, motif)
    assert count >= 0


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
def test_prefix_samples_grow(datasets, dataset):
    graph, delta, phi = datasets[dataset]
    sizes = [
        time_prefix(graph, f).num_edges if f < 1.0 else graph.num_edges
        for f in FRACTIONS
    ]
    assert sizes == sorted(sizes)
