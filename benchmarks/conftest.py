"""Shared fixtures for the benchmark suite.

Benchmarks run on reduced-scale datasets (``BENCH_SCALE``) so the whole
suite finishes in minutes on a laptop while preserving every qualitative
shape the paper reports. Graphs and engines are session-scoped: dataset
generation and phase-P1 match caches are shared across benchmarks, exactly
like the paper's experiments reuse one loaded dataset.
"""

from __future__ import annotations

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.motif import paper_motifs
from repro.datasets.synthetic import DATASET_GENERATORS

BENCH_SCALE = 0.35
BENCH_SEED = 0

#: Motifs used by per-motif benchmarks: one chain and one cycle per size
#: keeps the suite fast while spanning the catalog's difficulty range.
BENCH_MOTIF_NAMES = ["M(3,2)", "M(3,3)", "M(4,4)A", "M(5,4)"]


def _build(name):
    generator, delta, phi = DATASET_GENERATORS[name]
    graph = generator(scale=BENCH_SCALE, seed=BENCH_SEED)
    return graph, delta, phi


@pytest.fixture(scope="session")
def bitcoin():
    return _build("Bitcoin")


@pytest.fixture(scope="session")
def facebook():
    return _build("Facebook")


@pytest.fixture(scope="session")
def passenger():
    return _build("Passenger")


@pytest.fixture(scope="session")
def datasets(bitcoin, facebook, passenger):
    return {
        "Bitcoin": bitcoin,
        "Facebook": facebook,
        "Passenger": passenger,
    }


@pytest.fixture(scope="session")
def engines(datasets):
    """One engine per dataset with a warmed structural-match cache."""
    result = {}
    for name, (graph, delta, phi) in datasets.items():
        engine = FlowMotifEngine(graph)
        for motif in paper_motifs(delta, phi).values():
            engine.structural_matches(motif)
        result[name] = engine
    return result


def bench_motifs(delta, phi, names=None):
    """The benchmark motif subset bound to the dataset's constraints."""
    catalog = paper_motifs(delta, phi)
    return {
        name: catalog[name] for name in (names or BENCH_MOTIF_NAMES)
    }
