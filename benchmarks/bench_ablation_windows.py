"""Ablation — the window skip rule of Section 4 on vs off.

Without the rule, every first-edge event anchors a window and the
enumerator emits redundant non-maximal instances (the paper's [13,23]
example). The benchmark measures the extra work; the companion check
verifies that with the rule the output is exactly the maximal subset.
"""

from __future__ import annotations

import pytest

from repro.core.instance import is_maximal
from repro.core.motif import paper_motifs


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
@pytest.mark.parametrize("skip_rule", [True, False], ids=["skip_on", "skip_off"])
def test_window_skip_rule(benchmark, engines, datasets, dataset, skip_rule):
    _, delta, phi = datasets[dataset]
    engine = engines[dataset]
    motif = paper_motifs(delta, phi)["M(3,2)"]
    result = benchmark(
        engine.find_instances, motif, None, None, False, skip_rule
    )
    assert result.count >= 0


@pytest.mark.parametrize("dataset", ["Facebook"])
def test_skip_rule_output_is_maximal_subset(engines, datasets, dataset):
    _, delta, phi = datasets[dataset]
    engine = engines[dataset]
    motif = paper_motifs(delta, phi)["M(3,2)"]
    with_rule = {
        i.canonical_key()
        for i in engine.find_instances(motif).instances
    }
    without = engine.find_instances(motif, skip_rule=False).instances
    without_keys = {i.canonical_key() for i in without}
    assert with_rule <= without_keys
    extras = [i for i in without if i.canonical_key() not in with_rule]
    assert all(not is_maximal(i, delta) for i in extras)
