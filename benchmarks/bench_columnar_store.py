"""Columnar store benchmark — fused DP kernels and zero-copy fan-out.

Quantifies the two wins of ISSUE 3 and writes them to
``BENCH_columnar.json``:

1. **DP kernels** (the ablation workload of ``bench_ablation_dp_method``,
   taken per window so the incumbent pruning cannot hide the kernel): the
   Eq. 2 recurrence over every maximal window of a dense synthetic match
   set, comparing the paper's ``quadratic`` method, the ``bisect``
   crossing search, and the ``fused`` two-pointer sweep — on both
   list-backed and columnar graphs. Acceptance: fused ≥ 2× over
   quadratic.
2. **Process fan-out**: bytes a worker spawn must deserialize — pickled
   shard slices versus the ``(shm_name, shard bounds)`` zero-copy
   envelope — plus the one-off shared-memory export time and the
   worker-side attach + re-materialize time. Acceptance: payload ≥ 10×
   smaller.

Run directly to print the table and regenerate the JSON::

    PYTHONPATH=src python benchmarks/bench_columnar_store.py [--quick] [--out BENCH_columnar.json]

or through pytest for the regression assertions::

    PYTHONPATH=src python -m pytest benchmarks/bench_columnar_store.py -v

``--quick`` (also used by the CI smoke step) shrinks the workload to a
few seconds while still exercising every measured path.
"""

from __future__ import annotations

import pickle
import random
import time
from typing import Tuple

import pytest

import harness

from repro.core.dp import max_flow_in_window, top_one_instance
from repro.core.matching import find_structural_matches
from repro.core.motif import Motif
from repro.core.windows import iter_maximal_windows
from repro.graph.columnar import ColumnStore
from repro.graph.interaction import InteractionGraph
from repro.parallel import ParallelFlowMotifEngine
from repro.parallel.partition import materialize_shard, partition_time_range

DP_METHODS = ("quadratic", "bisect", "fused")


def _dense_graph(num_events: int, nodes: int = 4, horizon: float = 300.0):
    """Few nodes + many events → large τ per window (the DP-bound regime
    of Rocha & Blondel-scale interaction data)."""
    rng = random.Random(7)
    g = InteractionGraph()
    for _ in range(num_events):
        u, v = rng.sample(range(nodes), 2)
        g.add_interaction(u, v, rng.uniform(0.0, horizon), rng.uniform(0.5, 5.0))
    return g


def _fanout_graph(num_events: int, nodes: int = 15, horizon: float = 400.0):
    rng = random.Random(11)
    g = InteractionGraph()
    for _ in range(num_events):
        u, v = rng.sample(range(nodes), 2)
        g.add_interaction(f"n{u}", f"n{v}", rng.uniform(0.0, horizon), rng.uniform(0.5, 6.0))
    return g


def _dp_workload(quick: bool):
    """(series-backed match windows, columnar match windows, delta)."""
    # Quick mode keeps the event density (and therefore τ per window —
    # the regime the kernels differ in) by shrinking the horizon along
    # with the event count.
    g = _dense_graph(1500 if quick else 6000, horizon=75.0 if quick else 300.0)
    ts = g.to_time_series()
    delta = 40.0
    motif = Motif.chain(3, delta=delta, phi=0)
    matches = find_structural_matches(ts, motif)[: 3 if quick else 6]
    columnar = ColumnStore.from_graph(ts).to_graph()
    columnar_matches = find_structural_matches(columnar, motif)[: len(matches)]
    windows = [
        (m, w)
        for m in matches
        for w in iter_maximal_windows(m.series[0], m.series[-1], delta)
    ]
    columnar_windows = [
        (m, w)
        for m in columnar_matches
        for w in iter_maximal_windows(m.series[0], m.series[-1], delta)
    ]
    return windows, columnar_windows, delta, matches


def _time_dp(windows, method: str) -> Tuple[float, float]:
    start = time.perf_counter()
    checksum = 0.0
    for match, window in windows:
        checksum += max_flow_in_window(match.series, window, method=method)[0]
    elapsed = time.perf_counter() - start
    return elapsed, checksum


def run_dp_benchmark(quick: bool) -> dict:
    windows, columnar_windows, delta, matches = _dp_workload(quick)
    result: dict = {"num_windows": len(windows), "delta": delta}
    checksums = {}
    for backing, load in (("list", windows), ("columnar", columnar_windows)):
        seconds = {}
        for method in DP_METHODS:
            seconds[method], checksums[(backing, method)] = _time_dp(load, method)
        result[f"{backing}_seconds"] = seconds
    reference = checksums[("list", "quadratic")]
    for key, value in checksums.items():
        assert abs(value - reference) < 1e-6 * max(1.0, abs(reference)), key
    fused = min(
        result["list_seconds"]["fused"], result["columnar_seconds"]["fused"]
    )
    result["speedup_quadratic_over_fused"] = (
        result["list_seconds"]["quadratic"] / fused
    )
    result["speedup_bisect_over_fused"] = (
        result["list_seconds"]["bisect"] / fused
    )
    # The match-level ablation entry point (incumbent pruning active).
    start = time.perf_counter()
    top = top_one_instance(matches, delta=delta, method="fused", reconstruct=False)
    result["top_one_fused_seconds"] = time.perf_counter() - start
    result["top_one_flow"] = top.flow
    return result


def run_fanout_benchmark(quick: bool) -> dict:
    g = _fanout_graph(1500 if quick else 6000)
    ts = g.to_time_series()
    delta, phi, shards = 40.0, 2.0, 4
    motif = Motif.chain(3, delta=delta, phi=phi)

    pickled_shards = partition_time_range(ts, shards, delta)
    pickled_bytes = sum(
        len(pickle.dumps(("search", s, motif, delta, phi, True, True, True)))
        for s in pickled_shards
    )

    start = time.perf_counter()
    store = ColumnStore.from_graph(ts)
    shared = store.to_shared()
    export_seconds = time.perf_counter() - start
    try:
        light_shards = partition_time_range(ts, shards, delta, materialize=False)
        zero_copy_bytes = sum(
            len(
                pickle.dumps(
                    ("columnar", shared.shm_name, s.bounds, "search",
                     motif, delta, phi, True, True, True)
                )
            )
            for s in light_shards
        )
        # Worker-side cost the payload saving buys: attach + re-slice.
        start = time.perf_counter()
        attached = ColumnStore.attach(shared.shm_name)
        attached_graph = attached.to_graph()
        attach_seconds = time.perf_counter() - start
        start = time.perf_counter()
        for s in light_shards:
            materialize_shard(attached_graph, s.bounds)
        materialize_seconds = time.perf_counter() - start
        del attached_graph  # release the series views pinning the mapping
        attached.close()
    finally:
        shared.close(unlink=True)

    # End-to-end sanity: zero-copy process run equals the serial count.
    with ParallelFlowMotifEngine(g, jobs=2, shards=shards, backend="process") as engine:
        parallel_count = engine.find_instances(motif, collect=False).count
    from repro.core.engine import FlowMotifEngine

    serial_count = FlowMotifEngine(g).find_instances(motif, collect=False).count
    assert parallel_count == serial_count

    return {
        "num_events": ts.num_events,
        "num_shards": shards,
        "pickled_payload_bytes": pickled_bytes,
        "zero_copy_payload_bytes": zero_copy_bytes,
        "payload_reduction": pickled_bytes / zero_copy_bytes,
        "shared_export_seconds": export_seconds,
        "attach_seconds": attach_seconds,
        "materialize_all_shards_seconds": materialize_seconds,
        "store_bytes": store.nbytes,
        "instances_found": parallel_count,
    }


def run_obs_benchmark(quick: bool) -> dict:
    """Observability overhead on the fused DP sweep: off vs on.

    "Off" is the shipped default — every kernel call site pays exactly one
    ``metrics.active()`` predicate. "On" additionally maintains live
    counters. The runs interleave so clock drift cancels; the reported
    counters double as a determinism check (windows_scanned must equal
    the workload's window count exactly).
    """
    from repro import obs

    windows, _columnar_windows, _delta, _matches = _dp_workload(quick)
    reps = 3
    off: list = []
    on: list = []
    snapshot: dict = {}
    for _ in range(reps):
        off.append(_time_dp(windows, "fused")[0])
        with obs.observe(trace=False) as observation:
            on.append(_time_dp(windows, "fused")[0])
        snapshot = observation.snapshot()
    off_seconds = min(off)
    on_seconds = min(on)
    return {
        "reps": reps,
        "num_windows": len(windows),
        "fused_off_seconds": off_seconds,
        "fused_on_seconds": on_seconds,
        "on_over_off": on_seconds / max(off_seconds, 1e-12),
        "counters": snapshot.get("counters", {}),
    }


def run_benchmark(quick: bool = False) -> dict:
    return harness.make_report(
        "bench_columnar_store",
        quick,
        {
            "dp": run_dp_benchmark(quick),
            "fanout": run_fanout_benchmark(quick),
            "metrics": run_obs_benchmark(quick),
        },
    )


# ----------------------------------------------------------------------
# pytest entry points (regression assertions; CI runs --quick via main)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def report():
    return run_benchmark(quick=True)


def test_dp_fused_at_least_2x_over_quadratic(report):
    """The ISSUE 3 acceptance bar: ≥2× on the DP ablation workload."""
    speedup = report["dp"]["speedup_quadratic_over_fused"]
    assert speedup >= 2.0, f"fused only {speedup:.2f}x over quadratic"


def test_fanout_payload_at_least_10x_smaller(report):
    """The ISSUE 3 acceptance bar: ≥10× smaller spawn payloads."""
    reduction = report["fanout"]["payload_reduction"]
    assert reduction >= 10.0, f"payload only {reduction:.1f}x smaller"


def test_obs_overhead_within_noise(report):
    """The ISSUE 7 smoke: metrics-off must be a genuine no-op.

    Even with counters *enabled* the fused sweep stays within noise of
    the disabled run (generous 1.5x bound for loaded CI machines); the
    disabled path does strictly less work than that — one predicate per
    kernel call — so its overhead is bounded by the same margin.
    """
    ratio = report["metrics"]["on_over_off"]
    assert ratio < 1.5, f"metrics-on fused sweep {ratio:.2f}x over off"


def test_obs_kernel_counters_deterministic(report):
    counters = report["metrics"]["counters"]
    assert (
        counters["p2.dp.windows_scanned"] == report["metrics"]["num_windows"]
    )
    assert counters["p2.dp.cells"] > 0
    assert counters["p2.dp.interval_sum_reuse"] > 0


def test_methods_agree(report):
    # run_dp_benchmark asserts checksum equality internally; reaching
    # here means quadratic/bisect/fused agreed on every window for both
    # list-backed and columnar graphs.
    assert report["dp"]["num_windows"] > 0


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced workload (seconds, used by the CI smoke step)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the report JSON to this path",
    )
    args = parser.parse_args()
    report_dict = run_benchmark(quick=args.quick)

    dp = report_dict["dp"]
    print(f"DP kernel: {dp['num_windows']} windows, delta={dp['delta']:g}")
    for backing in ("list", "columnar"):
        row = dp[f"{backing}_seconds"]
        print(
            f"  {backing:9s} "
            + "  ".join(f"{m}={row[m]:.3f}s" for m in DP_METHODS)
        )
    print(
        f"  fused speedup: {dp['speedup_quadratic_over_fused']:.2f}x vs "
        f"quadratic, {dp['speedup_bisect_over_fused']:.2f}x vs bisect"
    )
    fan = report_dict["fanout"]
    print(
        f"fan-out ({fan['num_events']} events, {fan['num_shards']} shards):\n"
        f"  payload {fan['pickled_payload_bytes']} B -> "
        f"{fan['zero_copy_payload_bytes']} B "
        f"({fan['payload_reduction']:.1f}x smaller)\n"
        f"  export {fan['shared_export_seconds']*1e3:.1f} ms, "
        f"attach {fan['attach_seconds']*1e3:.1f} ms, "
        f"re-slice all shards {fan['materialize_all_shards_seconds']*1e3:.1f} ms"
    )
    obs_report = report_dict["metrics"]
    print(
        f"metrics: fused sweep off={obs_report['fused_off_seconds']:.3f}s "
        f"on={obs_report['fused_on_seconds']:.3f}s "
        f"({(obs_report['on_over_off'] - 1) * 100:+.1f}% with counters live); "
        f"{obs_report['counters']['p2.dp.cells']:.0f} DP cells counted"
    )
    if args.out:
        harness.write_report(report_dict, args.out)
        print(f"[saved {args.out}]")


if __name__ == "__main__":
    main()
