"""Benchmarks for the beyond-paper extensions.

* streaming detection throughput (replay + poll cadence);
* DAG (fork/join) motif search;
* per-match activity analysis.

These have no paper counterpart; they bound the cost of the extension
features so regressions are visible.
"""

from __future__ import annotations

import pytest

from repro.analysis import rank_matches_by_activity
from repro.core.dag import GeneralMotif, find_dag_instances
from repro.core.motif import Motif, paper_motifs
from repro.core.streaming import StreamingDetector


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook"])
def test_streaming_replay(benchmark, datasets, dataset):
    graph, delta, phi = datasets[dataset]
    stream = sorted(graph.interactions(), key=lambda it: it.time)
    motif = paper_motifs(delta, phi)["M(3,3)"]

    def replay():
        detector = StreamingDetector(motif)
        emitted = 0
        for i, it in enumerate(stream):
            detector.add(it.src, it.dst, it.time, it.flow)
            if i % 400 == 0 and i:
                emitted += len(detector.poll())
        return emitted + len(detector.flush())

    count = benchmark(replay)
    assert count >= 0


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook"])
def test_dag_fork_join_search(benchmark, datasets, dataset):
    graph, delta, phi = datasets[dataset]
    ts = graph.to_time_series()
    motif = GeneralMotif(
        [("u", "v"), ("u", "w"), ("v", "x"), ("w", "x")], delta=delta, phi=phi
    )
    instances = benchmark(find_dag_instances, ts, motif)
    assert isinstance(instances, list)


@pytest.mark.parametrize("dataset", ["Passenger"])
def test_activity_ranking(benchmark, engines, datasets, dataset):
    _, delta, phi = datasets[dataset]
    engine = engines[dataset]
    motif = paper_motifs(delta, phi)["M(3,2)"]
    instances = engine.find_instances(motif).instances

    profiles = benchmark(rank_matches_by_activity, instances, "total_flow", 10)
    assert len(profiles) <= 10
