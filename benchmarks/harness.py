"""Shared schema for the committed ``BENCH_*.json`` benchmark reports.

Every benchmark script builds its report through :func:`make_report`, so
all committed artifacts carry the same envelope::

    {
      "schema_version": 1,
      "benchmark": "<script name>",
      "git_rev": "<short rev the numbers were measured at>",
      "quick": false,
      ... benchmark-specific payload ...
    }

``schema_version`` lets downstream tooling (dashboards, regression
diffing) reject artifacts it does not understand; ``git_rev`` ties a
number to the code that produced it. :func:`write_report` is the single
serializer, so formatting (indent, trailing newline) never drifts
between scripts.
"""

from __future__ import annotations

import json
import os
import subprocess

SCHEMA_VERSION = 1

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def git_rev() -> str:
    """The short git revision of the working tree, or ``"unknown"``."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=_REPO_ROOT,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else "unknown"


def make_report(benchmark: str, quick: bool, payload: dict) -> dict:
    """Wrap one benchmark's payload in the shared report envelope."""
    reserved = {"schema_version", "benchmark", "git_rev", "quick"}
    clash = reserved & set(payload)
    if clash:
        raise ValueError(f"payload shadows envelope fields: {sorted(clash)}")
    report = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": benchmark,
        "git_rev": git_rev(),
        "quick": bool(quick),
    }
    report.update(payload)
    return report


def write_report(report: dict, path: str) -> str:
    """Serialize one report the way every committed artifact is."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return path
