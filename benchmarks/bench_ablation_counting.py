"""Ablation — memoized counting vs full enumeration (Section 7 future work).

``count_instances`` shares work across instances through per-window
memoization; ``find_instances`` constructs every instance. Counts are
asserted equal; the ratio is the payoff of the paper's "counting without
constructing" direction.
"""

from __future__ import annotations

import pytest

from repro.core.motif import paper_motifs


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
@pytest.mark.parametrize("mode", ["enumerate", "count"])
def test_counting_vs_enumeration(benchmark, engines, datasets, dataset, mode):
    _, delta, phi = datasets[dataset]
    engine = engines[dataset]
    motif = paper_motifs(delta, phi)["M(3,2)"]
    if mode == "enumerate":
        result = benchmark(engine.find_instances, motif, None, None, False)
    else:
        result = benchmark(engine.count_instances, motif)
    assert result.count == engine.count_instances(motif).count
