"""Segment-store benchmark — the durable mmap tier vs shm vs in-memory.

Quantifies what the PR-8 tiered store costs and writes it to
``BENCH_segments.json``:

1. **Durability overhead**: seal (write + double fsync + rename) and
   validated open (full CRC sweep) versus the volatile shm export of the
   same ColumnStore, plus bytes on disk.
2. **Search transport**: the same parallel motif search fanned out three
   ways — workers re-materializing **pickled** shard slices (in-memory
   baseline), workers attaching the **shm** export, and workers mmap'ing
   the **sealed segment file**. All three must find the identical
   instance count; acceptance: the mmap tier stays within 2× of shm
   (both are zero-copy page-cache reads — the file tier must not
   reintroduce a copy).

Run directly to print the table and regenerate the JSON::

    PYTHONPATH=src python benchmarks/bench_segment_store.py [--quick] [--out BENCH_segments.json]

or through pytest for the regression assertions::

    PYTHONPATH=src python -m pytest benchmarks/bench_segment_store.py -v

``--quick`` (also used by the CI smoke step) shrinks the workload to a
few seconds while still exercising every measured path.
"""

from __future__ import annotations

import os
import random
import tempfile
import time

import pytest

import harness

from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif
from repro.graph.columnar import ColumnStore
from repro.graph.interaction import InteractionGraph
from repro.graph.segments import open_segment, verify_segment, write_segment
from repro.parallel import ParallelFlowMotifEngine

REPS = 3
JOBS = 2
SHARDS = 4


def _graph(num_events: int, nodes: int = 15, horizon: float = 400.0):
    rng = random.Random(11)
    g = InteractionGraph()
    for _ in range(num_events):
        u, v = rng.sample(range(nodes), 2)
        g.add_interaction(
            f"n{u}", f"n{v}", rng.uniform(0.0, horizon), rng.uniform(0.5, 6.0)
        )
    return g


def _best(fn) -> float:
    return min(_timed(fn) for _ in range(REPS))


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _parallel_count(graph, motif, use_shared_memory: bool = True) -> int:
    with ParallelFlowMotifEngine(
        graph,
        jobs=JOBS,
        shards=SHARDS,
        backend="process",
        use_shared_memory=use_shared_memory,
    ) as engine:
        return engine.find_instances(motif, collect=False).count


def run_durability_benchmark(quick: bool, workdir: str) -> dict:
    ts = _graph(2000 if quick else 8000).to_time_series()
    store = ColumnStore.from_graph(ts)
    path = os.path.join(workdir, "bench.seg")

    seal_seconds = _best(lambda: write_segment(store, path))
    verify_seconds = _best(lambda: verify_segment(path))

    def _open_close():
        open_segment(path).close()

    open_seconds = _best(_open_close)

    def _shm_round_trip():
        shared = store.to_shared()
        shared.close(unlink=True)

    shm_export_seconds = _best(_shm_round_trip)
    return {
        "num_events": ts.num_events,
        "segment_bytes": os.path.getsize(path),
        "store_bytes": store.nbytes,
        "seal_seconds": seal_seconds,
        "open_validated_seconds": open_seconds,
        "verify_seconds": verify_seconds,
        "shm_export_seconds": shm_export_seconds,
    }


def run_search_benchmark(quick: bool, workdir: str) -> dict:
    g = _graph(2000 if quick else 8000)
    ts = g.to_time_series()
    motif = Motif.chain(3, delta=40.0, phi=2.0)

    serial_count = FlowMotifEngine(ts).find_instances(
        motif, collect=False
    ).count

    # in-memory baseline: list-backed graph, pickled shard slices
    memory_seconds = _best(
        lambda: _parallel_count(ts, motif, use_shared_memory=False)
    )

    # shm tier: columnar graph, workers attach the volatile export
    columnar_graph = ColumnStore.from_graph(ts).to_graph()
    shm_seconds = _best(lambda: _parallel_count(columnar_graph, motif))

    # mmap tier: sealed segment file, workers map (path, bounds)
    path = os.path.join(workdir, "search.seg")
    write_segment(ColumnStore.from_graph(ts), path)
    segment_graph = open_segment(path).to_graph()
    mmap_seconds = _best(lambda: _parallel_count(segment_graph, motif))

    counts = {
        "memory": _parallel_count(ts, motif, use_shared_memory=False),
        "shm": _parallel_count(columnar_graph, motif),
        "mmap": _parallel_count(segment_graph, motif),
    }
    for transport, count in counts.items():
        assert count == serial_count, (transport, count, serial_count)

    return {
        "num_events": ts.num_events,
        "jobs": JOBS,
        "shards": SHARDS,
        "instances_found": serial_count,
        "memory_seconds": memory_seconds,
        "shm_seconds": shm_seconds,
        "mmap_seconds": mmap_seconds,
        "mmap_over_shm": mmap_seconds / max(shm_seconds, 1e-12),
        "mmap_over_memory": mmap_seconds / max(memory_seconds, 1e-12),
    }


def run_benchmark(quick: bool = False) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-segments-") as workdir:
        return harness.make_report("bench_segment_store", quick, {
            "durability": run_durability_benchmark(quick, workdir),
            "search": run_search_benchmark(quick, workdir),
        })


# ----------------------------------------------------------------------
# pytest entry points (regression assertions; CI runs --quick via main)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def report():
    return run_benchmark(quick=True)


def test_mmap_search_within_2x_of_shm(report):
    """The PR-8 acceptance bar: the durable tier must stay zero-copy."""
    ratio = report["search"]["mmap_over_shm"]
    assert ratio <= 2.0, f"mmap search {ratio:.2f}x over shm"


def test_all_transports_agree(report):
    # run_search_benchmark asserts count equality internally; reaching
    # here means memory/shm/mmap all matched the serial oracle.
    assert report["search"]["instances_found"] > 0


def test_validated_open_is_cheap(report):
    """Opening (with a full CRC sweep) must never cost more than a few
    seal's worth of time — it is on the hot path of every worker."""
    durability = report["durability"]
    assert durability["open_validated_seconds"] < max(
        0.25, 5 * durability["seal_seconds"]
    )


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced workload (seconds, used by the CI smoke step)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the report JSON to this path",
    )
    args = parser.parse_args()
    report_dict = run_benchmark(quick=args.quick)

    durability = report_dict["durability"]
    print(
        f"durability ({durability['num_events']} events, "
        f"{durability['segment_bytes']} B on disk):\n"
        f"  seal {durability['seal_seconds']*1e3:.1f} ms, "
        f"validated open {durability['open_validated_seconds']*1e3:.1f} ms, "
        f"verify {durability['verify_seconds']*1e3:.1f} ms, "
        f"shm export {durability['shm_export_seconds']*1e3:.1f} ms"
    )
    search = report_dict["search"]
    print(
        f"parallel search ({search['num_events']} events, "
        f"{search['jobs']} jobs, {search['instances_found']} instances):\n"
        f"  in-memory {search['memory_seconds']:.3f}s, "
        f"shm {search['shm_seconds']:.3f}s, "
        f"mmap {search['mmap_seconds']:.3f}s "
        f"({search['mmap_over_shm']:.2f}x vs shm, "
        f"{search['mmap_over_memory']:.2f}x vs in-memory)"
    )
    if args.out:
        harness.write_report(report_dict, args.out)
        print(f"[saved {args.out}]")


if __name__ == "__main__":
    main()
