"""Figure 8 — the two-phase algorithm vs the join baseline.

The paper's headline comparison: the two-phase algorithm is roughly twice
as fast because the join materializes sub-motif instances that never
become complete instances. Both algorithms are benchmarked end-to-end
(P1 + P2 for two-phase; tuple building + joins + maximality filter for the
baseline) and their result counts are asserted equal.
"""

from __future__ import annotations

import pytest

from repro.baselines.join import join_find_instances
from repro.core.engine import FlowMotifEngine
from repro.core.motif import paper_motifs

FIG8_MOTIFS = ["M(3,2)", "M(3,3)", "M(4,4)A"]


def _two_phase(graph, motif):
    engine = FlowMotifEngine(graph)  # fresh: include P1 like the paper
    return engine.find_instances(motif, collect=False, use_cache=False).count


def _join(graph, motif):
    return len(join_find_instances(graph.to_time_series(), motif))


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
@pytest.mark.parametrize("motif_name", FIG8_MOTIFS)
def test_two_phase(benchmark, datasets, dataset, motif_name):
    graph, delta, phi = datasets[dataset]
    motif = paper_motifs(delta, phi)[motif_name]
    count = benchmark(_two_phase, graph, motif)
    assert count >= 0


@pytest.mark.parametrize("dataset", ["Bitcoin", "Facebook", "Passenger"])
@pytest.mark.parametrize("motif_name", FIG8_MOTIFS)
def test_join_baseline(benchmark, datasets, dataset, motif_name):
    graph, delta, phi = datasets[dataset]
    motif = paper_motifs(delta, phi)[motif_name]
    count = benchmark(_join, graph, motif)
    # The baseline must agree with the two-phase algorithm exactly.
    assert count == _two_phase(graph, motif)
