"""The join-algorithm baseline (Section 6.2.1).

The paper's comparison method builds motif instances bottom-up:

1. For every edge ``(u, v)`` of the time-series graph, enumerate all
   contiguous interaction runs whose time extent is at most δ, producing
   quintuples ``(u, v, ts, te, f)``. (Runs are the only possible edge-sets
   of maximal instances, and runs with ``f < φ`` can never satisfy the
   per-edge flow constraint, so they are dropped here — the analogue of the
   paper keeping tables C1/C2 small.)
2. Sort the quintuples by start vertex (table C1) and end vertex (C2) and
   *merge-join* C2 with C1 on structural adjacency (``c2.v = c1.u`` — the
   paper prints ``c2.u = c1.v``, an apparent typo), keeping pairs that are
   strictly time-ordered and jointly span at most δ. These are the
   instances of all 2-edge sub-motifs.
3. Repeat: join the level-``i`` partial instances with the level-1 tuples
   of the next motif edge until all ``m`` edges are instantiated; enforce
   motif-vertex constraints (repeat/closure and injectivity) as soon as the
   corresponding positions are bound.
4. Finally, filter to maximal instances so the result set is identical to
   the two-phase algorithm's (asserted by tests).

The baseline's cost comes from materializing sub-motif instances that never
extend to full instances — exactly the behaviour Figure 8 measures.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.core.instance import MotifInstance, Run, filter_maximal
from repro.core.motif import Motif
from repro.graph.events import Node
from repro.graph.timeseries import EdgeSeries, TimeSeriesGraph


class IntervalTuple(NamedTuple):
    """One quintuple ``(u, v, ts, te, f)`` plus its series index range."""

    src: Node
    dst: Node
    ts: float
    te: float
    flow: float
    series: EdgeSeries
    lo: int
    hi: int


class _Partial(NamedTuple):
    """A sub-motif instance: runs for motif edges ``0..level`` plus the
    graph vertices bound to motif vertex ids so far."""

    runs: Tuple[IntervalTuple, ...]
    assignment: Tuple[Tuple[int, Node], ...]  # sorted (motif vid, node)
    start: float  # earliest timestamp used
    end: float  # latest timestamp used


def build_interval_tuples(
    graph: TimeSeriesGraph, delta: float, phi: float
) -> List[IntervalTuple]:
    """Step 1: all contiguous runs with extent <= δ and flow >= φ."""
    tuples: List[IntervalTuple] = []
    for series in graph.all_series():
        times = series.times
        n = len(times)
        for lo in range(n):
            # Tied timestamps below lo would be forcibly addable; such runs
            # can never be edge-sets of maximal instances, skip them early.
            if lo > 0 and times[lo - 1] == times[lo]:
                continue
            for hi in range(lo, n):
                if times[hi] - times[lo] > delta:
                    break
                if hi + 1 < n and times[hi + 1] == times[hi]:
                    continue  # must take the whole tie group
                flow = series.flow_between(lo, hi)
                if flow < phi:
                    continue
                tuples.append(
                    IntervalTuple(
                        series.src,
                        series.dst,
                        times[lo],
                        times[hi],
                        flow,
                        series,
                        lo,
                        hi,
                    )
                )
    return tuples


def _merge_assignment(
    assignment: Tuple[Tuple[int, Node], ...],
    vid: int,
    node: Node,
) -> Optional[Tuple[Tuple[int, Node], ...]]:
    """Bind motif vertex ``vid`` to ``node``; None on conflict.

    Conflicts are either the vid already bound to another node (path
    revisit mismatch) or the node already bound to another vid
    (injectivity).
    """
    for bound_vid, bound_node in assignment:
        if bound_vid == vid:
            return assignment if bound_node == node else None
        if bound_node == node:
            return None
    return tuple(sorted(assignment + ((vid, node),)))


def join_find_instances(
    graph: TimeSeriesGraph,
    motif: Motif,
    delta: Optional[float] = None,
    phi: Optional[float] = None,
) -> List[MotifInstance]:
    """Find all maximal instances with the join algorithm.

    Produces exactly the same instance set as the two-phase algorithm
    (Section 4), at the higher cost the paper attributes to intermediate
    sub-motif materialization.
    """
    delta = motif.delta if delta is None else delta
    phi = motif.phi if phi is None else phi
    path = motif.spanning_path
    m = motif.num_edges

    level1 = build_interval_tuples(graph, delta, phi)
    # Table C1: tuples grouped by start vertex for the merge joins.
    by_src: Dict[Node, List[IntervalTuple]] = {}
    for tup in sorted(level1, key=lambda t: (repr(t.src), t.ts)):
        by_src.setdefault(tup.src, []).append(tup)

    # Seed partials from motif edge 1.
    partials: List[_Partial] = []
    for tup in level1:
        assignment = _merge_assignment((), path[0], tup.src)
        if assignment is None:
            continue
        assignment = _merge_assignment(assignment, path[1], tup.dst)
        if assignment is None:
            continue
        partials.append(_Partial((tup,), assignment, tup.ts, tup.te))

    # Join one motif edge per level.
    for level in range(1, m):
        vid_from, vid_to = path[level], path[level + 1]
        next_partials: List[_Partial] = []
        for partial in partials:
            bound = dict(partial.assignment)
            source_node = bound[vid_from]
            previous = partial.runs[-1]
            for tup in by_src.get(source_node, ()):
                if not previous.te < tup.ts:
                    continue  # strict inter-edge-set temporal order
                if tup.te - partial.start > delta:
                    continue  # joint duration
                assignment = _merge_assignment(
                    partial.assignment, vid_to, tup.dst
                )
                if assignment is None:
                    continue
                next_partials.append(
                    _Partial(
                        partial.runs + (tup,),
                        assignment,
                        partial.start,
                        max(partial.end, tup.te),
                    )
                )
        partials = next_partials

    instances = []
    for partial in partials:
        vertex_map = tuple(
            dict(partial.assignment)[vid] for vid in range(motif.num_vertices)
        )
        runs = tuple(
            Run(tup.series, tup.lo, tup.hi) for tup in partial.runs
        )
        instances.append(MotifInstance(motif, vertex_map, runs))
    return filter_maximal(instances, delta)
