"""Baselines and oracles.

* :mod:`repro.baselines.join` — the paper's comparison baseline
  (Section 6.2.1): build instances by hierarchically joining per-edge
  interval tuples.
* :mod:`repro.baselines.temporal` — flow-agnostic temporal motifs in the
  style of Paranjape et al. [14] (one graph edge per motif edge), used for
  contextual comparison.
* :mod:`repro.baselines.bruteforce` — an exponential reference enumerator
  used as the ground-truth oracle by the property-based tests.
"""

from repro.baselines.join import join_find_instances
from repro.baselines.bruteforce import brute_force_instances
from repro.baselines.temporal import count_temporal_motif_instances

__all__ = [
    "join_find_instances",
    "brute_force_instances",
    "count_temporal_motif_instances",
]
