"""Brute-force reference enumeration of maximal flow-motif instances.

This is the test oracle: an independent, obviously-correct (and obviously
exponential) implementation of Definitions 3.2 and 3.3 that shares **no
code** with the two-phase algorithm:

1. structural matches are found by trying *every* injective assignment of
   motif vertices to graph vertices (no DFS);
2. per match, *every* combination of non-empty element subsets (not even
   assuming contiguity) is validated against order, duration and flow;
3. maximality is checked by attempting every single-element addition.

Only usable on tiny inputs; the property tests bound series lengths.
"""

from __future__ import annotations

from itertools import combinations, permutations, product
from typing import List, Sequence, Set, Tuple

from repro.core.motif import Motif
from repro.graph.timeseries import EdgeSeries, TimeSeriesGraph

#: Canonical instance key: (vertex map, per-edge sorted (t, f) tuples).
InstanceKey = Tuple[Tuple, Tuple[Tuple[Tuple[float, float], ...], ...]]


def _structural_matches_brute(
    graph: TimeSeriesGraph, motif: Motif
) -> List[Tuple[Tuple, Tuple[EdgeSeries, ...]]]:
    """Every injective vertex assignment realizing all motif edges."""
    nodes = sorted(graph.nodes, key=repr)
    matches = []
    for assignment in permutations(nodes, motif.num_vertices):
        series_list = []
        ok = True
        for m_src, m_dst in motif.edges:
            series = graph.series(assignment[m_src], assignment[m_dst])
            if series is None:
                ok = False
                break
            series_list.append(series)
        if ok:
            matches.append((tuple(assignment), tuple(series_list)))
    return matches


def _non_empty_subsets(n: int, limit: int) -> List[Tuple[int, ...]]:
    """All non-empty index subsets of range(n) (guarded by ``limit``)."""
    if n > limit:
        raise ValueError(
            f"series too long for brute force ({n} > {limit} elements)"
        )
    subsets: List[Tuple[int, ...]] = []
    for size in range(1, n + 1):
        subsets.extend(combinations(range(n), size))
    return subsets


def _is_valid_assignment(
    series_list: Sequence[EdgeSeries],
    chosen: Sequence[Tuple[int, ...]],
    delta: float,
    phi: float,
) -> bool:
    """Definition 3.2 bullets 3–5 for one subset-per-edge combination."""
    for i, subset in enumerate(chosen):
        flow = sum(series_list[i].flow(idx) for idx in subset)
        if flow < phi:
            return False
    for i in range(len(chosen) - 1):
        last_t = max(series_list[i].time(idx) for idx in chosen[i])
        first_t = min(series_list[i + 1].time(idx) for idx in chosen[i + 1])
        if not last_t < first_t:
            return False
    all_times = [
        series_list[i].time(idx)
        for i, subset in enumerate(chosen)
        for idx in subset
    ]
    return max(all_times) - min(all_times) <= delta


def _is_maximal_assignment(
    series_list: Sequence[EdgeSeries],
    chosen: Sequence[Tuple[int, ...]],
    delta: float,
) -> bool:
    """Definition 3.3: try adding every absent element to every edge-set.

    Flow can only grow by addition, so only order and duration matter.
    """
    start = min(
        series_list[i].time(idx) for i, s in enumerate(chosen) for idx in s
    )
    end = max(
        series_list[i].time(idx) for i, s in enumerate(chosen) for idx in s
    )
    for i, subset in enumerate(chosen):
        series = series_list[i]
        in_set = set(subset)
        for idx in range(len(series)):
            if idx in in_set:
                continue
            t = series.time(idx)
            if i > 0:
                prev_last = max(series_list[i - 1].time(x) for x in chosen[i - 1])
                if not prev_last < t:
                    continue
            if i < len(chosen) - 1:
                next_first = min(series_list[i + 1].time(x) for x in chosen[i + 1])
                if not t < next_first:
                    continue
            if max(end, t) - min(start, t) <= delta:
                return False  # addable element found
    return True


def brute_force_instances(
    graph: TimeSeriesGraph,
    motif: Motif,
    delta: float = None,
    phi: float = None,
    max_series_elements: int = 12,
) -> Set[InstanceKey]:
    """All maximal instances as canonical keys (the oracle's output).

    Parameters
    ----------
    graph, motif:
        The inputs of the search problem.
    delta, phi:
        Constraint overrides (default to the motif's).
    max_series_elements:
        Safety bound on per-series length; the subset lattice is 2^n.
    """
    delta = motif.delta if delta is None else delta
    phi = motif.phi if phi is None else phi
    results: Set[InstanceKey] = set()
    for vertex_map, series_list in _structural_matches_brute(graph, motif):
        subset_options = [
            _non_empty_subsets(len(series), max_series_elements)
            for series in series_list
        ]
        for chosen in product(*subset_options):
            if not _is_valid_assignment(series_list, chosen, delta, phi):
                continue
            if not _is_maximal_assignment(series_list, chosen, delta):
                continue
            key: InstanceKey = (
                vertex_map,
                tuple(
                    tuple(
                        sorted(
                            (series_list[i].time(idx), series_list[i].flow(idx))
                            for idx in subset
                        )
                    )
                    for i, subset in enumerate(chosen)
                ),
            )
            results.add(key)
    return results
