"""Flow-agnostic temporal motifs in the style of Paranjape et al. [14].

The paper positions flow motifs against the temporal motifs of [14]: same
structural + order + δ constraints, but each motif edge is instantiated by
exactly **one** graph edge and flows are ignored. This module counts such
instances, providing context for how much the multi-edge/flow semantics
change the result sets (used in examples and the temporal-baseline tests).

The count is computed per structural match by a forward dynamic program
over the merged event list: ``ways[i]`` = number of ways to instantiate the
first ``i`` motif edges so far, scanning events in time order within each
δ-window anchored at first-edge events (windows and anchor semantics match
the flow-motif engine so counts are comparable).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.matching import StructuralMatch
from repro.core.motif import Motif
from repro.graph.timeseries import TimeSeriesGraph


def _count_sequences_in_match(
    match: StructuralMatch, delta: float
) -> int:
    """Number of strictly time-ordered single-edge selections within δ.

    For every choice of one element per motif edge with strictly increasing
    timestamps and overall span <= δ, count 1. Counted by scanning each
    anchor element of ``R(e_1)`` and running a pull DP over the remaining
    edges restricted to ``(anchor, anchor + δ]``.
    """
    series_list = match.series
    m = len(series_list)
    first = series_list[0]
    total = 0
    for a_idx in range(len(first)):
        anchor = first.times[a_idx]
        end = anchor + delta
        # ways[t] for current edge: number of valid prefixes ending strictly
        # before time t. Iteratively fold edges 2..m.
        # Edge 1 contributes exactly the anchor element (to avoid double
        # counting across anchors, the first edge's element is fixed).
        current: List[tuple] = [(anchor, 1)]  # (time, ways) sorted by time
        for i in range(1, m):
            series = series_list[i]
            lo = series.first_index_after(anchor)
            hi = series.last_index_at_or_before(end)
            nxt: List[tuple] = []
            cum = 0
            ptr = 0
            for idx in range(lo, hi + 1):
                t = series.times[idx]
                while ptr < len(current) and current[ptr][0] < t:
                    cum += current[ptr][1]
                    ptr += 1
                if cum:
                    nxt.append((t, cum))
            current = nxt
            if not current:
                break
        else:
            total += sum(w for _, w in current)
    return total


def count_temporal_motif_instances(
    graph: TimeSeriesGraph,
    motif: Motif,
    delta: Optional[float] = None,
    matches: Optional[Sequence[StructuralMatch]] = None,
) -> int:
    """Count [14]-style temporal motif instances (one edge per motif edge).

    Parameters
    ----------
    graph:
        The time-series graph.
    motif:
        Only the structure and δ are used; φ and multi-edge aggregation do
        not apply to this baseline.
    delta:
        Optional override of the motif's δ.
    matches:
        Pre-computed structural matches (else computed here).
    """
    from repro.core.matching import find_structural_matches

    delta = motif.delta if delta is None else delta
    if matches is None:
        matches = find_structural_matches(graph, motif)
    return sum(_count_sequences_in_match(match, delta) for match in matches)
