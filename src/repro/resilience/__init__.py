"""Fault-tolerant execution: the robustness layer under the engines.

The parallel and streaming stacks assume a friendly world — workers that
never die, shared-memory segments that are always cleaned up, streams that
arrive in perfect time order. This package drops those assumptions:

* :mod:`repro.resilience.retry` — :class:`RetryPolicy` (bounded retries,
  exponential backoff with deterministic seeded jitter, per-round shard
  timeouts), error classification, and the typed failures
  (:class:`ShardExecutionError`, :class:`ShardTimeoutError`) the parallel
  engine raises instead of swallowing worker errors. The engine walks a
  ``process → thread → serial`` degradation chain when a backend keeps
  failing; merged output stays identical to serial throughout
  (chaos-property-tested in ``tests/resilience``).
* :mod:`repro.resilience.shm_registry` — crash-safe lifecycle for
  shared-memory :class:`~repro.graph.columnar.ColumnStore` exports: a
  process-wide registry with ``atexit``/``SIGTERM`` cleanup, creator-pid
  stamping, and orphan detection/reaping for segments whose exporter died
  without unlinking.
* :mod:`repro.resilience.checkpoint` — serialize a
  :class:`~repro.core.streaming.StreamingDetector` (graph, per-match
  progress cursors, reorder buffer, undrained emissions) to a JSON-safe
  dict and restore it so a resumed stream emits exactly what an
  uninterrupted run would have.
* :mod:`repro.resilience.faultinject` — the chaos harness: kill a worker
  mid-shard, delay it past a timeout, raise from inside a task, and
  perturb event streams (drop / duplicate / reorder-within-slack /
  corrupt lines) with deterministic seeded randomness.
"""

from repro.resilience.checkpoint import CheckpointError, load_checkpoint
from repro.resilience.faultinject import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupt_lines,
    crash_at,
    crash_point,
    drop_events,
    duplicate_events,
    inject,
    reorder_within_slack,
)
from repro.resilience.retry import (
    DispatchReport,
    FaultEvent,
    RetryPolicy,
    ShardExecutionError,
    ShardTimeoutError,
    classify_error,
)
from repro.resilience.shm_registry import (
    SegmentCorruptionError,
    active_segments,
    cleanup_segments,
    reap_orphans,
    scan_orphans,
    scan_store_orphans,
)

__all__ = [
    "CheckpointError",
    "DispatchReport",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
    "SegmentCorruptionError",
    "ShardExecutionError",
    "ShardTimeoutError",
    "active_segments",
    "classify_error",
    "cleanup_segments",
    "corrupt_lines",
    "crash_at",
    "crash_point",
    "drop_events",
    "duplicate_events",
    "inject",
    "load_checkpoint",
    "reap_orphans",
    "reorder_within_slack",
    "scan_orphans",
    "scan_store_orphans",
]
