"""Serialize and restore :class:`~repro.core.streaming.StreamingDetector`.

A checkpoint is a JSON-safe ``dict`` capturing everything the detector's
exactly-once contract depends on:

* the query — motif spanning path, δ, φ, mode, reorder slack and late
  policy;
* the graph — every per-pair series as ``[src, dst, times, flows]``;
* per-match emission cursors — ``(last_anchor, prev_lam)`` keyed by the
  structural match's full identity (vertex map + edge pairs), the
  skip-rule state that makes resumed emissions identical to an
  uninterrupted run;
* the reorder buffer — pending events still ahead of the watermark's
  slack frontier, with their arrival sequence numbers;
* the out-buffer — instances finalized but not yet returned by a poll
  (their cursors have already moved, so dropping them would lose
  emissions forever);
* counters — watermark, emitted count, rebuild count, flushed flag.

The structural match *set* is not stored: it is a pure function of the
graph, so :func:`restore_detector` re-derives it and then overlays the
saved cursors (:meth:`IncrementalMatcher.apply_progress`). Emission
content is therefore bit-identical after restore; only intra-poll
ordering may differ (heap ties break on rediscovery order).

``json.dumps``-safe by construction: ``±inf`` watermarks and anchors are
mapped to ``None`` (JSON has no infinities), and node labels must be
strings, ints, floats or bools — anything else raises
:class:`CheckpointError` at checkpoint time rather than producing a file
that cannot round-trip.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

FORMAT = "repro-streaming-checkpoint"
VERSION = 1

_NEG_INF = float("-inf")

#: Node label types that survive a JSON round-trip unchanged.
_JSON_NODE_TYPES = (str, int, float, bool)


class CheckpointError(ValueError):
    """A checkpoint cannot be produced or is malformed/unsupported."""


def load_checkpoint(text: str) -> Dict[str, Any]:
    """Parse checkpoint JSON text into a state dict, typed-error only.

    Truncated or otherwise invalid JSON (the torn-write shape a crash
    mid-``--checkpoint`` leaves behind), or JSON that is not a
    streaming-checkpoint object, raises :class:`CheckpointError` — never
    a raw ``json`` error. Pair with :func:`restore_detector`, which
    applies the same contract to the dict's *contents*.
    """
    try:
        state = json.loads(text)
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint is not valid JSON (truncated write?): {exc}"
        ) from exc
    if not isinstance(state, dict) or state.get("format") != FORMAT:
        raise CheckpointError(
            "not a streaming checkpoint (missing/wrong 'format' field)"
        )
    return state


def _encode_anchor(value: float) -> Optional[float]:
    return None if value == _NEG_INF else value


def _decode_anchor(value: Optional[float]) -> float:
    return _NEG_INF if value is None else value


def _check_node(node: Any) -> Any:
    if not isinstance(node, _JSON_NODE_TYPES):
        raise CheckpointError(
            f"node label {node!r} of type {type(node).__name__} does not "
            f"survive a JSON round-trip; checkpointing supports "
            f"str/int/float/bool node labels"
        )
    return node


def detector_state(detector) -> Dict[str, Any]:
    """Snapshot a :class:`StreamingDetector` as a JSON-safe dict."""
    motif = detector.motif
    series_rows: List[List[Any]] = []
    for series in detector._graph.all_series():
        series_rows.append(
            [
                _check_node(series.src),
                _check_node(series.dst),
                list(series.times),
                list(series.flows),
            ]
        )

    progress_rows: List[List[Any]] = []
    if detector._matcher is not None:
        exported = detector._matcher.export_progress()
    else:
        exported = {
            key: (p.last_anchor, p.prev_lam)
            for key, p in detector._progress.items()
        }
    for (vertex_map, pairs), (last_anchor, prev_lam) in exported.items():
        if last_anchor == _NEG_INF and prev_lam is None:
            continue  # untouched cursor; the restore default
        progress_rows.append(
            [
                list(vertex_map),
                [[src, dst] for src, dst in pairs],
                _encode_anchor(last_anchor),
                prev_lam,
            ]
        )

    out_rows: List[Dict[str, Any]] = []
    for instance in detector._out_buffer:
        out_rows.append(
            {
                "vertex_map": list(instance.vertex_map),
                "runs": [
                    [run.series.src, run.series.dst, run.lo, run.hi]
                    for run in instance.runs
                ],
            }
        )

    return {
        "format": FORMAT,
        "version": VERSION,
        "motif": {
            "path": list(motif.spanning_path),
            "delta": motif.delta,
            "phi": motif.phi,
            "name": motif.name,
        },
        "delta": detector.delta,
        "phi": detector.phi,
        "mode": detector.mode,
        "slack": detector.slack,
        "late": detector.late,
        "watermark": _encode_anchor(detector._watermark),
        "emitted": detector._emitted,
        "rebuilds": detector._rebuild_count,
        "flushed": detector._flushed,
        "late_dropped": detector._late_dropped,
        "seq": detector._seq,
        "pending": [list(entry) for entry in detector._pending],
        "series": series_rows,
        "progress": progress_rows,
        "out_buffer": out_rows,
    }


def restore_detector(state: Dict[str, Any]):
    """Rebuild a :class:`StreamingDetector` from :func:`detector_state`.

    The restored detector continues the stream exactly where the snapshot
    left off: same watermark, same skip-rule cursors, same pending
    reorder buffer, same not-yet-returned emissions.
    """
    # Imported lazily: streaming imports this module for checkpoint().
    from repro.core.incremental import MatchProgress
    from repro.core.instance import MotifInstance, Run
    from repro.core.motif import Motif
    from repro.core.streaming import StreamingDetector
    from repro.graph.timeseries import EdgeSeries, GrowableTimeSeriesGraph

    if not isinstance(state, dict) or state.get("format") != FORMAT:
        raise CheckpointError(
            "not a streaming checkpoint (missing/wrong 'format' field)"
        )
    if state.get("version") != VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {state.get('version')!r} "
            f"(this build reads version {VERSION})"
        )
    try:
        motif_spec = state["motif"]
        motif = Motif(
            motif_spec["path"],
            motif_spec["delta"],
            motif_spec["phi"],
            name=motif_spec.get("name"),
        )
        detector = StreamingDetector(
            motif,
            delta=state["delta"],
            phi=state["phi"],
            mode=state["mode"],
            slack=state["slack"],
            late=state["late"],
        )
        graph = GrowableTimeSeriesGraph(
            EdgeSeries(src, dst, times, flows)
            for src, dst, times, flows in state["series"]
        )
        detector._graph = graph
        detector._watermark = _decode_anchor(state["watermark"])
        detector._emitted = int(state["emitted"])
        detector._rebuild_count = int(state["rebuilds"])
        detector._flushed = bool(state["flushed"])
        detector._late_dropped = int(state["late_dropped"])
        detector._seq = int(state["seq"])
        detector._pending = [tuple(entry) for entry in state["pending"]]
        # heapq invariant survives serialization: the list *is* the heap.

        progress_by_key: Dict[Tuple, Tuple[float, Optional[float]]] = {}
        for vertex_map, pairs, last_anchor, prev_lam in state["progress"]:
            key = (
                tuple(vertex_map),
                tuple((src, dst) for src, dst in pairs),
            )
            progress_by_key[key] = (_decode_anchor(last_anchor), prev_lam)

        if detector._matcher is not None:
            # Re-derive the match set from the restored graph, then overlay
            # the saved cursors so the sweep resumes, not restarts.
            detector._matcher = type(detector._matcher)(
                graph, motif, detector.delta, detector.phi
            )
            detector._matcher.apply_progress(progress_by_key)
        else:
            detector._dirty = True
            detector._ts = None
            detector._matches = None
            detector._progress = {}
            for key, (last_anchor, prev_lam) in progress_by_key.items():
                progress = MatchProgress()
                progress.last_anchor = last_anchor
                progress.prev_lam = prev_lam
                detector._progress[key] = progress

        out_buffer = []
        for record in state["out_buffer"]:
            runs = []
            for src, dst, lo, hi in record["runs"]:
                series = graph.series(src, dst)
                if series is None:
                    raise CheckpointError(
                        f"out-buffer run references unknown series "
                        f"{src!r}->{dst!r}"
                    )
                runs.append(Run(series, lo, hi))
            out_buffer.append(
                MotifInstance(motif, tuple(record["vertex_map"]), runs)
            )
        detector._out_buffer = out_buffer
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed checkpoint: {exc}") from exc
    return detector
