"""Retry policies, error classification, and dispatch fault reporting.

One :class:`RetryPolicy` describes everything the parallel engine's
fault-tolerant dispatcher may do about a failing shard: how many times to
re-run it on the same backend, how long to wait between rounds
(exponential backoff with *deterministic* seeded jitter — two runs with
the same policy sleep the same schedule, so chaos tests and replayed
incidents are reproducible), how long a dispatch round may take before
outstanding shards are declared timed out, and whether the engine may walk
the ``process → thread → serial`` degradation chain when a backend keeps
failing.

Failures are *classified*, never swallowed: every observed error becomes a
:class:`FaultEvent` (category + shard + attempt + backend) collected into
the dispatch's :class:`DispatchReport` and logged through the
``repro.resilience`` logger. When retries and degradation are exhausted —
or degradation is disabled — the dispatcher raises
:class:`ShardExecutionError` carrying the original cause.
"""

from __future__ import annotations

import logging
import pickle
import random
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.obs import flight as _flight
from repro.obs import metrics as _metrics

LOG = logging.getLogger("repro.resilience")

#: Failure categories, roughly ordered from "environment" to "your code".
CATEGORIES = (
    "timeout",
    "worker-crash",
    "serialization",
    "shared-memory",
    "task-error",
)


class ShardTimeoutError(TimeoutError):
    """A shard task did not finish within the dispatch round's budget."""


class ShardExecutionError(RuntimeError):
    """A shard kept failing after every retry and degradation step.

    ``faults`` holds the classified :class:`FaultEvent` history of the
    dispatch, so the error message alone tells the whole story: which
    shards failed, on which backends, and why.
    """

    def __init__(self, message: str, faults: Optional[List["FaultEvent"]] = None):
        super().__init__(message)
        self.faults = list(faults or [])


def classify_error(exc: BaseException) -> str:
    """Map an exception from a shard task to one of :data:`CATEGORIES`."""
    if isinstance(exc, (FuturesTimeoutError, ShardTimeoutError, TimeoutError)):
        return "timeout"
    if isinstance(exc, BrokenExecutor):
        # BrokenProcessPool / BrokenThreadPool: a worker died under us.
        return "worker-crash"
    if isinstance(exc, (pickle.PicklingError, pickle.UnpicklingError)):
        return "serialization"
    if isinstance(exc, FileNotFoundError) or (
        isinstance(exc, (OSError, ValueError))
        and "shared memory" in str(exc).lower()
    ):
        return "shared-memory"
    return "task-error"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry schedule with deterministic backoff for shard tasks.

    Parameters
    ----------
    max_retries:
        Re-runs allowed per backend after the first attempt (so a backend
        gets ``max_retries + 1`` rounds before the engine degrades).
    base_delay, backoff_factor, max_delay:
        Round ``k`` sleeps ``min(max_delay, base_delay * backoff_factor**k)``
        seconds before retrying.
    jitter:
        Fractional jitter added on top of the backoff delay. The jitter is
        drawn from a generator seeded by ``(seed, attempt)`` — fully
        deterministic, so retried runs are bit-reproducible.
    timeout:
        Per-dispatch-round budget in seconds: shards still unfinished when
        the round's deadline passes are classified ``"timeout"`` and
        retried. ``None`` disables the deadline.
    degrade:
        Allow the engine to walk ``process → thread → serial`` when a
        backend exhausts its retries. With ``False`` the engine raises
        :class:`ShardExecutionError` instead.
    seed:
        Jitter seed (see above).
    """

    max_retries: int = 2
    base_delay: float = 0.05
    backoff_factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    timeout: Optional[float] = None
    degrade: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter!r}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout!r}")

    def delay_for(self, attempt: int, token: int = 0) -> float:
        """Seconds to sleep before retry round ``attempt`` (0-based).

        Deterministic: the jitter component is seeded by
        ``(seed, attempt, token)``, never by wall-clock entropy.
        """
        delay = min(
            self.max_delay, self.base_delay * self.backoff_factor ** attempt
        )
        if self.jitter and delay > 0:
            mixed = (self.seed * 1000003 + attempt) * 1000003 + token
            delay *= 1.0 + self.jitter * random.Random(mixed).random()
        return delay


@dataclass
class FaultEvent:
    """One classified shard failure observed during a dispatch."""

    shard_index: int
    backend: str
    attempt: int
    category: str
    message: str

    def __str__(self) -> str:  # compact, log-friendly
        return (
            f"shard {self.shard_index} [{self.backend} attempt "
            f"{self.attempt}] {self.category}: {self.message}"
        )


@dataclass
class DispatchReport:
    """What happened during one fault-tolerant dispatch.

    Exposed as ``ParallelFlowMotifEngine.last_dispatch`` so callers (and
    the chaos tests) can assert on retry/degradation behaviour without
    parsing logs.
    """

    backend: str = ""
    #: Backend that produced the final, merged results.
    final_backend: str = ""
    #: Retry rounds executed beyond the first attempt, across backends.
    retry_rounds: int = 0
    #: Degradation steps taken, e.g. ``["thread", "serial"]``.
    degradations: List[str] = field(default_factory=list)
    faults: List[FaultEvent] = field(default_factory=list)

    @property
    def fault_categories(self) -> Tuple[str, ...]:
        return tuple(event.category for event in self.faults)

    def record(
        self,
        shard_index: int,
        backend: str,
        attempt: int,
        exc: BaseException,
    ) -> FaultEvent:
        """Classify, log, and retain one shard failure."""
        event = FaultEvent(
            shard_index=shard_index,
            backend=backend,
            attempt=attempt,
            category=classify_error(exc),
            message=f"{type(exc).__name__}: {exc}",
        )
        self.faults.append(event)
        LOG.warning("shard failure: %s", event)
        reg = _metrics.active()
        if reg is not None:
            reg.counter(
                "resilience.faults", category=event.category, backend=backend
            ).inc()
        recorder = _flight.installed()
        if recorder is not None:
            recorder.note_fault(
                category=event.category,
                message=event.message,
                shard_index=shard_index,
                backend=backend,
                attempt=attempt,
            )
            if event.category == "timeout":
                # Timeouts are the faults whose cause lives in the
                # moments *before* them — ship the ring immediately.
                recorder.dump("shard-timeout")
        return event

    def record_retry_round(self, backend: str) -> None:
        """Count one retry round (beyond the first attempt)."""
        self.retry_rounds += 1
        reg = _metrics.active()
        if reg is not None:
            reg.counter("resilience.retries", backend=backend).inc()
        recorder = _flight.installed()
        if recorder is not None:
            recorder.note("retry-round", backend=backend, round=self.retry_rounds)
            recorder.dump("shard-retry")

    def record_degradation(self, backend: str) -> None:
        """Count one degradation step onto ``backend``."""
        self.degradations.append(backend)
        reg = _metrics.active()
        if reg is not None:
            reg.counter("resilience.degradations", to=backend).inc()
        recorder = _flight.installed()
        if recorder is not None:
            recorder.note("degradation", to=backend)
            recorder.dump("degradation")
