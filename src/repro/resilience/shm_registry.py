"""Crash-safe lifecycle for shared-memory ColumnStore exports.

A process that exports a :class:`~repro.graph.columnar.ColumnStore` into
POSIX shared memory and then dies without ``close(unlink=True)`` leaks the
segment until reboot — the OS reference-counts *mappings*, not the name.
This module closes that hole three ways:

1. **Registry + exit cleanup.** Every owning export registers here
   (:func:`register`, called by ``ColumnStore.to_shared``); an ``atexit``
   hook and a chaining ``SIGTERM`` handler unlink every still-registered
   segment on the way down, so ordinary crashes (uncaught exception,
   ``sys.exit``, termination signal) cannot leak.
2. **Creator-pid stamping.** Exports embed the creating process id in the
   segment metadata; :meth:`ColumnStore.attach` flags segments whose
   creator died (an *orphan*) with a logged warning instead of silently
   adopting them.
3. **Orphan scanning.** :func:`scan_orphans` walks ``/dev/shm`` for
   ColumnStore-magic segments whose creator is gone; :func:`reap_orphans`
   unlinks them — the repair tool for segments leaked by ``SIGKILL``/
   ``os._exit``, which no in-process hook can catch.

The registry holds weak references: a store that is closed (which calls
:func:`unregister`) or garbage-collected never blocks cleanup, and cleanup
by name alone works even after the store object is gone.
"""

from __future__ import annotations

import atexit
import logging
import os
import signal
import struct
import threading
import weakref
from typing import Dict, List, Optional, Tuple

from repro.obs import metrics as _metrics

LOG = logging.getLogger("repro.resilience")

#: Magic + header layout of a shared ColumnStore segment. Canonical here so
#: the orphan scanner can recognize segments without importing (or
#: circularly depending on) :mod:`repro.graph.columnar`, which imports
#: these constants back. Durable file segments (:mod:`repro.graph.
#: segments`) reuse the same magic and header struct with a different
#: format version, so one scanner recognizes both kinds of artifact.
SEGMENT_MAGIC = b"FMCOLSTO"
SEGMENT_HEADER = struct.Struct("<8sQQ")

#: Format versions: 1 = volatile shared-memory export (no checksums — the
#: block never outlives its creator's crash-cleanup hooks), 2 = durable
#: sealed segment file (header checksum + per-column CRC32, validated on
#: every open).
SHM_FORMAT_VERSION = 1
SEGMENT_FILE_VERSION = 2


class SegmentCorruptionError(ValueError):
    """A segment (shm block or sealed file) fails validation.

    Raised instead of decoding garbage: magic/version mismatch, a
    truncated header, metadata that does not parse, a CRC mismatch, or a
    file whose size disagrees with its own header. Subclasses
    :class:`ValueError` so pre-existing callers that caught the untyped
    error keep working.
    """

_LOCK = threading.Lock()
#: name -> (registering pid, weakref to the owning ColumnStore). The pid
#: guards against forked children (e.g. process-pool workers) inheriting
#: the parent's registry and unlinking the parent's live segments from
#: their own exit hooks — cleanup only ever touches entries registered by
#: the current process.
_REGISTRY: Dict[str, Tuple[int, "weakref.ref"]] = {}
_INSTALLED = False

#: Extra callables run by the chaining SIGTERM handler *before* segment
#: cleanup — the flight recorder dumps its diagnostic bundle here, so a
#: terminated run leaves its last seconds of context on disk. Hooks are
#: pid-stamped like registry entries: a forked pool worker inheriting
#: the parent's hook list must not run the parent's hooks.
_SIGTERM_HOOKS: List[Tuple[int, object]] = []


def pid_alive(pid: Optional[int]) -> bool:
    """Best-effort liveness probe for a process id."""
    if not pid or pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


def _unlink_by_name(name: str) -> bool:
    """Remove a shared-memory segment by name; True when it existed."""
    try:
        import _posixshmem

        _posixshmem.shm_unlink(name if name.startswith("/") else "/" + name)
        return True
    except FileNotFoundError:
        return False
    except ImportError:  # non-POSIX: fall back to the stdlib wrapper
        from multiprocessing import shared_memory

        try:
            seg = shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError:
            return False
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:
            return False
        return True


def _install_handlers_once() -> None:
    """Arm atexit + SIGTERM cleanup (idempotent, main-thread only for
    the signal part; the atexit part always works)."""
    global _INSTALLED
    if _INSTALLED:
        return
    _INSTALLED = True
    atexit.register(cleanup_segments)
    try:
        previous = signal.getsignal(signal.SIGTERM)

        def _on_sigterm(signum, frame):
            _run_sigterm_hooks()
            cleanup_segments()
            if callable(previous):
                previous(signum, frame)
            else:
                # Restore the default disposition and re-raise the signal
                # so the process still dies with the expected status.
                signal.signal(signum, signal.SIG_DFL)
                os.kill(os.getpid(), signum)

        signal.signal(signal.SIGTERM, _on_sigterm)
    except (ValueError, OSError):  # non-main thread / unsupported platform
        pass


def register_sigterm_hook(hook) -> None:
    """Run ``hook()`` from the chaining SIGTERM handler, before cleanup.

    Errors from hooks are swallowed — diagnostics must never block the
    termination path. Arms the handler chain if nothing registered yet.
    """
    with _LOCK:
        _install_handlers_once()
        _SIGTERM_HOOKS.append((os.getpid(), hook))


def unregister_sigterm_hook(hook) -> None:
    """Remove a previously registered SIGTERM hook (test hygiene)."""
    with _LOCK:
        _SIGTERM_HOOKS[:] = [
            entry for entry in _SIGTERM_HOOKS if entry[1] is not hook
        ]


def _run_sigterm_hooks() -> None:
    pid = os.getpid()
    with _LOCK:
        hooks = [hook for owner, hook in _SIGTERM_HOOKS if owner == pid]
    for hook in hooks:
        try:
            hook()
        except Exception:  # noqa: BLE001 - must not mask the signal path
            LOG.debug("SIGTERM hook %r failed", hook, exc_info=True)


def register(store) -> None:
    """Track one owning shared-memory export for crash-safe cleanup."""
    name = getattr(store, "shm_name", None)
    if name is None:
        return
    with _LOCK:
        _install_handlers_once()
        _REGISTRY[name] = (os.getpid(), weakref.ref(store))


def unregister(name: Optional[str]) -> None:
    """Stop tracking a segment (its owner closed it deliberately)."""
    if name is None:
        return
    with _LOCK:
        _REGISTRY.pop(name, None)


def active_segments() -> List[str]:
    """Names of segments registered by this process and not yet unlinked."""
    pid = os.getpid()
    with _LOCK:
        return sorted(
            name for name, (owner, _) in _REGISTRY.items() if owner == pid
        )


def cleanup_segments() -> int:
    """Unlink every segment registered by this process; returns the count.

    Runs from ``atexit``/``SIGTERM`` but is safe to call directly (e.g.
    in a test's teardown). Errors are logged, never raised — cleanup must
    not mask the original crash. Entries inherited across ``fork`` (a
    pool worker carries the parent's registry) belong to another live
    process and are left strictly alone.
    """
    pid = os.getpid()
    with _LOCK:
        entries = [
            (name, ref)
            for name, (owner, ref) in _REGISTRY.items()
            if owner == pid
        ]
        for name, _ in entries:
            _REGISTRY.pop(name, None)
    removed = 0
    for name, ref in entries:
        store = ref()
        try:
            if store is not None:
                store.close(unlink=True)
                removed += 1
            elif _unlink_by_name(name):
                removed += 1
        except BufferError:
            # Live views pin the mapping; the unlink itself succeeded
            # (ColumnStore.close unlinks before closing), so the segment
            # is gone from the system either way.
            removed += 1
        except Exception as exc:  # pragma: no cover - defensive logging
            LOG.warning("failed to clean up shm segment %r: %s", name, exc)
    reg = _metrics.active()
    if reg is not None and removed:
        reg.counter("resilience.shm_cleanups").inc(removed)
    return removed


# ----------------------------------------------------------------------
# Orphan detection (segments whose creator died without unlinking)
# ----------------------------------------------------------------------

_SHM_DIR = "/dev/shm"


def _read_segment_pid(path: str) -> Optional[int]:
    """Creator pid of a ColumnStore segment file, or None if not ours."""
    try:
        with open(path, "rb") as fh:
            header = fh.read(SEGMENT_HEADER.size)
            if len(header) < SEGMENT_HEADER.size:
                return None
            magic, _version, meta_len = SEGMENT_HEADER.unpack(header)
            if magic != SEGMENT_MAGIC or meta_len > 64 * 1024 * 1024:
                return None
            import json

            meta = json.loads(fh.read(meta_len).decode("utf-8"))
    except (OSError, ValueError, UnicodeDecodeError):
        return None
    pid = meta.get("pid")
    return pid if isinstance(pid, int) else None


def scan_orphans(shm_dir: str = _SHM_DIR) -> List[str]:
    """ColumnStore segments under ``shm_dir`` whose creator is dead.

    Linux-only best effort (POSIX shared memory appears as files in
    ``/dev/shm``); returns an empty list where the directory does not
    exist. Segments without a recorded creator pid are never reported —
    better to leak than to reap a segment we cannot prove is dead.
    """
    if not os.path.isdir(shm_dir):
        return []
    orphans: List[str] = []
    for entry in sorted(os.listdir(shm_dir)):
        path = os.path.join(shm_dir, entry)
        if not os.path.isfile(path):
            continue
        pid = _read_segment_pid(path)
        if pid is not None and not pid_alive(pid):
            orphans.append(entry)
    return orphans


def reap_orphans(
    names: Optional[List[str]] = None,
    store_dirs: Optional[List[str]] = None,
) -> List[str]:
    """Unlink orphaned ColumnStore segments; returns the names removed.

    With ``names=None`` the segments come from :func:`scan_orphans`. Each
    candidate is re-checked (magic + dead creator) immediately before
    unlinking, so a racing healthy exporter is never reaped.

    ``store_dirs`` additionally sweeps durable segment-store directories
    (:mod:`repro.graph.segments`) for crash leftovers — stale ``*.tmp``
    seal attempts and ``*.quarantine-<pid>`` files whose quarantining
    process is dead (see :func:`scan_store_orphans`); removed paths are
    included in the returned list.
    """
    candidates = scan_orphans() if names is None else list(names)
    reaped: List[str] = []
    for name in candidates:
        path = os.path.join(_SHM_DIR, name)
        pid = _read_segment_pid(path)
        if pid is None or pid_alive(pid):
            continue
        if _unlink_by_name(name):
            LOG.warning(
                "reaped orphaned shm segment %r (creator pid %d is dead)",
                name,
                pid,
            )
            reaped.append(name)
    for store_dir in store_dirs or ():
        for path in scan_store_orphans(store_dir):
            try:
                os.remove(path)
            except OSError as exc:
                LOG.warning("failed to reap store leftover %r: %s", path, exc)
                continue
            LOG.warning("reaped stale segment-store file %r", path)
            reaped.append(path)
    reg = _metrics.active()
    if reg is not None and reaped:
        reg.counter("resilience.shm_orphans_reaped").inc(len(reaped))
    return reaped


# ----------------------------------------------------------------------
# Durable segment-store leftovers (crash artifacts on disk)
# ----------------------------------------------------------------------

#: Suffix of an in-flight seal: ``<segment>.tmp.<pid>``. The writer pid
#: rides in the filename so the scanner can prove the seal is dead
#: without parsing a half-written file.
TMP_MARKER = ".tmp."
#: Prefix-suffix of a quarantined segment: ``<segment>.quarantine-<pid>``.
QUARANTINE_MARKER = ".quarantine-"


def _trailing_pid(name: str, marker: str) -> Optional[int]:
    """The pid suffix of ``<stem><marker><pid>``, or None."""
    at = name.rfind(marker)
    if at < 0:
        return None
    suffix = name[at + len(marker):]
    return int(suffix) if suffix.isdigit() else None


def scan_store_orphans(store_dir: str) -> List[str]:
    """Crash leftovers in one durable segment-store directory.

    Two shapes, both provably dead before they are reported:

    * ``*.tmp.<pid>`` — a seal that never reached its atomic rename; the
      data was by definition unsealed (its manifest record was never
      written), so removing it loses nothing a crash had not already
      lost.
    * ``*.quarantine-<pid>`` — a corrupt segment set aside by fsck whose
      quarantining process has since died (kept while the pid lives so
      the operator who ran fsck can inspect the damage).

    Files whose embedded pid is still alive are never reported.
    """
    if not os.path.isdir(store_dir):
        return []
    leftovers: List[str] = []
    for entry in sorted(os.listdir(store_dir)):
        path = os.path.join(store_dir, entry)
        if not os.path.isfile(path):
            continue
        for marker in (TMP_MARKER, QUARANTINE_MARKER):
            pid = _trailing_pid(entry, marker)
            if pid is not None and not pid_alive(pid):
                leftovers.append(path)
                break
    return leftovers
