"""Deterministic fault injection for chaos testing the execution layer.

Two families of faults:

**Shard faults** target the parallel engine's worker tasks. A
:class:`FaultPlan` (a list of :class:`FaultSpec`) is serialized into the
``REPRO_FAULT_PLAN`` environment variable by the :func:`inject` context
manager; :func:`maybe_inject` — called by
:func:`repro.parallel.worker.run_shard_task` at the top of every shard
task, in whatever process it runs — matches the current (shard, task kind)
against the plan and fires the configured fault:

``"kill"``   ``os._exit`` the worker process mid-shard (downgraded to a
             raised :class:`InjectedFault` when running in the process
             that armed the plan, so serial fallbacks never kill the
             test/driver process itself).
``"raise"``  raise :class:`InjectedFault` from inside the task.
``"delay"``  sleep ``delay`` seconds before running the task — the tool
             for exercising shard timeouts.

Each spec fires for the first ``times`` matching *attempts per shard*,
counted across processes via atomic ``O_CREAT | O_EXCL`` marker files in
the plan's state directory — retry round ``times`` then succeeds, which is
exactly the transient-fault shape retries exist for. ``only_workers=True``
(default) restricts faults to pool worker processes; set it ``False`` to
also fault inline/serial execution and test error surfacing.

**Stream faults** perturb event streams for the streaming/checkpoint chaos
tests: :func:`drop_events`, :func:`duplicate_events`,
:func:`reorder_within_slack` (every event is displaced by at most
``slack`` time units — the exact disorder the detector's reorder buffer
must absorb), and :func:`corrupt_lines` for malformed-input handling. All
take an explicit ``random.Random`` so test failures replay exactly.
"""

from __future__ import annotations

import json
import os
import tempfile
import time as _time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, TypeVar

ENV_VAR = "REPRO_FAULT_PLAN"
#: Exit status used by the "kill" fault, distinctive in worker postmortems.
KILL_EXIT_CODE = 86

T = TypeVar("T")


class InjectedFault(RuntimeError):
    """Raised (or exited with) by an armed fault — never by real code."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: what to do, where, and how many times.

    Attributes
    ----------
    kind:
        ``"kill"``, ``"raise"`` or ``"delay"``.
    shards:
        Shard indices the rule applies to (``None`` = every shard).
    task_kinds:
        Inner task kinds (``"search"``, ``"count"``, ``"top_k"``,
        ``"batch"``) the rule applies to (``None`` = all).
    times:
        Fire for the first this-many matching attempts per shard;
        afterwards the shard runs clean. ``times=10**9`` approximates a
        permanent fault.
    delay:
        Sleep duration for ``kind="delay"``.
    only_workers:
        Restrict the fault to processes other than the one that armed the
        plan (i.e. pool workers). Keeps ``"kill"`` from terminating the
        driver when the engine degrades to thread/serial execution.
    """

    kind: str
    shards: Optional[Tuple[int, ...]] = None
    task_kinds: Optional[Tuple[str, ...]] = None
    times: int = 1
    delay: float = 0.0
    only_workers: bool = True

    def __post_init__(self) -> None:
        if self.kind not in ("kill", "raise", "delay"):
            raise ValueError(
                f"fault kind must be kill/raise/delay, got {self.kind!r}"
            )
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")

    def matches(self, shard_index: int, task_kind: str) -> bool:
        if self.shards is not None and shard_index not in self.shards:
            return False
        if self.task_kinds is not None and task_kind not in self.task_kinds:
            return False
        return True


class FaultPlan:
    """A set of :class:`FaultSpec` plus the cross-process attempt state."""

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        state_dir: str,
        owner_pid: Optional[int] = None,
    ) -> None:
        self.specs = tuple(specs)
        self.state_dir = state_dir
        self.owner_pid = os.getpid() if owner_pid is None else owner_pid

    # -- env-var transport -------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "owner_pid": self.owner_pid,
                "state_dir": self.state_dir,
                "specs": [asdict(spec) for spec in self.specs],
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        data = json.loads(payload)
        specs = []
        for raw in data["specs"]:
            raw = dict(raw)
            for key in ("shards", "task_kinds"):
                if raw.get(key) is not None:
                    raw[key] = tuple(raw[key])
            specs.append(FaultSpec(**raw))
        return cls(specs, data["state_dir"], owner_pid=data["owner_pid"])

    # -- firing ------------------------------------------------------------

    def _claim_attempt(self, spec_index: int, shard_index: int) -> int:
        """Atomically claim the next attempt number for (spec, shard).

        ``O_CREAT | O_EXCL`` marker files make the counter race-free
        across pool worker processes without locks or shared state.
        """
        n = 0
        while True:
            path = os.path.join(
                self.state_dir, f"spec{spec_index}-shard{shard_index}.{n}"
            )
            try:
                os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                return n
            except FileExistsError:
                n += 1

    def fire(self, shard_index: int, task_kind: str) -> None:
        """Inject whatever the plan prescribes for this (shard, kind)."""
        in_owner = os.getpid() == self.owner_pid
        for spec_index, spec in enumerate(self.specs):
            if not spec.matches(shard_index, task_kind):
                continue
            if spec.only_workers and in_owner:
                continue
            attempt = self._claim_attempt(spec_index, shard_index)
            if attempt >= spec.times:
                continue
            if spec.kind == "delay":
                _time.sleep(spec.delay)
                continue
            if spec.kind == "kill" and not in_owner:
                os._exit(KILL_EXIT_CODE)
            raise InjectedFault(
                f"injected {spec.kind} fault on shard {shard_index} "
                f"({task_kind}, attempt {attempt})"
            )


def maybe_inject(shard_index: int, task_kind: str) -> None:
    """Worker-side hook: fire the environment's fault plan, if any.

    Costs one dict lookup when no plan is armed — safe to leave in the
    production task path.
    """
    payload = os.environ.get(ENV_VAR)
    if not payload:
        return
    FaultPlan.from_json(payload).fire(shard_index, task_kind)


@contextmanager
def inject(
    *specs: FaultSpec, state_dir: Optional[str] = None
) -> Iterator[FaultPlan]:
    """Arm a fault plan for the duration of a ``with`` block.

    The plan travels to pool workers through the environment (inherited on
    fork/spawn at pool creation, which happens per dispatch round — after
    this context is entered). A temporary state directory is created (and
    removed) when none is given.
    """
    owned_tmp = None
    if state_dir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="repro-faults-")
        state_dir = owned_tmp.name
    plan = FaultPlan(specs, state_dir)
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = plan.to_json()
    try:
        yield plan
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous
        if owned_tmp is not None:
            owned_tmp.cleanup()


# ----------------------------------------------------------------------
# Named crash points (durable-storage chaos)
# ----------------------------------------------------------------------

CRASH_ENV = "REPRO_CRASH_POINTS"

#: Every crash point the segment-store seal/compaction path registers, in
#: execution order — the chaos suite iterates this list so a new point
#: cannot be added without being crash-tested.
SEAL_CRASH_POINTS = (
    "segments.seal.before_write",
    "segments.seal.before_fsync",
    "segments.seal.after_fsync",
    "segments.seal.after_rename",
    "segments.manifest.before_fsync",
)
COMPACT_CRASH_POINTS = (
    "segments.compact.before_seal",
    "segments.compact.after_seal",
    "segments.compact.before_reap",
)


def crash_point(name: str) -> None:
    """Durable-path chaos hook: die/raise here if the environment says so.

    Placed at the seams of the segment seal and compaction protocols
    (before fsync, between fsync and rename, mid-compaction). Costs one
    dict lookup when no plan is armed — safe on the production path.

    ``kind="kill"`` sends the *hardest* death available — ``SIGKILL`` to
    the current process (``os._exit`` where signals are unavailable) —
    so no flush, no atexit, no finally block softens the crash. Like
    :class:`FaultSpec`, a plan armed with ``only_children=True`` (the
    default) never kills the process that armed it.
    """
    payload = os.environ.get(CRASH_ENV)
    if not payload:
        return
    plan = json.loads(payload)
    spec = plan.get("points", {}).get(name)
    if spec is None:
        return
    if spec.get("only_children", True) and os.getpid() == plan.get("owner_pid"):
        return
    state_dir = plan.get("state_dir")
    if state_dir:
        # One marker file per firing, O_CREAT|O_EXCL — crash at most
        # `times` attempts, letting retry-after-crash tests converge.
        n = 0
        while True:
            marker = os.path.join(
                state_dir, f"crash-{name.replace(os.sep, '_')}.{n}"
            )
            try:
                os.close(
                    os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                )
                break
            except FileExistsError:
                n += 1
        if n >= spec.get("times", 1):
            return
    if spec.get("kind", "kill") == "raise":
        raise InjectedFault(f"injected crash at {name}")
    try:
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    except (OSError, AttributeError):  # pragma: no cover - non-POSIX
        pass
    os._exit(KILL_EXIT_CODE)  # pragma: no cover - SIGKILL normally lands


@contextmanager
def crash_at(
    *names: str,
    kind: str = "kill",
    times: int = 1,
    only_children: bool = True,
    state_dir: Optional[str] = None,
) -> Iterator[None]:
    """Arm named crash points for a ``with`` block (env-var transport).

    Child processes started inside the block (subprocess harnesses, pool
    workers) inherit the plan; ``only_children=False`` also fires in the
    arming process — only sane with ``kind="raise"``.
    """
    if kind not in ("kill", "raise"):
        raise ValueError(f"crash kind must be kill/raise, got {kind!r}")
    owned_tmp = None
    if state_dir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="repro-crash-")
        state_dir = owned_tmp.name
    plan = {
        "owner_pid": os.getpid(),
        "state_dir": state_dir,
        "points": {
            name: {
                "kind": kind,
                "times": times,
                "only_children": only_children,
            }
            for name in names
        },
    }
    previous = os.environ.get(CRASH_ENV)
    os.environ[CRASH_ENV] = json.dumps(plan)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(CRASH_ENV, None)
        else:
            os.environ[CRASH_ENV] = previous
        if owned_tmp is not None:
            owned_tmp.cleanup()


# ----------------------------------------------------------------------
# Stream perturbations
# ----------------------------------------------------------------------


def drop_events(events: Sequence[T], rate: float, rng) -> List[T]:
    """Drop each event independently with probability ``rate``."""
    return [event for event in events if rng.random() >= rate]


def duplicate_events(events: Sequence[T], rate: float, rng) -> List[T]:
    """Duplicate each event (immediately after itself) with probability
    ``rate`` — same timestamp, so time order is preserved."""
    out: List[T] = []
    for event in events:
        out.append(event)
        if rng.random() < rate:
            out.append(event)
    return out


def reorder_within_slack(
    events: Sequence[T], slack: float, rng, time_of=None
) -> List[T]:
    """Shuffle a time-ordered stream so no event is late by more than
    ``slack``.

    Each event is re-sorted by ``t + U(0, slack)``: an event at time ``t``
    can land after neighbours up to ``t + slack``, so the watermark when it
    arrives is at most ``t + slack`` — lateness ≤ ``slack``, the exact
    contract of the detector's reorder buffer. ``time_of`` extracts the
    timestamp (default: index 2 of a ``(src, dst, time, flow)`` tuple).
    """
    if time_of is None:
        time_of = lambda event: event[2]  # noqa: E731 - tiny accessor
    keyed = [
        (time_of(event) + rng.uniform(0.0, slack), index, event)
        for index, event in enumerate(events)
    ]
    keyed.sort(key=lambda item: (item[0], item[1]))
    return [event for _, _, event in keyed]


_CORRUPTIONS = ("truncate", "garbage-field", "missing-field", "binary-noise")


def corrupt_lines(lines: Sequence[str], rate: float, rng) -> Tuple[List[str], int]:
    """Corrupt each CSV line with probability ``rate``.

    Returns ``(lines, corrupted_count)``; corruption modes cover the
    malformed shapes the CLI quarantine must absorb: truncated lines,
    non-numeric fields, missing fields, and binary noise.
    """
    out: List[str] = []
    corrupted = 0
    for line in lines:
        if rng.random() >= rate:
            out.append(line)
            continue
        corrupted += 1
        mode = _CORRUPTIONS[rng.randrange(len(_CORRUPTIONS))]
        if mode == "truncate":
            out.append(line[: max(1, len(line) // 2)])
        elif mode == "garbage-field":
            fields = line.split(",")
            fields[-1] = "not-a-number"
            out.append(",".join(fields))
        elif mode == "missing-field":
            out.append(",".join(line.split(",")[:-1]))
        else:
            out.append("\x00\xff garbage \x00")
    return out, corrupted
