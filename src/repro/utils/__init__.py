"""Small shared utilities: timing, table rendering, validation."""

from repro.utils.timing import Stopwatch, Timer
from repro.utils.tables import format_table, format_series
from repro.utils.validation import (
    require,
    require_positive,
    require_non_negative,
)

__all__ = [
    "Stopwatch",
    "Timer",
    "format_table",
    "format_series",
    "require",
    "require_positive",
    "require_non_negative",
]
