"""Timing helpers used by the experiment harness and benchmarks."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring wall-clock time of a block.

    Example
    -------
    >>> with Timer() as t:
    ...     sum(range(1000))
    499500
    >>> t.elapsed >= 0.0
    True
    """

    __slots__ = ("elapsed", "_start")

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


class Stopwatch:
    """Accumulating stopwatch for measuring several phases separately.

    Each named phase accumulates the total time spent in blocks opened with
    :meth:`measure`. Used by the engine to report P1 vs P2 time the way the
    paper does (Table 4 reports phase-1 time alone).
    """

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}

    def measure(self, phase: str) -> "_PhaseContext":
        """Return a context manager adding its duration to ``phase``."""
        return _PhaseContext(self, phase)

    def add(self, phase: str, seconds: float) -> None:
        """Add ``seconds`` to the accumulated total of ``phase``."""
        self._totals[phase] = self._totals.get(phase, 0.0) + seconds

    def total(self, phase: str) -> float:
        """Total seconds accumulated for ``phase`` (0.0 if never measured)."""
        return self._totals.get(phase, 0.0)

    def phases(self) -> dict[str, float]:
        """A copy of all accumulated phase totals."""
        return dict(self._totals)

    def reset(self) -> None:
        """Clear all accumulated totals."""
        self._totals.clear()


class _PhaseContext:
    __slots__ = ("_watch", "_phase", "_start")

    def __init__(self, watch: Stopwatch, phase: str) -> None:
        self._watch = watch
        self._phase = phase
        self._start = 0.0

    def __enter__(self) -> "_PhaseContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._watch.add(self._phase, time.perf_counter() - self._start)
