"""Timing helpers used by the experiment harness and benchmarks."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List


class Timer:
    """Context manager measuring wall-clock time of a block.

    Example
    -------
    >>> with Timer() as t:
    ...     sum(range(1000))
    499500
    >>> t.elapsed >= 0.0
    True
    """

    __slots__ = ("elapsed", "_start")

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


class Stopwatch:
    """Accumulating stopwatch for measuring several phases separately.

    Each named phase accumulates the total time spent in blocks opened with
    :meth:`measure`. Used by the engine to report P1 vs P2 time the way the
    paper does (Table 4 reports phase-1 time alone).
    """

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}
        # Concurrent measure() blocks on the same phase race on the
        # read-modify-write in add(); the lock makes accumulation exact
        # (regression-tested in tests/test_utils.py).
        self._lock = threading.Lock()

    def measure(self, phase: str) -> "_PhaseContext":
        """Return a context manager adding its duration to ``phase``."""
        return _PhaseContext(self, phase)

    def add(self, phase: str, seconds: float) -> None:
        """Add ``seconds`` to the accumulated total of ``phase``."""
        with self._lock:
            self._totals[phase] = self._totals.get(phase, 0.0) + seconds

    def total(self, phase: str) -> float:
        """Total seconds accumulated for ``phase`` (0.0 if never measured)."""
        with self._lock:
            return self._totals.get(phase, 0.0)

    def phases(self) -> dict[str, float]:
        """A copy of all accumulated phase totals."""
        with self._lock:
            return dict(self._totals)

    def reset(self) -> None:
        """Clear all accumulated totals."""
        with self._lock:
            self._totals.clear()


@dataclass
class ShardTiming:
    """Wall-clock breakdown of one shard's search in a parallel run.

    Attributes
    ----------
    shard_index:
        Position of the shard in the time partition.
    p1_seconds, p2_seconds:
        Phase P1 (structural matching) / P2 (instance search) time spent
        inside the shard's worker.
    num_matches, num_instances:
        Work counters: structural matches examined and owned instances
        produced by the shard.
    """

    shard_index: int
    p1_seconds: float = 0.0
    p2_seconds: float = 0.0
    num_matches: int = 0
    num_instances: int = 0

    @property
    def total_seconds(self) -> float:
        """Shard wall-clock time (P1 + P2)."""
        return self.p1_seconds + self.p2_seconds


@dataclass
class ShardTimingReport:
    """Per-shard timing breakdown of one parallel search.

    The aggregates are what parallel-efficiency charts need
    (``benchmarks/bench_parallel_scaling.py``): the critical path is the
    slowest shard (``max_seconds``), the total work is ``sum_seconds``, and
    ``imbalance_ratio`` — max over mean — is 1.0 for a perfectly balanced
    partition and grows as stragglers dominate.

    Example
    -------
    >>> report = ShardTimingReport([
    ...     ShardTiming(0, p1_seconds=1.0, p2_seconds=1.0),
    ...     ShardTiming(1, p1_seconds=0.5, p2_seconds=0.5),
    ... ])
    >>> report.max_seconds, report.sum_seconds, round(report.imbalance_ratio, 3)
    (2.0, 3.0, 1.333)
    """

    shards: List[ShardTiming] = field(default_factory=list)
    #: Wall-clock time of the whole fan-out/merge as seen by the caller
    #: (includes pool scheduling and result transfer overhead).
    wall_seconds: float = 0.0

    @property
    def num_shards(self) -> int:
        """Number of shards in the report."""
        return len(self.shards)

    @property
    def max_seconds(self) -> float:
        """Slowest shard's total time — the parallel critical path."""
        if not self.shards:
            return 0.0
        return max(s.total_seconds for s in self.shards)

    @property
    def sum_seconds(self) -> float:
        """Aggregate work across all shards (serial-equivalent time)."""
        return sum(s.total_seconds for s in self.shards)

    @property
    def mean_seconds(self) -> float:
        """Average shard total time."""
        if not self.shards:
            return 0.0
        return self.sum_seconds / len(self.shards)

    @property
    def imbalance_ratio(self) -> float:
        """Max shard time over mean shard time (>= 1.0; 1.0 is balanced)."""
        mean = self.mean_seconds
        if mean <= 0.0:
            return 1.0
        return self.max_seconds / mean

    def summary(self) -> dict:
        """JSON-friendly aggregate view (for benchmarks and the CLI)."""
        return {
            "num_shards": self.num_shards,
            "wall_seconds": self.wall_seconds,
            "max_seconds": self.max_seconds,
            "sum_seconds": self.sum_seconds,
            "mean_seconds": self.mean_seconds,
            "imbalance_ratio": self.imbalance_ratio,
        }


class _PhaseContext:
    __slots__ = ("_watch", "_phase", "_start")

    def __init__(self, watch: Stopwatch, phase: str) -> None:
        self._watch = watch
        self._phase = phase
        self._start = 0.0

    def __enter__(self) -> "_PhaseContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._watch.add(self._phase, time.perf_counter() - self._start)
