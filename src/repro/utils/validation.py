"""Argument-validation helpers shared across the library.

Errors are raised early with precise messages; the library never silently
coerces invalid interaction data (a flow of zero or a NaN timestamp would
corrupt instance flows downstream in ways that are very hard to debug).
"""

from __future__ import annotations

import math
from typing import Union

Number = Union[int, float]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: Number, name: str) -> None:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if math.isnan(value) or math.isinf(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: Number, name: str) -> None:
    """Validate that ``value`` is a finite number greater than or equal to zero."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if math.isnan(value) or math.isinf(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
