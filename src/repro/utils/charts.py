"""Terminal charts for experiment series (no plotting dependencies).

The paper's figures are line charts; in a terminal we render each series
as horizontal bars scaled to the maximum value, one block per x-value.
Used by the CLI's ``--chart`` flag so sweeps can be eyeballed without
leaving the shell.
"""

from __future__ import annotations

from typing import Dict, Sequence

_BAR = "█"
_HALF = "▌"


def bar_chart(
    labels: Sequence[object],
    values: Sequence[float],
    width: int = 40,
    title: str = "",
) -> str:
    """One horizontal bar per (label, value), scaled to ``width`` columns."""
    if len(labels) != len(values):
        raise ValueError(
            f"labels and values must have equal length "
            f"({len(labels)} != {len(values)})"
        )
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    lines = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines + ["(no data)"])
    peak = max(values)
    label_width = max(len(str(label)) for label in labels)
    for label, value in zip(labels, values):
        if peak <= 0:
            filled = 0.0
        else:
            filled = max(0.0, value) / peak * width
        whole = int(filled)
        bar = _BAR * whole + (_HALF if filled - whole >= 0.5 else "")
        lines.append(
            f"{str(label).rjust(label_width)} | {bar} {value:g}"
        )
    return "\n".join(lines)


def series_chart(
    x_values: Sequence[object],
    lines: Dict[str, Sequence[float]],
    width: int = 40,
    title: str = "",
) -> str:
    """Bar-chart every series of a figure, one block per series."""
    blocks = []
    if title:
        blocks.append(f"== {title} ==")
    for name, values in lines.items():
        blocks.append(
            bar_chart(
                x_values[: len(values)], list(values), width=width, title=name
            )
        )
        blocks.append("")
    return "\n".join(blocks).rstrip()
