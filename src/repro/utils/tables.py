"""Plain-text table and series rendering for the experiment harness.

The experiment modules print the same rows/series the paper reports; these
helpers render them as aligned ASCII (default) or GitHub markdown, which is
what EXPERIMENTS.md embeds.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    markdown: bool = False,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Iterable of rows; each row must have ``len(headers)`` cells.
    markdown:
        When true, emit a GitHub-flavoured markdown table instead of the
        ASCII layout.
    """
    header_cells = [str(h) for h in headers]
    str_rows = []
    for row in rows:
        cells = [_stringify(c) for c in row]
        if len(cells) != len(header_cells):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(header_cells)}"
            )
        str_rows.append(cells)

    widths = [len(h) for h in header_cells]
    for cells in str_rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    if markdown:
        lines = [
            "| " + " | ".join(h.ljust(w) for h, w in zip(header_cells, widths)) + " |",
            "|" + "|".join("-" * (w + 2) for w in widths) + "|",
        ]
        for cells in str_rows:
            lines.append(
                "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"
            )
        return "\n".join(lines)

    sep = "  "
    lines = [sep.join(h.ljust(w) for h, w in zip(header_cells, widths))]
    lines.append(sep.join("-" * w for w in widths))
    for cells in str_rows:
        lines.append(sep.join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    markdown: bool = False,
) -> str:
    """Render one x-axis and several named y-series as a table.

    This matches the figures in the paper that plot one line per motif: the
    x axis (δ, φ, k, sample name) becomes the first column and each motif a
    further column.
    """
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row: list[object] = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else "")
        rows.append(row)
    return format_table(headers, rows, markdown=markdown)
