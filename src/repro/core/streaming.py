"""Online (streaming) flow-motif detection.

The paper motivates flow motifs with Financial Intelligence Units watching
for suspicious transaction patterns — an inherently *online* task: alerts
should fire as soon as a pattern completes, not in a nightly batch. This
module provides a streaming detector with an exactly-once guarantee:

* interactions are fed in non-decreasing time order (:meth:`~StreamingDetector.add`);
* :meth:`~StreamingDetector.poll` emits every maximal instance whose
  δ-window has *closed* (window end strictly below the current watermark),
  each exactly once;
* :meth:`~StreamingDetector.flush` closes all remaining windows at end of
  stream (after which the stream cannot be extended).

The union of all emissions equals the offline
:func:`repro.core.enumeration.find_instances` output on the full stream
(property-tested in ``tests/property/test_streaming_oracle.py``).
Correctness rests on two facts about Algorithm 1:

1. an instance anchored at window ``[a, a + δ]`` uses only events with
   timestamp ≤ ``a + δ``, so it is fully determined once the watermark
   passes the window end;
2. its *maximality* additionally depends only on events ≤ ``a + δ`` (any
   later event would violate δ), plus the skip-rule comparison with the
   previous anchor — which is also historical. Per (match, anchor) windows
   are therefore finalizable in anchor order, tracking the last processed
   anchor and its last-edge frontier per structural match.

Complexity. The default ``mode="incremental"`` maintains everything
per appended edge (see :mod:`repro.core.incremental`): the growable
time-series graph gains the event in O(1) amortized, structural matches
are extended only through newly connected pairs, and polls pop exactly
the matches whose next window deadline has passed — never the whole match
set, and never a rebuilt graph. ``rebuild_count`` is the contract: it
stays **0** for the detector's whole lifetime after construction
(regression-tested; ``benchmarks/bench_streaming_incremental.py``
quantifies the win). ``mode="rebuild"`` keeps the legacy behaviour —
rebuild the view and the match list on the first poll after any add — as
the ablation/benchmark baseline; both modes share the per-match window
sweep, so their emissions are identical by construction.
"""

from __future__ import annotations

import warnings
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from repro.core.enumeration import match_is_feasible
from repro.core.incremental import (
    IncrementalMatcher,
    MatchProgress,
    match_key,
    sweep_closed_windows,
)
from repro.core.instance import MotifInstance
from repro.core.matching import iter_structural_matches
from repro.core.motif import Motif
from repro.graph.events import Interaction, Node
from repro.graph.timeseries import (
    EdgeSeries,
    GrowableTimeSeriesGraph,
    TimeSeriesGraph,
)


class StreamingDetector:
    """Exactly-once online detector for one flow motif.

    Parameters
    ----------
    motif:
        The flow motif (δ and φ are taken from it unless overridden).
    delta, phi:
        Optional constraint overrides.
    mode:
        ``"incremental"`` (default) — per-edge maintenance, no rebuilds.
        ``"rebuild"`` — the legacy rebuild-on-poll baseline, kept for
        ablation and the streaming benchmark.
    slack:
        Bounded out-of-order tolerance. Events are admitted as long as
        they are no more than ``slack`` time units behind the watermark
        (the maximum timestamp observed); they wait in a reordering
        buffer and are released to the matcher in time order once the
        watermark has moved ``slack`` past them. The emission horizon is
        correspondingly held back to ``watermark - slack``, so the
        exactly-once guarantee and the offline-oracle equivalence are
        unchanged — windows only finalize once no admissible event can
        still land inside them. ``slack=0`` (default) is the strict
        time-ordered contract with zero buffering overhead.
    late:
        What to do with events older than ``watermark - slack``:
        ``"raise"`` (default) raises :class:`ValueError`; ``"drop"``
        discards the event, counts it in ``late_dropped``, and makes
        :meth:`add` return False.

    Example
    -------
    >>> from repro.core.motif import Motif
    >>> detector = StreamingDetector(Motif.chain(3, delta=10, phi=0))
    >>> detector.add("a", "b", time=1, flow=5)
    >>> detector.add("b", "c", time=3, flow=4)
    >>> detector.poll()            # window [1, 11] still open
    []
    >>> detector.add("x", "y", time=50, flow=1)
    >>> [round(i.flow, 1) for i in detector.poll()]
    [4.0]
    >>> detector.rebuild_count
    0
    """

    def __init__(
        self,
        motif: Motif,
        delta: Optional[float] = None,
        phi: Optional[float] = None,
        mode: str = "incremental",
        slack: float = 0.0,
        late: str = "raise",
    ) -> None:
        if mode not in ("incremental", "rebuild"):
            raise ValueError(
                f"mode must be 'incremental' or 'rebuild', got {mode!r}"
            )
        if slack < 0:
            raise ValueError(f"slack must be >= 0, got {slack!r}")
        if late not in ("raise", "drop"):
            raise ValueError(f"late must be 'raise' or 'drop', got {late!r}")
        self.motif = motif
        self.delta = motif.delta if delta is None else delta
        self.phi = motif.phi if phi is None else phi
        self.mode = mode
        self.slack = float(slack)
        self.late = late
        self._graph = GrowableTimeSeriesGraph()
        self._watermark = float("-inf")
        # Reordering buffer: a min-heap of (time, seq, src, dst, flow).
        # The arrival sequence number breaks timestamp ties, so events
        # with equal times are released in arrival order — exactly the
        # order a strictly time-sorted stream would have delivered them.
        self._pending: List[Tuple[float, int, Node, Node, float]] = []
        self._seq = 0
        self._late_dropped = 0
        self._rebuild_count = 0
        self._emitted = 0
        self._flushed = False
        # Emissions land here before a poll/flush returns them: if an
        # exception (e.g. KeyboardInterrupt in a live CLI session) aborts
        # a poll mid-sweep, the already-finalized instances survive and
        # come out of the next poll()/flush() instead of being lost —
        # the progress cursors have already moved past their windows.
        self._out_buffer: List[MotifInstance] = []
        self._matcher: Optional[IncrementalMatcher] = None
        if mode == "incremental":
            self._matcher = IncrementalMatcher(
                self._graph, motif, self.delta, self.phi
            )
        else:
            # Legacy rebuild-on-poll state: the cached view + match list
            # (invalidated by any add) and per-match progress, keyed by
            # the *full* edge mapping — the vertex map alone could make
            # distinct matches share skip-rule state (see match_key).
            self._dirty = True
            self._ts: Optional[TimeSeriesGraph] = None
            self._matches: Optional[List] = None
            self._progress: Dict[tuple, MatchProgress] = {}

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def add(self, src: Node, dst: Node, time: float, flow: float) -> bool:
        """Ingest one interaction.

        With ``slack=0`` timestamps must be non-decreasing; with a
        positive slack an event may lag the watermark by up to ``slack``
        and is re-sequenced through the reordering buffer. Returns True
        when the event was admitted, False when it was older than the
        slack allows and the ``late="drop"`` policy discarded it.
        """
        if self._flushed:
            raise ValueError(
                "stream already flushed; flush() finalizes every window, "
                "so further adds would violate the exactly-once guarantee"
            )
        interaction = Interaction(src, dst, time, flow).validate()
        frontier = self._watermark - self.slack
        if interaction.time < frontier:
            if self.late == "drop":
                self._late_dropped += 1
                return False
            raise ValueError(
                f"out-of-order interaction at t={interaction.time} "
                f"(watermark {self._watermark}, slack {self.slack}); "
                f"the event is older than the reordering buffer can "
                f"re-sequence"
            )
        if self.slack == 0:
            # Fast path: an admissible event is already at or past the
            # watermark, so it can go straight to the matcher — the
            # buffer would release it immediately anyway.
            self._watermark = interaction.time
            self._ingest(src, dst, interaction.time, interaction.flow)
            return True
        heappush(
            self._pending,
            (interaction.time, self._seq, src, dst, interaction.flow),
        )
        self._seq += 1
        if interaction.time > self._watermark:
            self._watermark = interaction.time
        self._release(self._watermark - self.slack)
        return True

    def _ingest(self, src: Node, dst: Node, time: float, flow: float) -> None:
        """Hand one (now provably in-order) event to the matcher/graph."""
        if self._matcher is not None:
            self._matcher.add(src, dst, time, flow)
        else:
            self._graph.append(src, dst, time, flow)
            self._dirty = True

    def _release(self, frontier: float) -> None:
        """Drain buffered events with ``time <= frontier`` in time order.

        Release order is globally non-decreasing: an admitted event's
        timestamp is always >= the frontier at admission time, and the
        frontier only moves forward — so nothing admitted later can sort
        before an event already released.
        """
        pending = self._pending
        while pending and pending[0][0] <= frontier:
            time, _, src, dst, flow = heappop(pending)
            self._ingest(src, dst, time, flow)

    @property
    def watermark(self) -> float:
        """Largest interaction timestamp observed so far."""
        return self._watermark

    @property
    def pending_count(self) -> int:
        """Events waiting in the reordering buffer."""
        return len(self._pending)

    @property
    def late_dropped(self) -> int:
        """Events discarded by the ``late="drop"`` policy."""
        return self._late_dropped

    @property
    def emitted_count(self) -> int:
        """Total instances emitted so far."""
        return self._emitted

    @property
    def rebuild_count(self) -> int:
        """How many times the time-series view was rebuilt from scratch.

        The incremental mode's contract is that this stays **0** for the
        detector's whole lifetime: the graph grows in place and matches
        are discovered per new pair. In ``mode="rebuild"`` it counts the
        legacy rebuild-on-first-poll-after-add events.
        """
        return self._rebuild_count

    @property
    def match_count(self) -> int:
        """Structural matches currently known to the detector."""
        if self._matcher is not None:
            return self._matcher.match_count
        return len(self._matches) if self._matches is not None else 0

    @property
    def num_events(self) -> int:
        """Total interactions ingested."""
        return self._graph.num_events

    def stats(self) -> dict:
        """Deprecated: use :meth:`metrics` (shared ``stream.*`` namespace).

        Kept as a thin adapter over the registry-backed counters so
        existing dashboards keep working; the dict shape is unchanged.
        """
        warnings.warn(
            "StreamingDetector.stats() is deprecated; use "
            "StreamingDetector.metrics() for the registry-backed view",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._stats_dict()

    def _stats_dict(self) -> dict:
        base = {
            "mode": self.mode,
            "events": self._graph.num_events,
            "pairs": self._graph.num_series,
            "matches": self.match_count,
            "emitted": self._emitted,
            "rebuilds": self._rebuild_count,
            "slack": self.slack,
            "pending": len(self._pending),
            "late_dropped": self._late_dropped,
        }
        if self._matcher is not None:
            base["scheduled_matches"] = self._matcher.scheduled_count
            base["feasibility_checks"] = self._matcher.feasibility_checks
        return base

    def metrics(self) -> "MetricsRegistry":
        """The detector's state as a fresh :class:`MetricsRegistry`.

        Built lazily from the plain-int counters the hot paths maintain
        unconditionally — constructing the registry costs nothing per
        event, and the result merges associatively with engine/worker
        registries into one report (shared ``stream.*`` / ``p1.*``
        namespace with the batch side).
        """
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("stream.events").inc(self._graph.num_events)
        registry.counter("stream.emitted").inc(self._emitted)
        registry.counter("stream.rebuilds").inc(self._rebuild_count)
        registry.counter("stream.late_dropped").inc(self._late_dropped)
        registry.gauge("stream.pairs").set(self._graph.num_series)
        registry.gauge("stream.matches").set(self.match_count)
        registry.gauge("stream.slack").set(self.slack)
        registry.gauge("stream.reorder_depth").set(len(self._pending))
        # Watermark lag: how far the oldest buffered event trails the
        # watermark — 0 when the reorder buffer is empty or slack is 0.
        lag = (
            self._watermark - self._pending[0][0] if self._pending else 0.0
        )
        registry.gauge("stream.watermark_lag").set(lag)
        if self._matcher is not None:
            matcher = self._matcher
            registry.gauge("stream.scheduled_matches").set(
                matcher.scheduled_count
            )
            registry.counter("p1.matches_discovered").inc(
                matcher.matches_discovered
            )
            registry.counter("p1.feasibility_checks").inc(
                matcher.feasibility_checks
            )
            registry.counter("p1.expansions").inc(matcher.expansions)
            registry.counter("p1.watchlist_hits").inc(matcher.watchlist_hits)
            registry.counter("stream.heap_pushes").inc(matcher.heap_pushes)
            registry.counter("stream.heap_pops").inc(matcher.heap_pops)
        return registry

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def _emit_for_horizon_rebuild(self, horizon: float, sink) -> None:
        if self._dirty or self._ts is None:
            # Legacy behaviour: rebuild the whole view and re-enumerate
            # all structural matches — O(|E| + matches) per dirty poll.
            self._ts = TimeSeriesGraph(
                EdgeSeries(s.src, s.dst, list(s.times), list(s.flows))
                for s in self._graph.all_series()
            )
            self._matches = list(
                iter_structural_matches(
                    self._ts, self.motif, phi=self.phi, temporal_pruning=True
                )
            )
            self._rebuild_count += 1
            self._dirty = False
        for match in self._matches:
            if not match_is_feasible(match.series, self.phi):
                continue
            key = match_key(match)
            progress = self._progress.get(key)
            if progress is None:
                progress = self._progress[key] = MatchProgress()
            sweep_closed_windows(
                match, progress, horizon, self.delta, self.phi, sink
            )

    def _emit_for_horizon(self, horizon: float) -> List[MotifInstance]:
        buffer = self._out_buffer
        if self._graph.num_events > 0:
            if self._matcher is not None:
                self._matcher.emit_closed(horizon, buffer.append)
            else:
                self._emit_for_horizon_rebuild(horizon, buffer.append)
        instances = list(buffer)
        buffer.clear()
        self._emitted += len(instances)
        return instances

    def poll(self) -> List[MotifInstance]:
        """Emit instances whose windows have provably closed.

        With ``slack=0`` the horizon is the watermark itself; with a
        positive slack it is held back to ``watermark - slack``, because
        an event inside that margin may still arrive and extend a window.
        Call after a batch of :meth:`add` calls.
        """
        return self._emit_for_horizon(self._watermark - self.slack)

    def flush(self) -> List[MotifInstance]:
        """End of stream: close and emit every remaining window.

        Drains the reordering buffer (no more events can arrive, so
        everything buffered is final), then finalizes windows whose end
        lies beyond the watermark — the stream is over and subsequent
        :meth:`add` calls raise. Calling flush (or poll) again is a
        harmless no-op.
        """
        self._release(float("inf"))
        result = self._emit_for_horizon(float("inf"))
        self._flushed = True
        return result

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def checkpoint(self) -> dict:
        """Snapshot the full detector state as a JSON-safe dict.

        Captures the graph, the per-match skip-rule cursors, the
        reordering buffer, and any finalized-but-unreturned emissions —
        everything needed for :meth:`restore` to continue the stream as
        if it was never interrupted (round-trip equivalence with an
        uninterrupted run is property-tested against the offline oracle
        in ``tests/resilience/test_checkpoint.py``).
        """
        from repro.resilience.checkpoint import detector_state

        return detector_state(self)

    @classmethod
    def restore(cls, state: dict) -> "StreamingDetector":
        """Rebuild a detector from a :meth:`checkpoint` snapshot."""
        from repro.resilience.checkpoint import restore_detector

        return restore_detector(state)
