"""Online (streaming) flow-motif detection.

The paper motivates flow motifs with Financial Intelligence Units watching
for suspicious transaction patterns — an inherently *online* task: alerts
should fire as soon as a pattern completes, not in a nightly batch. This
module provides a streaming detector with an exactly-once guarantee:

* interactions are fed in non-decreasing time order (:meth:`~StreamingDetector.add`);
* :meth:`~StreamingDetector.poll` emits every maximal instance whose
  δ-window has *closed* (window end strictly below the current watermark),
  each exactly once;
* :meth:`~StreamingDetector.flush` closes all remaining windows at end of
  stream (after which the stream cannot be extended).

The union of all emissions equals the offline
:func:`repro.core.enumeration.find_instances` output on the full stream
(property-tested in ``tests/property/test_streaming_oracle.py``).
Correctness rests on two facts about Algorithm 1:

1. an instance anchored at window ``[a, a + δ]`` uses only events with
   timestamp ≤ ``a + δ``, so it is fully determined once the watermark
   passes the window end;
2. its *maximality* additionally depends only on events ≤ ``a + δ`` (any
   later event would violate δ), plus the skip-rule comparison with the
   previous anchor — which is also historical. Per (match, anchor) windows
   are therefore finalizable in anchor order, tracking the last processed
   anchor and its last-edge frontier per structural match.

Complexity. The default ``mode="incremental"`` maintains everything
per appended edge (see :mod:`repro.core.incremental`): the growable
time-series graph gains the event in O(1) amortized, structural matches
are extended only through newly connected pairs, and polls pop exactly
the matches whose next window deadline has passed — never the whole match
set, and never a rebuilt graph. ``rebuild_count`` is the contract: it
stays **0** for the detector's whole lifetime after construction
(regression-tested; ``benchmarks/bench_streaming_incremental.py``
quantifies the win). ``mode="rebuild"`` keeps the legacy behaviour —
rebuild the view and the match list on the first poll after any add — as
the ablation/benchmark baseline; both modes share the per-match window
sweep, so their emissions are identical by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.enumeration import match_is_feasible
from repro.core.incremental import (
    IncrementalMatcher,
    MatchProgress,
    match_key,
    sweep_closed_windows,
)
from repro.core.instance import MotifInstance
from repro.core.matching import iter_structural_matches
from repro.core.motif import Motif
from repro.graph.events import Interaction, Node
from repro.graph.timeseries import (
    EdgeSeries,
    GrowableTimeSeriesGraph,
    TimeSeriesGraph,
)


class StreamingDetector:
    """Exactly-once online detector for one flow motif.

    Parameters
    ----------
    motif:
        The flow motif (δ and φ are taken from it unless overridden).
    delta, phi:
        Optional constraint overrides.
    mode:
        ``"incremental"`` (default) — per-edge maintenance, no rebuilds.
        ``"rebuild"`` — the legacy rebuild-on-poll baseline, kept for
        ablation and the streaming benchmark.

    Example
    -------
    >>> from repro.core.motif import Motif
    >>> detector = StreamingDetector(Motif.chain(3, delta=10, phi=0))
    >>> detector.add("a", "b", time=1, flow=5)
    >>> detector.add("b", "c", time=3, flow=4)
    >>> detector.poll()            # window [1, 11] still open
    []
    >>> detector.add("x", "y", time=50, flow=1)
    >>> [round(i.flow, 1) for i in detector.poll()]
    [4.0]
    >>> detector.rebuild_count
    0
    """

    def __init__(
        self,
        motif: Motif,
        delta: Optional[float] = None,
        phi: Optional[float] = None,
        mode: str = "incremental",
    ) -> None:
        if mode not in ("incremental", "rebuild"):
            raise ValueError(
                f"mode must be 'incremental' or 'rebuild', got {mode!r}"
            )
        self.motif = motif
        self.delta = motif.delta if delta is None else delta
        self.phi = motif.phi if phi is None else phi
        self.mode = mode
        self._graph = GrowableTimeSeriesGraph()
        self._watermark = float("-inf")
        self._rebuild_count = 0
        self._emitted = 0
        self._flushed = False
        # Emissions land here before a poll/flush returns them: if an
        # exception (e.g. KeyboardInterrupt in a live CLI session) aborts
        # a poll mid-sweep, the already-finalized instances survive and
        # come out of the next poll()/flush() instead of being lost —
        # the progress cursors have already moved past their windows.
        self._out_buffer: List[MotifInstance] = []
        self._matcher: Optional[IncrementalMatcher] = None
        if mode == "incremental":
            self._matcher = IncrementalMatcher(
                self._graph, motif, self.delta, self.phi
            )
        else:
            # Legacy rebuild-on-poll state: the cached view + match list
            # (invalidated by any add) and per-match progress, keyed by
            # the *full* edge mapping — the vertex map alone could make
            # distinct matches share skip-rule state (see match_key).
            self._dirty = True
            self._ts: Optional[TimeSeriesGraph] = None
            self._matches: Optional[List] = None
            self._progress: Dict[tuple, MatchProgress] = {}

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def add(self, src: Node, dst: Node, time: float, flow: float) -> None:
        """Ingest one interaction; timestamps must be non-decreasing."""
        if self._flushed:
            raise ValueError(
                "stream already flushed; flush() finalizes every window, "
                "so further adds would violate the exactly-once guarantee"
            )
        interaction = Interaction(src, dst, time, flow).validate()
        if interaction.time < self._watermark:
            raise ValueError(
                f"out-of-order interaction at t={interaction.time} "
                f"(watermark {self._watermark}); the stream must be "
                f"time-ordered"
            )
        self._watermark = interaction.time
        if self._matcher is not None:
            self._matcher.add(src, dst, interaction.time, interaction.flow)
        else:
            self._graph.append(src, dst, interaction.time, interaction.flow)
            self._dirty = True

    @property
    def watermark(self) -> float:
        """Timestamp of the latest ingested interaction."""
        return self._watermark

    @property
    def emitted_count(self) -> int:
        """Total instances emitted so far."""
        return self._emitted

    @property
    def rebuild_count(self) -> int:
        """How many times the time-series view was rebuilt from scratch.

        The incremental mode's contract is that this stays **0** for the
        detector's whole lifetime: the graph grows in place and matches
        are discovered per new pair. In ``mode="rebuild"`` it counts the
        legacy rebuild-on-first-poll-after-add events.
        """
        return self._rebuild_count

    @property
    def match_count(self) -> int:
        """Structural matches currently known to the detector."""
        if self._matcher is not None:
            return self._matcher.match_count
        return len(self._matches) if self._matches is not None else 0

    @property
    def num_events(self) -> int:
        """Total interactions ingested."""
        return self._graph.num_events

    def stats(self) -> dict:
        """Operational counters (useful for monitoring dashboards)."""
        base = {
            "mode": self.mode,
            "events": self._graph.num_events,
            "pairs": self._graph.num_series,
            "matches": self.match_count,
            "emitted": self._emitted,
            "rebuilds": self._rebuild_count,
        }
        if self._matcher is not None:
            base["scheduled_matches"] = self._matcher.scheduled_count
            base["feasibility_checks"] = self._matcher.feasibility_checks
        return base

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def _emit_for_horizon_rebuild(self, horizon: float, sink) -> None:
        if self._dirty or self._ts is None:
            # Legacy behaviour: rebuild the whole view and re-enumerate
            # all structural matches — O(|E| + matches) per dirty poll.
            self._ts = TimeSeriesGraph(
                EdgeSeries(s.src, s.dst, list(s.times), list(s.flows))
                for s in self._graph.all_series()
            )
            self._matches = list(
                iter_structural_matches(
                    self._ts, self.motif, phi=self.phi, temporal_pruning=True
                )
            )
            self._rebuild_count += 1
            self._dirty = False
        for match in self._matches:
            if not match_is_feasible(match.series, self.phi):
                continue
            key = match_key(match)
            progress = self._progress.get(key)
            if progress is None:
                progress = self._progress[key] = MatchProgress()
            sweep_closed_windows(
                match, progress, horizon, self.delta, self.phi, sink
            )

    def _emit_for_horizon(self, horizon: float) -> List[MotifInstance]:
        buffer = self._out_buffer
        if self._graph.num_events > 0:
            if self._matcher is not None:
                self._matcher.emit_closed(horizon, buffer.append)
            else:
                self._emit_for_horizon_rebuild(horizon, buffer.append)
        instances = list(buffer)
        buffer.clear()
        self._emitted += len(instances)
        return instances

    def poll(self) -> List[MotifInstance]:
        """Emit instances whose windows closed strictly before the
        watermark. Call after a batch of :meth:`add` calls."""
        return self._emit_for_horizon(self._watermark)

    def flush(self) -> List[MotifInstance]:
        """End of stream: close and emit every remaining window.

        Finalizes windows whose end lies beyond the watermark, so the
        stream is over — subsequent :meth:`add` calls raise. Calling
        flush (or poll) again is a harmless no-op.
        """
        result = self._emit_for_horizon(float("inf"))
        self._flushed = True
        return result
