"""Online (streaming) flow-motif detection.

The paper motivates flow motifs with Financial Intelligence Units watching
for suspicious transaction patterns — an inherently *online* task: alerts
should fire as soon as a pattern completes, not in a nightly batch. This
module provides a streaming wrapper around the offline machinery with an
exactly-once guarantee:

* interactions are fed in non-decreasing time order (:meth:`~StreamingDetector.add`);
* :meth:`~StreamingDetector.poll` emits every maximal instance whose
  δ-window has *closed* (window end strictly below the current watermark),
  each exactly once;
* :meth:`~StreamingDetector.flush` closes all remaining windows at end of
  stream.

The union of all emissions equals the offline
:func:`repro.core.enumeration.find_instances` output on the full stream
(property-tested). Correctness rests on two facts about Algorithm 1:

1. an instance anchored at window ``[a, a + δ]`` uses only events with
   timestamp ≤ ``a + δ``, so it is fully determined once the watermark
   passes the window end;
2. its *maximality* additionally depends only on events ≤ ``a + δ`` (any
   later event would violate δ), plus the skip-rule comparison with the
   previous anchor — which is also historical. Per (match, anchor) windows
   are therefore finalizable in anchor order, tracking the last processed
   anchor and its last-edge frontier per structural match.

Complexity: a poll that follows new interactions rebuilds the time-series
view and structural matches of the grown graph (``O(|E| + matches)``);
polls (and flushes) *without* intervening adds reuse the cached view and
match list and cost only the per-match window scan. ``rebuild_count``
exposes how many rebuilds actually happened (regression-tested). A fully
incremental matcher is a natural follow-up.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.enumeration import enumerate_window_ranges, match_is_feasible
from repro.core.instance import MotifInstance, Run
from repro.core.matching import iter_structural_matches
from repro.core.motif import Motif
from repro.core.windows import Window
from repro.graph.events import Interaction, Node
from repro.graph.timeseries import EdgeSeries, TimeSeriesGraph


class StreamingDetector:
    """Exactly-once online detector for one flow motif.

    Parameters
    ----------
    motif:
        The flow motif (δ and φ are taken from it unless overridden).
    delta, phi:
        Optional constraint overrides.

    Example
    -------
    >>> from repro.core.motif import Motif
    >>> detector = StreamingDetector(Motif.chain(3, delta=10, phi=0))
    >>> detector.add("a", "b", time=1, flow=5)
    >>> detector.add("b", "c", time=3, flow=4)
    >>> detector.poll()            # window [1, 11] still open
    []
    >>> detector.add("x", "y", time=50, flow=1)
    >>> [round(i.flow, 1) for i in detector.poll()]
    [4.0]
    """

    def __init__(
        self,
        motif: Motif,
        delta: Optional[float] = None,
        phi: Optional[float] = None,
    ) -> None:
        self.motif = motif
        self.delta = motif.delta if delta is None else delta
        self.phi = motif.phi if phi is None else phi
        self._times: Dict[Tuple[Node, Node], List[float]] = {}
        self._flows: Dict[Tuple[Node, Node], List[float]] = {}
        self._watermark = float("-inf")
        self._dirty = True
        self._ts: Optional[TimeSeriesGraph] = None
        self._matches: Optional[List] = None
        self._rebuild_count = 0
        # Per structural match (by vertex map): (last processed anchor,
        # last-edge frontier Λ of the previously processed window).
        self._progress: Dict[Tuple[Node, ...], Tuple[float, Optional[float]]] = {}
        self._emitted = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def add(self, src: Node, dst: Node, time: float, flow: float) -> None:
        """Ingest one interaction; timestamps must be non-decreasing."""
        interaction = Interaction(src, dst, time, flow).validate()
        if interaction.time < self._watermark:
            raise ValueError(
                f"out-of-order interaction at t={interaction.time} "
                f"(watermark {self._watermark}); the stream must be "
                f"time-ordered"
            )
        self._watermark = interaction.time
        key = (src, dst)
        self._times.setdefault(key, []).append(interaction.time)
        self._flows.setdefault(key, []).append(interaction.flow)
        self._dirty = True

    @property
    def watermark(self) -> float:
        """Timestamp of the latest ingested interaction."""
        return self._watermark

    @property
    def emitted_count(self) -> int:
        """Total instances emitted so far."""
        return self._emitted

    @property
    def rebuild_count(self) -> int:
        """How many times the time-series view was actually rebuilt.

        Polls without intervening :meth:`add` calls reuse the cached view
        and structural matches, leaving this counter unchanged.
        """
        return self._rebuild_count

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def _rebuild(self) -> TimeSeriesGraph:
        if self._dirty or self._ts is None:
            self._ts = TimeSeriesGraph(
                EdgeSeries(src, dst, self._times[(src, dst)], self._flows[(src, dst)])
                for (src, dst) in self._times
            )
            self._matches = None  # match list follows the view's lifetime
            self._rebuild_count += 1
            self._dirty = False
        return self._ts

    def _structural_matches(self) -> List:
        """Structural matches of the current view, cached between polls."""
        graph = self._rebuild()
        if self._matches is None:
            self._matches = list(
                iter_structural_matches(
                    graph, self.motif, phi=self.phi, temporal_pruning=True
                )
            )
        return self._matches

    def _closed_windows(
        self, first: EdgeSeries, last: EdgeSeries, horizon: float, key: Tuple
    ) -> List[Window]:
        """Window positions finalizable for one match, in anchor order.

        Mirrors :func:`repro.core.windows.iter_maximal_windows` but resumes
        from the per-match progress state and stops at windows whose end
        has not yet passed the horizon (watermark or flush point).
        """
        last_anchor, prev_lam = self._progress.get(key, (float("-inf"), None))
        windows = []
        previous_time = None
        for anchor in first.times:
            if anchor == previous_time:
                continue
            previous_time = anchor
            if anchor <= last_anchor:
                continue
            end = anchor + self.delta
            if end >= horizon:
                break  # later events could still land inside this window
            j = last.last_index_at_or_before(end)
            if j < 0:
                last_anchor = anchor
                continue
            lam = last.times[j]
            if lam < anchor:
                last_anchor = anchor
                continue
            if prev_lam is not None and lam <= prev_lam:
                last_anchor = anchor
                continue  # the paper's skip rule
            prev_lam = lam
            last_anchor = anchor
            windows.append(Window(anchor, end))
        self._progress[key] = (last_anchor, prev_lam)
        return windows

    def _emit_for_horizon(self, horizon: float) -> List[MotifInstance]:
        instances: List[MotifInstance] = []
        for match in self._structural_matches():
            series_list = match.series
            if not match_is_feasible(series_list, self.phi):
                continue
            key = match.vertex_map
            windows = self._closed_windows(
                series_list[0], series_list[-1], horizon, key
            )
            for window in windows:
                def emit(ranges, _match=match, _series=series_list):
                    runs = tuple(
                        Run(_series[i], lo, hi)
                        for i, (lo, hi) in enumerate(ranges)
                    )
                    instances.append(
                        MotifInstance(self.motif, _match.vertex_map, runs)
                    )

                enumerate_window_ranges(series_list, window, self.phi, emit)
        self._emitted += len(instances)
        return instances

    def poll(self) -> List[MotifInstance]:
        """Emit instances whose windows closed strictly before the
        watermark. Call after a batch of :meth:`add` calls."""
        if not self._times:
            return []
        return self._emit_for_horizon(self._watermark)

    def flush(self) -> List[MotifInstance]:
        """End of stream: close and emit every remaining window."""
        if not self._times:
            return []
        return self._emit_for_horizon(float("inf"))
