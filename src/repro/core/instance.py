"""Motif instances (Definition 3.2) and maximality (Definition 3.3).

An instance assigns to every motif edge a non-empty *run* of the interaction
series on the matched vertex pair. Maximal instances always assign runs —
contiguous blocks of the series — because a gap element could be added
without violating any constraint (it lies between two elements of the same
edge-set, so the order constraints with neighbouring edge-sets still hold).
Storing ``(series, lo, hi)`` index ranges keeps instances cheap: flows come
from prefix sums and events are materialized lazily.

This module also provides the two ground-truth checkers used throughout the
test suite:

* :func:`is_valid_instance` — the five bullets of Definition 3.2, verified
  directly against the motif and the time-series graph;
* :func:`is_maximal` — Definition 3.3, by attempting to add every absent
  series element to every edge-set.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.motif import Motif
from repro.graph.events import Node
from repro.graph.timeseries import EdgeSeries, TimeSeriesGraph


class Run(NamedTuple):
    """A contiguous block ``[lo, hi]`` (inclusive) of one edge series.

    This is the edge-set ``E_I(µ(u), µ(v))`` of an instance in compact form:
    all series elements with index in the range.
    """

    series: EdgeSeries
    lo: int
    hi: int

    @property
    def flow(self) -> float:
        """Aggregated flow of the run (the paper's per-edge ``f(R_T(e))``)."""
        return self.series.flow_between(self.lo, self.hi)

    @property
    def first_time(self) -> float:
        """Timestamp of the earliest element in the run."""
        return self.series.time(self.lo)

    @property
    def last_time(self) -> float:
        """Timestamp of the latest element in the run."""
        return self.series.time(self.hi)

    @property
    def size(self) -> int:
        """Number of interactions in the run."""
        return self.hi - self.lo + 1

    def items(self) -> List[Tuple[float, float]]:
        """The ``(t, f)`` pairs of the run, in time order."""
        return self.series.items(self.lo, self.hi)

    def __repr__(self) -> str:
        return (
            f"Run({self.series.src!r}->{self.series.dst!r}, "
            f"[{self.lo},{self.hi}], flow={self.flow:.4g})"
        )


class MotifInstance:
    """One flow motif instance ``G_I`` (Definition 3.2).

    Attributes
    ----------
    motif:
        The motif this instantiates.
    vertex_map:
        Graph vertex per normalized motif vertex id (the bijection ``µ``).
    runs:
        One :class:`Run` per motif edge, in label order.
    """

    __slots__ = ("motif", "vertex_map", "runs")

    def __init__(
        self,
        motif: Motif,
        vertex_map: Tuple[Node, ...],
        runs: Sequence[Run],
    ) -> None:
        if len(runs) != motif.num_edges:
            raise ValueError(
                f"instance needs {motif.num_edges} runs, got {len(runs)}"
            )
        if len(vertex_map) != motif.num_vertices:
            raise ValueError(
                f"instance needs {motif.num_vertices} mapped vertices, "
                f"got {len(vertex_map)}"
            )
        self.motif = motif
        self.vertex_map = tuple(vertex_map)
        self.runs = tuple(runs)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def flow(self) -> float:
        """Instance flow ``f(G_I)`` — Equation 1: the minimum aggregated
        flow over all motif edges."""
        return min(run.flow for run in self.runs)

    @property
    def start_time(self) -> float:
        """Timestamp of the temporally first interaction of the instance."""
        return min(run.first_time for run in self.runs)

    @property
    def end_time(self) -> float:
        """Timestamp of the temporally last interaction of the instance."""
        return max(run.last_time for run in self.runs)

    @property
    def span(self) -> float:
        """Duration: latest minus earliest timestamp."""
        return self.end_time - self.start_time

    @property
    def num_interactions(self) -> int:
        """Total number of graph edges used by the instance."""
        return sum(run.size for run in self.runs)

    def edge_sets(self) -> List[List[Tuple[float, float]]]:
        """Per motif edge, the list of ``(t, f)`` interaction elements."""
        return [run.items() for run in self.runs]

    def canonical_key(self) -> Tuple:
        """A hashable identity for deduplication and oracle comparison.

        Two instances are the same iff they map the same graph vertices and
        assign the same interaction elements to each motif edge. Elements
        are sorted by (t, f) so that keys are stable under tied timestamps.
        """
        return (
            self.vertex_map,
            tuple(tuple(sorted(run.items())) for run in self.runs),
        )

    def as_dict(self) -> dict:
        """JSON-friendly representation (used by examples and the CLI)."""
        return {
            "motif": self.motif.display_name,
            "vertices": list(self.vertex_map),
            "flow": self.flow,
            "span": self.span,
            "edges": [
                {
                    "label": i + 1,
                    "src": run.series.src,
                    "dst": run.series.dst,
                    "events": run.items(),
                }
                for i, run in enumerate(self.runs)
            ],
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MotifInstance):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    def __repr__(self) -> str:
        hops = " ; ".join(
            f"e{i + 1}:{run.series.src}->{run.series.dst}x{run.size}"
            for i, run in enumerate(self.runs)
        )
        return f"MotifInstance(flow={self.flow:.4g}, span={self.span:.4g}, {hops})"


# ----------------------------------------------------------------------
# Definition 3.2 / 3.3 checkers (ground truth for the whole test suite)
# ----------------------------------------------------------------------


def is_valid_instance(
    instance: MotifInstance,
    graph: TimeSeriesGraph,
    delta: Optional[float] = None,
    phi: Optional[float] = None,
) -> Tuple[bool, str]:
    """Check every bullet of Definition 3.2. Returns ``(ok, reason)``.

    ``delta``/``phi`` default to the instance's motif constraints.
    """
    motif = instance.motif
    delta = motif.delta if delta is None else delta
    phi = motif.phi if phi is None else phi

    # Bullet 1: µ is a bijection (injective on motif vertices).
    if len(set(instance.vertex_map)) != len(instance.vertex_map):
        return False, "vertex map is not injective"

    # Bullet 2: per motif edge, a non-empty edge-set on the mapped pair.
    for i, run in enumerate(instance.runs):
        m_src, m_dst = motif.edge(i)
        u, v = instance.vertex_map[m_src], instance.vertex_map[m_dst]
        if (run.series.src, run.series.dst) != (u, v):
            return False, (
                f"edge {i + 1} run is on {run.series.src}->{run.series.dst}, "
                f"expected {u}->{v}"
            )
        if graph.series(u, v) is not run.series and graph.series(u, v) != run.series:
            return False, f"edge {i + 1} run is not backed by the graph series"
        if run.hi < run.lo or run.lo < 0 or run.hi >= len(run.series):
            return False, f"edge {i + 1} run [{run.lo},{run.hi}] is empty or out of range"

    # Bullet 3: time-respecting — consecutive edge-sets strictly ordered.
    for i in range(len(instance.runs) - 1):
        if not instance.runs[i].last_time < instance.runs[i + 1].first_time:
            return False, (
                f"edge {i + 1} (last t={instance.runs[i].last_time}) does not "
                f"precede edge {i + 2} (first t={instance.runs[i + 1].first_time})"
            )

    # Bullet 4: duration.
    if instance.span > delta:
        return False, f"span {instance.span} exceeds delta {delta}"

    # Bullet 5: per-edge aggregated flow.
    for i, run in enumerate(instance.runs):
        if run.flow < phi:
            return False, f"edge {i + 1} flow {run.flow} below phi {phi}"

    return True, "ok"


def _is_addable(
    instance: MotifInstance,
    edge_index: int,
    element_time: float,
    delta: float,
) -> bool:
    """Whether an absent series element at ``element_time`` could join the
    edge-set of ``edge_index`` without violating order or duration."""
    runs = instance.runs
    if edge_index > 0 and not runs[edge_index - 1].last_time < element_time:
        return False
    if edge_index < len(runs) - 1 and not element_time < runs[edge_index + 1].first_time:
        return False
    new_start = min(instance.start_time, element_time)
    new_end = max(instance.end_time, element_time)
    return new_end - new_start <= delta


def is_maximal(
    instance: MotifInstance,
    delta: Optional[float] = None,
) -> bool:
    """Definition 3.3: no single graph edge can be added to any edge-set.

    Tries every series element absent from each run; the instance is
    maximal iff none is addable. Quadratic in series length — intended for
    validation and the join baseline's final filter, not the hot path.
    """
    delta = instance.motif.delta if delta is None else delta
    for i, run in enumerate(instance.runs):
        series = run.series
        for idx in range(len(series)):
            if run.lo <= idx <= run.hi:
                continue
            if _is_addable(instance, i, series.time(idx), delta):
                return False
    return True


def filter_maximal(
    instances: Iterable[MotifInstance], delta: Optional[float] = None
) -> List[MotifInstance]:
    """Keep only maximal instances (used by the join baseline)."""
    return [inst for inst in instances if is_maximal(inst, delta)]
