"""The dynamic-programming top-1 module (Section 5.1, Algorithm 2, Eq. 2).

For one structural match ``G_s`` and one window ``T`` with event timestamps
``t_1 < t_2 < ... < t_τ`` (union over all edges of the match, ``t_1`` being
the window anchor), let ``Flow([t_1, t_i], κ)`` be the flow of the best
instance of the prefix motif ``M_κ`` (first κ edges) inside ``[t_1, t_i]``.
Equation 2 of the paper:

    Flow([t1,ti],κ) = max_{1<j≤i} min( Flow([t1,t_{j-1}], κ-1),
                                       flow([t_j, t_i], κ) )

where ``flow([t_j,t_i],κ)`` is the aggregated flow of ``R(e_κ)`` inside the
closed interval. ``Flow([t1,ti],1)`` is the aggregated flow of ``R(e_1)``
in ``[t_1, t_i]``.

Two implementations are provided:

* :func:`max_flow_in_window` with ``method="quadratic"`` — the paper's
  ``O(m·τ²)`` recurrence, verbatim;
* ``method="bisect"`` — an ``O(m·τ·log τ)`` improvement exploiting that
  ``Flow([t1,t_{j-1}],κ-1)`` is non-decreasing and ``flow([t_j,t_i],κ)``
  non-increasing in ``j``, so the inner maximization is a crossing-point
  search. Both return identical values (property-tested); the ablation
  benchmark compares them.

The returned instance (when reconstruction is requested) is *valid* but not
necessarily *maximal*: the DP optimizes flow only, and a maximal extension
never decreases flow, so the maximum over maximal instances equals the DP
optimum (tests assert this against full enumeration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.enumeration import match_is_feasible
from repro.core.instance import MotifInstance, Run
from repro.core.matching import StructuralMatch
from repro.core.windows import Window, iter_maximal_windows
from repro.graph.timeseries import EdgeSeries

_METHODS = ("quadratic", "bisect", "auto")


@dataclass(frozen=True)
class TopOneResult:
    """The maximum-flow instance of a motif (or of one match / window)."""

    flow: float
    window: Optional[Window]
    match: Optional[StructuralMatch]
    instance: Optional[MotifInstance]


def _window_times(
    series_list: Sequence[EdgeSeries], window: Window
) -> List[float]:
    """Sorted distinct event timestamps of the match inside the window."""
    seen = set()
    for series in series_list:
        lo, hi = series.indices_in_interval(window.start, window.end)
        for idx in range(lo, hi + 1):
            seen.add(series.times[idx])
    return sorted(seen)


def _edge_interval_sums(
    series: EdgeSeries, times: List[float]
) -> Tuple[List[int], List[int]]:
    """Precompute per global-time-index series boundaries for O(1) interval
    sums: ``left[i]`` = first series index with time >= times[i],
    ``right[i]`` = last series index with time <= times[i] (may be -1)."""
    left: List[int] = []
    right: List[int] = []
    n = len(series)
    lo = 0
    for t in times:
        while lo < n and series.times[lo] < t:
            lo += 1
        left.append(lo)
    hi = -1
    for t in times:
        while hi + 1 < n and series.times[hi + 1] <= t:
            hi += 1
        right.append(hi)
    return left, right


def max_flow_in_window(
    series_list: Sequence[EdgeSeries],
    window: Window,
    method: str = "auto",
    reconstruct: bool = False,
) -> Tuple[float, Optional[List[Tuple[float, float]]]]:
    """Algorithm 2 on one window.

    Returns ``(flow, intervals)`` where ``intervals`` (only when
    ``reconstruct=True`` and flow > 0) gives per motif edge the closed time
    interval whose series elements form the optimal edge-sets.
    """
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
    times = _window_times(series_list, window)
    tau = len(times)
    if tau == 0:
        return 0.0, None
    m = len(series_list)
    if method == "auto":
        method = "bisect" if tau > 64 else "quadratic"

    bounds = [_edge_interval_sums(s, times) for s in series_list]
    cums = [s._cum for s in series_list]  # prefix sums (friend access)

    def interval_sum(kappa: int, j: int, i: int) -> float:
        """flow([t_j, t_i], κ) — aggregated flow of R(e_κ) in the closed
        interval, via precomputed boundaries."""
        left, right = bounds[kappa]
        lo, hi = left[j], right[i]
        if hi < lo:
            return 0.0
        cum = cums[kappa]
        return cum[hi + 1] - cum[lo]

    # Base layer: Flow([t1, ti], 1).
    current = [interval_sum(0, 0, i) for i in range(tau)]
    choices: List[List[int]] = []  # choices[kappa-1][i] = chosen j

    for kappa in range(1, m):
        previous = current
        current = [0.0] * tau
        choice_row = [0] * tau
        if method == "quadratic":
            for i in range(tau):
                best = 0.0
                best_j = 0
                for j in range(1, i + 1):
                    value = min(previous[j - 1], interval_sum(kappa, j, i))
                    if value > best:
                        best = value
                        best_j = j
                current[i] = best
                choice_row[i] = best_j
        else:
            for i in range(tau):
                best = 0.0
                best_j = 0
                if i >= 1:
                    # previous[j-1] non-decreasing in j; interval_sum(κ,j,i)
                    # non-increasing in j → maximize min at the crossing.
                    lo, hi = 1, i
                    # Find the largest j with previous[j-1] <= interval_sum.
                    if previous[0] > interval_sum(kappa, 1, i):
                        cross = 0  # predicate false everywhere
                    else:
                        while lo < hi:
                            mid = (lo + hi + 1) // 2
                            if previous[mid - 1] <= interval_sum(kappa, mid, i):
                                lo = mid
                            else:
                                hi = mid - 1
                        cross = lo
                    for j in (cross, cross + 1):
                        if 1 <= j <= i:
                            value = min(previous[j - 1], interval_sum(kappa, j, i))
                            if value > best:
                                best = value
                                best_j = j
                current[i] = best
                choice_row[i] = best_j
        choices.append(choice_row)

    best_flow = current[tau - 1]
    if not reconstruct or best_flow <= 0.0:
        return best_flow, None

    # Walk the choice pointers back to per-edge closed intervals.
    intervals: List[Tuple[float, float]] = [(0.0, 0.0)] * m
    i = tau - 1
    for kappa in range(m - 1, 0, -1):
        j = choices[kappa - 1][i]
        intervals[kappa] = (times[j], times[i])
        i = j - 1
    intervals[0] = (times[0], times[i])
    return best_flow, intervals


def _instance_from_intervals(
    match: StructuralMatch, intervals: List[Tuple[float, float]]
) -> MotifInstance:
    """Materialize the DP reconstruction as a MotifInstance."""
    runs = []
    for kappa, (start, end) in enumerate(intervals):
        series = match.series[kappa]
        lo, hi = series.indices_in_interval(start, end)
        runs.append(Run(series, lo, hi))
    return MotifInstance(match.motif, match.vertex_map, tuple(runs))


def top_one_in_match(
    match: StructuralMatch,
    delta: Optional[float] = None,
    method: str = "auto",
    reconstruct: bool = True,
    incumbent: float = 0.0,
) -> TopOneResult:
    """The maximum-flow instance within one structural match (Algorithm 2).

    Mirrors the paper's "Extensibility" note: per-match top-1 supports
    comparing entity groups by their max-flow interactions.

    ``incumbent`` is an optional pruning floor (the best flow found in
    other matches): windows whose per-edge flow bound cannot exceed it are
    skipped, and instances at or below it are not reported. The default
    0.0 reports the match's true optimum.
    """
    motif_delta = match.motif.delta if delta is None else delta
    series_list = match.series
    best = TopOneResult(0.0, None, match, None)
    if not match_is_feasible(series_list, 0.0):
        return best
    for window in iter_maximal_windows(
        series_list[0], series_list[-1], motif_delta
    ):
        # Window-level bound: the instance flow cannot exceed the smallest
        # per-edge aggregated flow available inside the window; skip
        # windows that cannot beat the incumbent before paying the O(τ²)
        # recurrence.
        bound = min(
            s.flow_in_interval(window.start, window.end) for s in series_list
        )
        if bound <= max(best.flow, incumbent):
            continue
        flow, intervals = max_flow_in_window(
            series_list, window, method=method, reconstruct=reconstruct
        )
        if flow > best.flow and flow > incumbent:
            instance = (
                _instance_from_intervals(match, intervals)
                if intervals is not None
                else None
            )
            best = TopOneResult(flow, window, match, instance)
    return best


def top_one_per_window(
    match: StructuralMatch,
    delta: Optional[float] = None,
    method: str = "auto",
) -> List[TopOneResult]:
    """Per-window top-1 flows (the paper's second extensibility variant:
    compare interaction volume across periods of time)."""
    motif_delta = match.motif.delta if delta is None else delta
    series_list = match.series
    results = []
    for window in iter_maximal_windows(
        series_list[0], series_list[-1], motif_delta
    ):
        flow, _ = max_flow_in_window(series_list, window, method=method)
        results.append(TopOneResult(flow, window, match, None))
    return results


def top_one_instance(
    matches: Sequence[StructuralMatch],
    delta: Optional[float] = None,
    method: str = "auto",
    reconstruct: bool = True,
) -> TopOneResult:
    """The maximum-flow instance of the motif over all structural matches."""
    best = TopOneResult(0.0, None, None, None)
    # Visiting promising matches first establishes a strong incumbent early,
    # letting the per-window bound skip most of the remaining work.
    ordered = sorted(
        matches,
        key=lambda m: min(s.total_flow for s in m.series),
        reverse=True,
    )
    for match in ordered:
        # The instance flow cannot exceed the smallest total series flow of
        # the match; skip matches that cannot improve the incumbent.
        if min(s.total_flow for s in match.series) <= best.flow:
            break  # sorted order: no later match can improve either
        candidate = top_one_in_match(
            match,
            delta=delta,
            method=method,
            reconstruct=reconstruct,
            incumbent=best.flow,
        )
        if candidate.flow > best.flow:
            best = candidate
    return best
