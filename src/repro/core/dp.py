"""The dynamic-programming top-1 module (Section 5.1, Algorithm 2, Eq. 2).

For one structural match ``G_s`` and one window ``T`` with event timestamps
``t_1 < t_2 < ... < t_τ`` (union over all edges of the match, ``t_1`` being
the window anchor), let ``Flow([t_1, t_i], κ)`` be the flow of the best
instance of the prefix motif ``M_κ`` (first κ edges) inside ``[t_1, t_i]``.
Equation 2 of the paper:

    Flow([t1,ti],κ) = max_{1<j≤i} min( Flow([t1,t_{j-1}], κ-1),
                                       flow([t_j, t_i], κ) )

where ``flow([t_j,t_i],κ)`` is the aggregated flow of ``R(e_κ)`` inside the
closed interval. ``Flow([t1,ti],1)`` is the aggregated flow of ``R(e_1)``
in ``[t_1, t_i]``.

Three implementations are provided:

* :func:`max_flow_in_window` with ``method="quadratic"`` — the paper's
  ``O(m·τ²)`` recurrence, verbatim;
* ``method="bisect"`` — an ``O(m·τ·log τ)`` improvement exploiting that
  ``Flow([t1,t_{j-1}],κ-1)`` is non-decreasing and ``flow([t_j,t_i],κ)``
  non-increasing in ``j``, so the inner maximization is a crossing-point
  search;
* ``method="fused"`` (the ``auto`` default) — an amortized ``O(m·τ)``
  layer pass: the crossing index is also non-decreasing in ``i`` (the
  interval sum only grows as the right endpoint moves), so one monotone
  two-pointer sweep replaces the per-cell binary search, and the per-layer
  interval-sum boundaries are precomputed into flat local arrays so the
  inner loop touches no function call and no bisect.

All return identical values (property-tested); the ablation benchmark and
``benchmarks/bench_columnar_store.py`` compare them.

The returned instance (when reconstruction is requested) is *valid* but not
necessarily *maximal*: the DP optimizes flow only, and a maximal extension
never decreases flow, so the maximum over maximal instances equals the DP
optimum (tests assert this against full enumeration).
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import merge as _heap_merge
from typing import List, Optional, Sequence, Tuple

from repro.core.enumeration import match_is_feasible
from repro.core.instance import MotifInstance, Run
from repro.core.matching import StructuralMatch
from repro.core.windows import Window, iter_maximal_windows
from repro.graph.timeseries import EdgeSeries
from repro.obs import metrics as _metrics

_METHODS = ("quadratic", "bisect", "fused", "auto")

#: Below this window size the quadratic recurrence's tiny constant beats
#: the fused pass's per-layer setup.
_FUSED_MIN_TAU = 16


@dataclass(frozen=True)
class TopOneResult:
    """The maximum-flow instance of a motif (or of one match / window)."""

    flow: float
    window: Optional[Window]
    match: Optional[StructuralMatch]
    instance: Optional[MotifInstance]


def _window_times(
    series_list: Sequence[EdgeSeries], window: Window
) -> List[float]:
    """Sorted distinct event timestamps of the match inside the window.

    Each series is already time-sorted, so the union is a k-way merge of
    the in-window slices (``O(τ log m)``) with consecutive duplicates
    dropped — no set build, no global re-sort.
    """
    segments = []
    for series in series_list:
        lo, hi = series.indices_in_interval(window.start, window.end)
        if hi >= lo:
            segments.append(series.times[lo : hi + 1])
    if not segments:
        return []
    out: List[float] = []
    last = None
    for t in segments[0] if len(segments) == 1 else _heap_merge(*segments):
        if t != last:
            out.append(t)
            last = t
    return out


def _edge_layer_bounds(
    series: EdgeSeries, times: List[float]
) -> Tuple[List[int], List[int], List[float], List[float]]:
    """Fused per-layer precomputation for O(1) inline interval sums.

    For each global time index ``i`` of the window timeline:

    * ``left[i]``  — first series index with time >= times[i],
    * ``right[i]`` — last series index with time <= times[i] (may be -1),
    * ``left_cum[i]``  — ``cum[left[i]]``,
    * ``right_cum[i]`` — ``cum[right[i] + 1]``,

    so ``flow([t_j, t_i], κ) = right_cum[i] - left_cum[j]`` whenever
    ``right[i] >= left[j]`` (and 0 otherwise) without touching the series
    object inside the DP loops. One linear sweep per boundary — both
    pointers are monotone in ``i``.
    """
    stimes = series.times
    cum = series._cum  # prefix sums (friend access)
    n = len(stimes)
    left: List[int] = []
    right: List[int] = []
    left_cum: List[float] = []
    right_cum: List[float] = []
    lo = 0
    for t in times:
        while lo < n and stimes[lo] < t:
            lo += 1
        left.append(lo)
        left_cum.append(cum[lo])
    hi = -1
    for t in times:
        while hi + 1 < n and stimes[hi + 1] <= t:
            hi += 1
        right.append(hi)
        right_cum.append(cum[hi + 1])
    return left, right, left_cum, right_cum


def max_flow_in_window(
    series_list: Sequence[EdgeSeries],
    window: Window,
    method: str = "auto",
    reconstruct: bool = False,
) -> Tuple[float, Optional[List[Tuple[float, float]]]]:
    """Algorithm 2 on one window.

    Returns ``(flow, intervals)`` where ``intervals`` (only when
    ``reconstruct=True`` and flow > 0) gives per motif edge the closed time
    interval whose series elements form the optimal edge-sets.
    """
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
    times = _window_times(series_list, window)
    tau = len(times)
    m = len(series_list)
    reg = _metrics.active()
    if reg is not None:
        # Kernel counters are derived arithmetically once per call — the
        # DP loops themselves stay untouched, so disabled-mode overhead
        # is exactly this one predicate. Cells = τ·m (one DP cell per
        # (timestamp, layer)); every cell past the base layer resolves
        # its interval sum from two O(1) prefix-sum reads, and the base
        # layer uses one per cell: reuse hits = τ + 2·τ·(m-1).
        reg.counter("p2.dp.windows_scanned").inc()
        reg.counter("p2.dp.cells").inc(tau * m)
        reg.counter("p2.dp.interval_sum_reuse").inc(
            tau + 2 * tau * (m - 1) if m > 0 else 0
        )
    if tau == 0:
        return 0.0, None
    if method == "auto":
        method = "fused" if tau >= _FUSED_MIN_TAU else "quadratic"

    # Per κ-layer flat boundary/prefix-sum arrays: inside the layer loops
    # an interval sum is two list reads and a subtraction —
    # flow([t_j,t_i],κ) = rcum[i] - lcum[j] when right[i] >= left[j].
    bounds = [_edge_layer_bounds(s, times) for s in series_list]

    # Base layer: Flow([t1, ti], 1) = flow([t1, ti], 1).
    left0, right0, lcum0, rcum0 = bounds[0]
    l0, base = left0[0], lcum0[0]
    current = [
        rcum0[i] - base if right0[i] >= l0 else 0.0 for i in range(tau)
    ]
    choices: List[List[int]] = []  # choices[kappa-1][i] = chosen j

    for kappa in range(1, m):
        previous = current
        current = [0.0] * tau
        choice_row = [0] * tau
        left, right, lcum, rcum = bounds[kappa]
        if method == "quadratic":
            for i in range(tau):
                best = 0.0
                best_j = 0
                ri, rci = right[i], rcum[i]
                for j in range(1, i + 1):
                    isum = rci - lcum[j] if ri >= left[j] else 0.0
                    prev = previous[j - 1]
                    value = prev if prev < isum else isum
                    if value > best:
                        best = value
                        best_j = j
                current[i] = best
                choice_row[i] = best_j
        elif method == "bisect":
            for i in range(tau):
                best = 0.0
                best_j = 0
                ri, rci = right[i], rcum[i]
                if i >= 1:
                    # previous[j-1] non-decreasing in j; flow([t_j,t_i],κ)
                    # non-increasing in j → maximize min at the crossing.
                    lo, hi = 1, i
                    # Find the largest j with previous[j-1] <= the sum.
                    isum = rci - lcum[1] if ri >= left[1] else 0.0
                    if previous[0] > isum:
                        cross = 0  # predicate false everywhere
                    else:
                        while lo < hi:
                            mid = (lo + hi + 1) // 2
                            isum = rci - lcum[mid] if ri >= left[mid] else 0.0
                            if previous[mid - 1] <= isum:
                                lo = mid
                            else:
                                hi = mid - 1
                        cross = lo
                    for j in (cross, cross + 1):
                        if 1 <= j <= i:
                            isum = rci - lcum[j] if ri >= left[j] else 0.0
                            prev = previous[j - 1]
                            value = prev if prev < isum else isum
                            if value > best:
                                best = value
                                best_j = j
                current[i] = best
                choice_row[i] = best_j
        else:  # fused: amortized O(τ) monotone two-pointer sweep
            # The crossing index (largest j with previous[j-1] <= the
            # interval sum) is non-decreasing in i: moving the right
            # endpoint t_i later only grows flow([t_j,t_i],κ) while
            # previous[j-1] is fixed. One pointer therefore serves the
            # whole layer instead of a binary search per cell.
            cross = 0
            for i in range(tau):
                ri, rci = right[i], rcum[i]
                while cross < i:
                    nj = cross + 1
                    isum = rci - lcum[nj] if ri >= left[nj] else 0.0
                    if previous[cross] <= isum:
                        cross = nj
                    else:
                        break
                best = 0.0
                best_j = 0
                if cross >= 1:  # optimum at the crossing: min == previous
                    isum = rci - lcum[cross] if ri >= left[cross] else 0.0
                    prev = previous[cross - 1]
                    best = prev if prev < isum else isum
                    best_j = cross
                nj = cross + 1
                if 1 <= nj <= i:  # or just past it: min == interval sum
                    isum = rci - lcum[nj] if ri >= left[nj] else 0.0
                    prev = previous[nj - 1]
                    value = prev if prev < isum else isum
                    if value > best:
                        best = value
                        best_j = nj
                current[i] = best
                choice_row[i] = best_j
        choices.append(choice_row)

    best_flow = current[tau - 1]
    if not reconstruct or best_flow <= 0.0:
        return best_flow, None

    # Walk the choice pointers back to per-edge closed intervals.
    intervals: List[Tuple[float, float]] = [(0.0, 0.0)] * m
    i = tau - 1
    for kappa in range(m - 1, 0, -1):
        j = choices[kappa - 1][i]
        intervals[kappa] = (times[j], times[i])
        i = j - 1
    intervals[0] = (times[0], times[i])
    return best_flow, intervals


def _instance_from_intervals(
    match: StructuralMatch, intervals: List[Tuple[float, float]]
) -> MotifInstance:
    """Materialize the DP reconstruction as a MotifInstance."""
    runs = []
    for kappa, (start, end) in enumerate(intervals):
        series = match.series[kappa]
        lo, hi = series.indices_in_interval(start, end)
        runs.append(Run(series, lo, hi))
    return MotifInstance(match.motif, match.vertex_map, tuple(runs))


def top_one_in_match(
    match: StructuralMatch,
    delta: Optional[float] = None,
    method: str = "auto",
    reconstruct: bool = True,
    incumbent: float = 0.0,
) -> TopOneResult:
    """The maximum-flow instance within one structural match (Algorithm 2).

    Mirrors the paper's "Extensibility" note: per-match top-1 supports
    comparing entity groups by their max-flow interactions.

    ``incumbent`` is an optional pruning floor (the best flow found in
    other matches): windows whose per-edge flow bound cannot exceed it are
    skipped, and instances at or below it are not reported. The default
    0.0 reports the match's true optimum.
    """
    motif_delta = match.motif.delta if delta is None else delta
    series_list = match.series
    best = TopOneResult(0.0, None, match, None)
    if not match_is_feasible(series_list, 0.0):
        return best
    reg = _metrics.active()
    pruned = reg.counter("p2.dp.windows_pruned") if reg is not None else None
    for window in iter_maximal_windows(
        series_list[0], series_list[-1], motif_delta
    ):
        # Window-level bound: the instance flow cannot exceed the smallest
        # per-edge aggregated flow available inside the window; skip
        # windows that cannot beat the incumbent before paying the O(τ²)
        # recurrence.
        bound = min(
            s.flow_in_interval(window.start, window.end) for s in series_list
        )
        if bound <= max(best.flow, incumbent):
            if pruned is not None:
                pruned.inc()
            continue
        flow, intervals = max_flow_in_window(
            series_list, window, method=method, reconstruct=reconstruct
        )
        if flow > best.flow and flow > incumbent:
            instance = (
                _instance_from_intervals(match, intervals)
                if intervals is not None
                else None
            )
            best = TopOneResult(flow, window, match, instance)
    return best


def top_one_per_window(
    match: StructuralMatch,
    delta: Optional[float] = None,
    method: str = "auto",
) -> List[TopOneResult]:
    """Per-window top-1 flows (the paper's second extensibility variant:
    compare interaction volume across periods of time)."""
    motif_delta = match.motif.delta if delta is None else delta
    series_list = match.series
    results = []
    for window in iter_maximal_windows(
        series_list[0], series_list[-1], motif_delta
    ):
        flow, _ = max_flow_in_window(series_list, window, method=method)
        results.append(TopOneResult(flow, window, match, None))
    return results


def top_one_instance(
    matches: Sequence[StructuralMatch],
    delta: Optional[float] = None,
    method: str = "auto",
    reconstruct: bool = True,
) -> TopOneResult:
    """The maximum-flow instance of the motif over all structural matches."""
    best = TopOneResult(0.0, None, None, None)
    # Visiting promising matches first establishes a strong incumbent early,
    # letting the per-window bound skip most of the remaining work. The
    # bound (smallest total series flow — no instance can exceed it) is
    # computed once per match and carried alongside it, serving both as
    # the sort key and as the loop's cutoff test.
    decorated = sorted(
        ((min(s.total_flow for s in m.series), m) for m in matches),
        key=lambda pair: pair[0],
        reverse=True,
    )
    for bound, match in decorated:
        if bound <= best.flow:
            break  # sorted order: no later match can improve either
        candidate = top_one_in_match(
            match,
            delta=delta,
            method=method,
            reconstruct=reconstruct,
            incumbent=best.flow,
        )
        if candidate.flow > best.flow:
            best = candidate
    return best
