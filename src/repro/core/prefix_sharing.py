"""Shared-prefix phase-2 evaluation across structural matches.

Section 7 of the paper: *"two or more structural matches may share the same
prefix [so] we can compute the flow instances of their common prefix
simultaneously before expanding these instances to complete ones"*.

Matches of one motif are arranged in a trie keyed by the identity of the
edge series ``R(e_1), R(e_2), ...``; matches whose walks start with the
same graph edges share trie ancestors. For every window anchor, the
enumeration recursion of :mod:`repro.core.enumeration` walks the trie once:
prefix scans, flow sums and window arithmetic for a shared edge are done
once for all matches below the node, and the recursion branches only where
the matches' walks diverge. Per-match window validity (the skip rule
depends on each match's *last* series) is pre-computed and checked at
emission, with subtree pruning via per-node active-anchor sets.

Output is identical to per-match enumeration (tested); the ablation
benchmark measures the saving on cycle-heavy graphs where many walks share
long prefixes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.instance import MotifInstance, Run
from repro.core.matching import StructuralMatch
from repro.core.windows import iter_maximal_windows
from repro.graph.timeseries import EdgeSeries


class _TrieNode:
    """One trie level: the series chosen for edge ``depth`` of the walk."""

    __slots__ = ("series", "children", "match", "active_anchors")

    def __init__(self, series: Optional[EdgeSeries]) -> None:
        self.series = series
        self.children: Dict[int, "_TrieNode"] = {}
        self.match: Optional[StructuralMatch] = None  # set on leaves
        self.active_anchors: set = set()


def _build_trie(matches: Sequence[StructuralMatch], delta: float) -> _TrieNode:
    """Arrange matches in a series-identity trie and mark active anchors."""
    root = _TrieNode(None)
    for match in matches:
        series_list = match.series
        node = root
        for series in series_list:
            key = id(series)
            child = node.children.get(key)
            if child is None:
                child = _TrieNode(series)
                node.children[key] = child
            node = child
        node.match = match
        anchors = {
            window.start
            for window in iter_maximal_windows(
                series_list[0], series_list[-1], delta
            )
        }
        # Propagate activity to ancestors for subtree pruning.
        node.active_anchors |= anchors
        path_node = root
        for series in series_list:
            path_node = path_node.children[id(series)]
            path_node.active_anchors |= anchors
    return root


def find_instances_shared(
    matches: Sequence[StructuralMatch],
    delta: Optional[float] = None,
    phi: Optional[float] = None,
    on_instance: Optional[Callable[[MotifInstance], None]] = None,
) -> List[MotifInstance]:
    """All maximal instances, computed with shared-prefix evaluation.

    Equivalent to :func:`repro.core.enumeration.find_instances`; matches
    must all belong to the same motif.
    """
    if not matches:
        return []
    motif = matches[0].motif
    m = motif.num_edges
    delta = motif.delta if delta is None else delta
    phi = motif.phi if phi is None else phi

    collected: List[MotifInstance] = []
    sink = on_instance if on_instance is not None else collected.append

    root = _build_trie(matches, delta)
    runs: List[Optional[Tuple[int, int]]] = [None] * m

    def emit(leaf: _TrieNode, series_stack: List[EdgeSeries]) -> None:
        match = leaf.match
        assert match is not None
        instance_runs = tuple(
            Run(series_stack[i], lo, hi)
            for i, (lo, hi) in enumerate(runs)  # type: ignore[misc]
        )
        sink(MotifInstance(motif, match.vertex_map, instance_runs))

    def walk(
        node: _TrieNode,
        depth: int,
        lower_t: float,
        inclusive: bool,
        anchor: float,
        end: float,
        series_stack: List[EdgeSeries],
    ) -> None:
        for child in node.children.values():
            if anchor not in child.active_anchors:
                continue
            series = child.series
            assert series is not None
            times = series.times
            n = len(times)
            start_idx = (
                series.first_index_at_or_after(lower_t)
                if inclusive
                else series.first_index_after(lower_t)
            )
            if start_idx >= n or times[start_idx] > end:
                continue
            last_idx = series.last_index_at_or_before(end)
            series_stack.append(series)

            if depth == m - 1:
                if series.flow_between(start_idx, last_idx) >= phi:
                    runs[depth] = (start_idx, last_idx)
                    emit(child, series_stack)
                    runs[depth] = None
                series_stack.pop()
                continue

            # Middle edge: one prefix scan shared by all grandchildren.
            for j in range(start_idx, last_idx + 1):
                t_j = times[j]
                next_own = times[j + 1] if j + 1 <= last_idx else None
                prefix_flow = series.flow_between(start_idx, j)
                for grandchild in child.children.values():
                    if anchor not in grandchild.active_anchors:
                        continue
                    next_series = grandchild.series
                    assert next_series is not None
                    nxt_idx = next_series.first_index_after(t_j)
                    if (
                        nxt_idx >= len(next_series)
                        or next_series.times[nxt_idx] > end
                    ):
                        continue
                    if next_own is not None and next_own < next_series.times[nxt_idx]:
                        continue  # prefix validity per branch
                    if prefix_flow < phi:
                        continue  # φ-pruning
                    runs[depth] = (start_idx, j)
                    walk(
                        _single_child_view(child, grandchild),
                        depth + 1,
                        t_j,
                        False,
                        anchor,
                        end,
                        series_stack,
                    )
                    runs[depth] = None
            series_stack.pop()

    def _single_child_view(parent: _TrieNode, child: _TrieNode) -> _TrieNode:
        """A view of ``parent`` exposing only ``child`` (the chosen branch)."""
        view = _TrieNode(parent.series)
        view.children = {id(child.series): child}
        view.active_anchors = parent.active_anchors
        return view

    # Group roots by first series: anchors are that series' timestamps.
    for first_child in root.children.values():
        first_series = first_child.series
        assert first_series is not None
        seen = set()
        for anchor in first_series.times:
            if anchor in seen:
                continue
            seen.add(anchor)
            if anchor not in first_child.active_anchors:
                continue
            end = anchor + delta
            pseudo_root = _TrieNode(None)
            pseudo_root.children = {id(first_series): first_child}
            pseudo_root.active_anchors = first_child.active_anchors
            walk(pseudo_root, 0, anchor, True, anchor, end, [])

    return collected
