"""Phase P1: structural matches of the motif's spanning path (Section 4).

A structural match maps motif vertices injectively onto graph vertices such
that every motif edge has a corresponding edge (series) in the time-series
graph — temporal and flow information is disregarded, exactly as in the
paper's phase P1.

The matcher is the paper's "modified depth-first search": it exploits the
fact that the motif's edge-label order traces a path, so matches are exactly
the walks of length ``m`` in ``G_T`` whose vertex-repetition pattern equals
the spanning path's pattern (same position pairs coincide, all other
positions are pairwise distinct — the bijection requirement of
Definition 3.2).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.motif import Motif
from repro.graph.events import Node
from repro.graph.timeseries import EdgeSeries, TimeSeriesGraph


class StructuralMatch:
    """One structural match ``G_s`` of a motif in ``G_T``.

    Attributes
    ----------
    motif:
        The matched motif.
    vertex_map:
        Graph vertex per normalized motif vertex id ``0..n-1``.
    series:
        Per motif edge (label order), the :class:`EdgeSeries` of the matched
        vertex pair — the ``R(e_i)`` of the paper.
    """

    __slots__ = ("motif", "vertex_map", "series")

    def __init__(
        self,
        motif: Motif,
        vertex_map: Tuple[Node, ...],
        series: Tuple[EdgeSeries, ...],
    ) -> None:
        self.motif = motif
        self.vertex_map = vertex_map
        self.series = series

    @property
    def walk(self) -> Tuple[Node, ...]:
        """The matched walk in ``G_T`` (graph vertex per path position)."""
        return tuple(self.vertex_map[v] for v in self.motif.spanning_path)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StructuralMatch):
            return NotImplemented
        return (
            self.motif.spanning_path == other.motif.spanning_path
            and self.vertex_map == other.vertex_map
        )

    def __hash__(self) -> int:
        return hash((self.motif.spanning_path, self.vertex_map))

    def __repr__(self) -> str:
        return f"StructuralMatch({'→'.join(map(str, self.walk))})"


def iter_structural_matches(
    graph: TimeSeriesGraph,
    motif: Motif,
    phi: float = 0.0,
    temporal_pruning: bool = False,
) -> Iterator[StructuralMatch]:
    """Yield all structural matches of ``motif`` in ``graph`` (phase P1).

    Matches are produced in deterministic order (sorted start vertex, then
    sorted extension), so runs are reproducible across processes.

    The DFS keeps the partial assignment motif-vertex → graph-vertex. At
    path position ``i`` it extends along edge ``e_{i+1}``:

    * if the next motif vertex is already assigned (the path revisits it,
      e.g. closing a cycle), the single required graph edge is looked up
      directly;
    * otherwise every out-neighbour not yet used by another motif vertex is
      tried (injectivity — Definition 3.2's bijection).

    Parameters
    ----------
    phi, temporal_pruning:
        Optional *flow-aware* pruning for the fused search pipeline: with
        ``temporal_pruning=True`` a branch is cut when its series cannot
        host a strictly time-respecting chain (greedy earliest walk dies)
        or, with ``phi > 0``, when a chosen series' total flow is below φ.
        Pruned branches cannot contribute any instance, so downstream
        enumeration output is unchanged — but the *match set* is a subset
        of the unpruned one. Keep both defaults for the paper's pure
        phase P1 (Table 4 semantics).
    """
    path = motif.spanning_path
    m = motif.num_edges
    # Assignment: motif vertex id -> graph node; used: set of assigned nodes.
    assignment: Dict[int, Node] = {}
    used: set = set()
    chosen_series: List[Optional[EdgeSeries]] = [None] * m
    # chain_time[i]: earliest end of a time-respecting chain over the
    # series chosen for edges 0..i (greedy; only with temporal_pruning).
    chain_time: List[float] = [0.0] * m

    def admit(position: int, series: EdgeSeries) -> bool:
        """Apply the optional flow/temporal pruning for one extension."""
        if phi > 0 and series.total_flow < phi:
            return False
        if not temporal_pruning:
            return True
        if position == 0:
            chain_time[0] = series.first_time
            return True
        idx = series.first_index_after(chain_time[position - 1])
        if idx >= len(series):
            return False
        chain_time[position] = series.times[idx]
        return True

    def extend(position: int) -> Iterator[StructuralMatch]:
        if position == m:
            vertex_map = tuple(
                assignment[v] for v in range(motif.num_vertices)
            )
            yield StructuralMatch(
                motif, vertex_map, tuple(chosen_series)  # type: ignore[arg-type]
            )
            return
        current = assignment[path[position]]
        next_vid = path[position + 1]
        if next_vid in assignment:
            series = graph.series(current, assignment[next_vid])
            if series is not None and admit(position, series):
                chosen_series[position] = series
                yield from extend(position + 1)
                chosen_series[position] = None
        else:
            for series in graph.out_series(current):
                candidate = series.dst
                if candidate in used:
                    continue
                if not admit(position, series):
                    continue
                assignment[next_vid] = candidate
                used.add(candidate)
                chosen_series[position] = series
                yield from extend(position + 1)
                chosen_series[position] = None
                used.discard(candidate)
                del assignment[next_vid]

    for start in sorted(graph.nodes, key=repr):
        assignment[path[0]] = start
        used.add(start)
        yield from extend(0)
        used.discard(start)
        del assignment[path[0]]


def find_structural_matches(
    graph: TimeSeriesGraph, motif: Motif
) -> List[StructuralMatch]:
    """All structural matches as a list (the paper's set ``S``)."""
    return list(iter_structural_matches(graph, motif))
