"""Maximal δ-window iteration with the paper's skip rule (Section 4).

Algorithm 1 slides a window of length δ over the timeline of a structural
match. Because every edge-set of an instance must be temporally after the
edge-set of the previous motif edge, the temporally *first* interaction of
any instance belongs to ``R(e_1)``; windows are therefore anchored at the
(distinct) timestamps of ``R(e_1)``.

**Skip rule.** The paper skips a window position when it contains no new
element of the last motif edge ``R(e_m)`` compared to the previous anchored
position (its ``[13, 23]`` example). Let ``a_{j-1} < a_j`` be consecutive
anchors and ``Λ_j`` the last ``R(e_m)`` timestamp within ``[a_j, a_j + δ]``.
Every instance produced inside a window extends its last edge-set to the
window end, hence contains ``Λ_j``. If ``Λ_j == Λ_{j-1}``, then
``Λ_j ≤ a_{j-1} + δ``, so the element at ``a_{j-1}`` can always be added to
the first edge-set of any instance anchored at ``a_j`` without violating
order (it precedes the anchor) or duration (span ``Λ_j - a_{j-1} ≤ δ``) —
every such instance is non-maximal, and the window is safely skipped.
Conversely, if ``Λ_j > Λ_{j-1}`` then ``Λ_j > a_{j-1} + δ`` (otherwise the
previous window would already contain it), so extending below ``a_j``
violates δ and anchored instances can be maximal. Together with the prefix
validity rule in :mod:`repro.core.enumeration` this yields *exactly* the
maximal instances, each once — property-tested against a brute-force oracle
in ``tests/property``.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

from repro.graph.timeseries import EdgeSeries


class Window(NamedTuple):
    """A closed time window ``[start, end]`` with ``end = start + δ``."""

    start: float
    end: float


def iter_maximal_windows(
    first_series: EdgeSeries,
    last_series: EdgeSeries,
    delta: float,
    skip_rule: bool = True,
) -> Iterator[Window]:
    """Yield the window positions Algorithm 1 processes for one match.

    Parameters
    ----------
    first_series:
        ``R(e_1)`` — the series on the first motif edge of the match;
        windows are anchored at its distinct timestamps.
    last_series:
        ``R(e_m)`` — the series on the last motif edge; used by the skip
        rule. For single-edge motifs pass the same series twice.
    delta:
        The motif duration constraint δ.
    skip_rule:
        Disable only for the ablation benchmark; all windows anchored at
        first-edge events are then returned (instances found in skipped
        windows are non-maximal duplicates, so correctness code must keep
        this on).

    Notes
    -----
    Windows whose span contains no ``R(e_m)`` element at or after the anchor
    are silently dropped — they cannot produce any instance.
    """
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta!r}")
    previous_last = None
    times = first_series.times
    last_times = last_series.times
    for i, anchor in enumerate(times):
        if i > 0 and times[i - 1] == anchor:
            continue  # tied anchors produce one window
        end = anchor + delta
        j = last_series.last_index_at_or_before(end)
        if j < 0:
            continue
        lam = last_times[j]
        if lam < anchor:
            continue  # no last-edge element inside the window
        if skip_rule:
            if previous_last is not None and lam <= previous_last:
                continue
            previous_last = lam
        yield Window(anchor, end)
