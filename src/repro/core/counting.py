"""Counting motif instances without constructing them (Section 7 future work).

The paper suggests "counting instances of (possibly multiple) motifs without
constructing them (along the direction of [14])" as future work. This module
implements it for a single motif: the ``FindInstances`` recursion of
:mod:`repro.core.enumeration` explores a DAG of states
``(edge index, first usable series index)`` — the number of completions from
a state is independent of how the state was reached, so per-window
memoization turns the potentially exponential enumeration into a polynomial
count.

The count always equals ``len(find_instances(...))`` (property-tested); the
benchmark ``bench_ablation_counting`` measures the speed-up.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.enumeration import match_is_feasible
from repro.core.matching import StructuralMatch
from repro.core.windows import Window, iter_maximal_windows
from repro.graph.timeseries import EdgeSeries


def count_window_instances(
    series_list: Sequence[EdgeSeries],
    window: Window,
    phi: float,
) -> int:
    """Number of maximal instances inside one window (memoized recursion)."""
    m = len(series_list)
    anchor, end = window
    memo: Dict[Tuple[int, int], int] = {}

    def count_from(i: int, start_idx: int) -> int:
        series = series_list[i]
        times = series.times
        n = len(times)
        if start_idx >= n or times[start_idx] > end:
            return 0
        key = (i, start_idx)
        cached = memo.get(key)
        if cached is not None:
            return cached
        last_idx = series.last_index_at_or_before(end)

        if i == m - 1:
            result = 1 if series.flow_between(start_idx, last_idx) >= phi else 0
            memo[key] = result
            return result

        next_series = series_list[i + 1]
        next_times = next_series.times
        next_n = len(next_times)
        next_idx = next_series.first_index_after(times[start_idx])
        result = 0
        for j in range(start_idx, last_idx + 1):
            t_j = times[j]
            while next_idx < next_n and next_times[next_idx] <= t_j:
                next_idx += 1
            if next_idx >= next_n or next_times[next_idx] > end:
                break
            if j + 1 <= last_idx and times[j + 1] < next_times[next_idx]:
                continue  # prefix validity (see enumeration module)
            if series.flow_between(start_idx, j) < phi:
                continue  # φ-pruning
            result += count_from(i + 1, next_idx)
        memo[key] = result
        return result

    first = series_list[0]
    return count_from(0, first.first_index_at_or_after(anchor))


def count_instances_in_match(
    match: StructuralMatch,
    delta: Optional[float] = None,
    phi: Optional[float] = None,
    skip_rule: bool = True,
    anchor_range: Optional[Tuple[float, float]] = None,
) -> int:
    """Number of maximal instances of the motif within one structural match.

    ``anchor_range`` restricts counting to windows anchored in the half-open
    interval ``[lo, hi)`` while still iterating earlier windows for skip-rule
    state (the :mod:`repro.parallel` shard-ownership contract).
    """
    motif = match.motif
    delta = motif.delta if delta is None else delta
    phi = motif.phi if phi is None else phi
    series_list = match.series
    if not match_is_feasible(series_list, phi):
        return 0
    total = 0
    for window in iter_maximal_windows(
        series_list[0], series_list[-1], delta, skip_rule=skip_rule
    ):
        if anchor_range is not None:
            if window.start >= anchor_range[1]:
                break
            if window.start < anchor_range[0]:
                continue
        total += count_window_instances(series_list, window, phi)
    return total


def count_instances(
    matches: Sequence[StructuralMatch],
    delta: Optional[float] = None,
    phi: Optional[float] = None,
    skip_rule: bool = True,
    anchor_range: Optional[Tuple[float, float]] = None,
) -> int:
    """Total maximal instance count across structural matches."""
    return sum(
        count_instances_in_match(
            match,
            delta=delta,
            phi=phi,
            skip_rule=skip_rule,
            anchor_range=anchor_range,
        )
        for match in matches
    )
