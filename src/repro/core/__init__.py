"""The paper's primary contribution: flow-motif search.

Layout (matching the paper's sections):

* :mod:`repro.core.motif` — flow motifs ``M = (G_M, δ, φ)`` and the Figure 3
  catalog (Section 3).
* :mod:`repro.core.instance` — motif instances, Definition 3.2 validation and
  Definition 3.3 maximality checking.
* :mod:`repro.core.matching` — phase P1: structural spanning-path matches.
* :mod:`repro.core.windows` — maximal δ-window iteration with the skip rule.
* :mod:`repro.core.enumeration` — phase P2: Algorithm 1 (``FindInstances``).
* :mod:`repro.core.counting` — instance counting without construction.
* :mod:`repro.core.topk` — top-k search with a floating threshold (Section 5).
* :mod:`repro.core.dp` — the dynamic-programming top-1 module (Section 5.1).
* :mod:`repro.core.prefix_sharing` — shared-prefix phase-2 evaluation.
* :mod:`repro.core.dag` — DAG-motif generalization (Section 7 future work).
* :mod:`repro.core.engine` — the :class:`FlowMotifEngine` facade.
"""

from repro.core.motif import Motif, paper_motifs
from repro.core.instance import MotifInstance, Run, is_valid_instance, is_maximal
from repro.core.matching import StructuralMatch, find_structural_matches
from repro.core.engine import FlowMotifEngine

__all__ = [
    "Motif",
    "paper_motifs",
    "MotifInstance",
    "Run",
    "is_valid_instance",
    "is_maximal",
    "StructuralMatch",
    "find_structural_matches",
    "FlowMotifEngine",
]
