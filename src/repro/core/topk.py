"""Top-k flow motif search (Section 5).

Setting φ is unintuitive; the paper replaces it by a ranking: find the k
maximal instances (with φ = 0) satisfying δ that have the largest flow
``f(G_I)``. The search reuses the Algorithm 1 recursion with two changes:

* a size-k min-heap holds the best instances found so far;
* in place of φ, the flow of the current k-th best instance acts as a
  *floating threshold*: a prefix whose aggregated flow cannot exceed it is
  pruned (the instance flow is the minimum over edge-sets, so the partial
  minimum is an upper bound on any completion's flow).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from repro.core.enumeration import match_is_feasible
from repro.core.instance import MotifInstance, Run
from repro.core.matching import StructuralMatch
from repro.core.windows import iter_maximal_windows
from repro.graph.timeseries import EdgeSeries


class TopKCollector:
    """Size-k min-heap of instances ordered by flow.

    ``threshold`` is the floating φ: the k-th best flow so far once the
    heap is full, else the static floor.
    """

    def __init__(self, k: int, floor: float = 0.0) -> None:
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self.k = k
        self.floor = floor
        self._heap: List[Tuple[float, int, MotifInstance]] = []
        self._counter = 0

    @property
    def threshold(self) -> float:
        """Flows at or below this value cannot improve the collection."""
        if len(self._heap) == self.k:
            return self._heap[0][0]
        return self.floor

    @property
    def full(self) -> bool:
        return len(self._heap) == self.k

    def offer(self, instance: MotifInstance) -> None:
        """Consider one instance for the top-k collection."""
        flow = instance.flow
        if len(self._heap) < self.k:
            if flow >= self.floor:
                heapq.heappush(self._heap, (flow, self._counter, instance))
                self._counter += 1
        elif flow > self._heap[0][0]:
            heapq.heapreplace(self._heap, (flow, self._counter, instance))
            self._counter += 1

    def results(self) -> List[MotifInstance]:
        """The collected instances, best flow first."""
        return [
            item[2]
            for item in sorted(self._heap, key=lambda e: (-e[0], e[1]))
        ]

    def kth_flow(self) -> Optional[float]:
        """Flow of the worst retained instance (None while not full)."""
        if not self._heap:
            return None
        return self._heap[0][0]


def _search_window(
    series_list: Sequence[EdgeSeries],
    anchor: float,
    end: float,
    match: StructuralMatch,
    collector: TopKCollector,
) -> None:
    """Algorithm 1 recursion with floating-threshold pruning on one window."""
    m = len(series_list)
    motif = match.motif
    runs: List[Optional[Tuple[int, int]]] = [None] * m

    def recurse(i: int, lower_t: float, inclusive: bool, bound: float) -> None:
        series = series_list[i]
        times = series.times
        n = len(times)
        start_idx = (
            series.first_index_at_or_after(lower_t)
            if inclusive
            else series.first_index_after(lower_t)
        )
        if start_idx >= n or times[start_idx] > end:
            return
        last_idx = series.last_index_at_or_before(end)

        if i == m - 1:
            flow = series.flow_between(start_idx, last_idx)
            final = min(bound, flow)
            if collector.full and final <= collector.threshold:
                return
            runs[i] = (start_idx, last_idx)
            collector.offer(
                MotifInstance(
                    motif,
                    match.vertex_map,
                    tuple(
                        Run(series_list[e], lo, hi)
                        for e, (lo, hi) in enumerate(runs)  # type: ignore[misc]
                    ),
                )
            )
            runs[i] = None
            return

        next_series = series_list[i + 1]
        next_times = next_series.times
        next_n = len(next_times)
        next_idx = next_series.first_index_after(times[start_idx])

        for j in range(start_idx, last_idx + 1):
            t_j = times[j]
            while next_idx < next_n and next_times[next_idx] <= t_j:
                next_idx += 1
            if next_idx >= next_n or next_times[next_idx] > end:
                return
            if j + 1 <= last_idx and times[j + 1] < next_times[next_idx]:
                continue  # prefix validity (maximality)
            new_bound = min(bound, series.flow_between(start_idx, j))
            if collector.full and new_bound <= collector.threshold:
                continue  # floating-threshold pruning
            if new_bound < collector.floor:
                continue
            runs[i] = (start_idx, j)
            recurse(i + 1, t_j, False, new_bound)
            runs[i] = None

    recurse(0, anchor, True, float("inf"))


def top_k_instances(
    matches: Sequence[StructuralMatch],
    k: int,
    delta: Optional[float] = None,
    floor: float = 0.0,
    anchor_range: Optional[Tuple[float, float]] = None,
) -> List[MotifInstance]:
    """The k maximal instances with the largest flow, best first.

    Parameters
    ----------
    matches:
        Structural matches from phase P1 (all of one motif).
    k:
        How many instances to return (fewer if the graph has fewer).
    delta:
        Duration override; defaults to the motif's δ.
    floor:
        Static lower bound on acceptable flow (paper uses 0).
    anchor_range:
        Optional half-open ``[lo, hi)`` restriction on window anchors (the
        :mod:`repro.parallel` shard-ownership contract): only owned windows
        feed the collector, so halo-truncated windows can never displace a
        genuine instance from the top-k heap.
    """
    collector = TopKCollector(k, floor=floor)
    for match in matches:
        motif_delta = match.motif.delta if delta is None else delta
        series_list = match.series
        # Match-level pruning: the instance flow is bounded by the minimum
        # total series flow of the match; skip matches that cannot beat the
        # current k-th best (and structurally infeasible ones entirely).
        bound = min(s.total_flow for s in series_list)
        if collector.full and bound <= collector.threshold:
            continue
        if not match_is_feasible(series_list, floor):
            continue
        for window in iter_maximal_windows(
            series_list[0], series_list[-1], motif_delta
        ):
            if anchor_range is not None:
                if window.start >= anchor_range[1]:
                    break
                if window.start < anchor_range[0]:
                    continue
            _search_window(series_list, window.start, window.end, match, collector)
    return collector.results()


def kth_instance_flow(
    matches: Sequence[StructuralMatch],
    k: int,
    delta: Optional[float] = None,
) -> Optional[float]:
    """Flow of the k-th best instance (Figure 11's y-axis), or None if the
    graph has fewer than one instance."""
    results = top_k_instances(matches, k, delta=delta)
    if not results:
        return None
    # With fewer than k instances the worst found stands in for the k-th.
    return results[-1].flow
