"""Flow motifs ``M = (G_M, δ, φ)`` (Definition 3.1) and the Figure 3 catalog.

A motif is a small directed graph whose ``m`` edges carry unique labels
``1..m``; the label order must trace a *spanning path* through the motif
graph (the target of edge ``i`` is the source of edge ``i+1``). The path
need not be simple — repeated vertices express cycles, e.g. the triangle
``M(3,3)`` has spanning path ``v0 → v1 → v2 → v0``.

The motif also carries its duration constraint ``δ`` (maximum time span of
an instance) and flow constraint ``φ`` (minimum aggregated flow per motif
edge). Engine methods accept per-call overrides of both.

Vertices are normalized to integers ``0..n-1`` in order of first appearance
on the spanning path, so two motifs built from differently-labelled paths of
the same shape compare equal.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.utils.validation import require_non_negative


class Motif:
    """A network flow motif (Definition 3.1).

    Parameters
    ----------
    path:
        The spanning path as a vertex sequence ``[p0, p1, ..., pm]``;
        edge ``i`` (label ``i+1`` in the paper's 1-based notation) goes
        from ``p_i`` to ``p_{i+1}``. Vertices may be any hashables and are
        normalized to first-appearance integers.
    delta:
        Duration constraint ``δ`` — upper bound on the time difference
        between any two interactions of an instance. Must be >= 0.
    phi:
        Flow constraint ``φ`` — lower bound on the aggregated flow of every
        motif edge in an instance. Must be >= 0.
    name:
        Optional display name, e.g. ``"M(3,3)"``.

    Example
    -------
    >>> m = Motif.cycle(3, delta=10, phi=7)
    >>> m.spanning_path
    (0, 1, 2, 0)
    >>> m.num_edges, m.num_vertices, m.is_cyclic
    (3, 3, True)
    """

    __slots__ = ("_path", "delta", "phi", "name")

    def __init__(
        self,
        path: Sequence[Hashable],
        delta: float,
        phi: float = 0.0,
        name: Optional[str] = None,
    ) -> None:
        if len(path) < 2:
            raise ValueError(
                f"a motif needs at least one edge; path {list(path)!r} is too short"
            )
        require_non_negative(delta, "delta")
        require_non_negative(phi, "phi")
        mapping: Dict[Hashable, int] = {}
        normalized: List[int] = []
        for vertex in path:
            if vertex not in mapping:
                mapping[vertex] = len(mapping)
            normalized.append(mapping[vertex])
        self._path: Tuple[int, ...] = tuple(normalized)
        self.delta = float(delta)
        self.phi = float(phi)
        self.name = name

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    @classmethod
    def chain(cls, num_vertices: int, delta: float, phi: float = 0.0) -> "Motif":
        """The simple chain motif on ``num_vertices`` vertices.

        ``chain(3)`` is the paper's ``M(3,2)``: ``v0 → v1 → v2``.
        """
        if num_vertices < 2:
            raise ValueError("a chain needs at least 2 vertices")
        path = list(range(num_vertices))
        return cls(path, delta, phi, name=f"M({num_vertices},{num_vertices - 1})")

    @classmethod
    def cycle(cls, num_vertices: int, delta: float, phi: float = 0.0) -> "Motif":
        """The simple cycle motif on ``num_vertices`` vertices.

        ``cycle(3)`` is the paper's ``M(3,3)``: ``v0 → v1 → v2 → v0``.
        """
        if num_vertices < 2:
            raise ValueError("a cycle needs at least 2 vertices")
        path = list(range(num_vertices)) + [0]
        return cls(path, delta, phi, name=f"M({num_vertices},{num_vertices})")

    @classmethod
    def from_string(
        cls, spec: str, delta: float, phi: float = 0.0
    ) -> "Motif":
        """Parse a motif from a catalog name or dashed vertex path.

        ``spec`` is either a Figure 3 catalog name (``"M(3,3)"``) or a
        spanning path written as dash-separated vertex tokens
        (``"0-1-2-0"``; tokens are arbitrary labels, e.g. ``"a-b-a"``).

        Raises
        ------
        ValueError
            If the spec is neither a known catalog name nor a dashed path
            with at least two vertices.
        """
        spec = spec.strip()
        if spec in PAPER_MOTIF_PATHS:
            return cls(PAPER_MOTIF_PATHS[spec], delta, phi, name=spec)
        tokens = [t for t in spec.split("-") if t != ""]
        if len(tokens) < 2:
            raise ValueError(
                f"motif spec {spec!r} is neither a catalog name "
                f"({', '.join(PAPER_MOTIF_PATHS)}) nor a dashed path like "
                f"'0-1-2-0'"
            )
        return cls(tokens, delta, phi)

    @classmethod
    def from_labeled_edges(
        cls,
        edges: Sequence[Tuple[Hashable, Hashable]],
        delta: float,
        phi: float = 0.0,
        name: Optional[str] = None,
    ) -> "Motif":
        """Build from edges given in label order, checking the path property.

        Raises
        ------
        ValueError
            If consecutive edges do not chain (target of edge ``i`` must be
            the source of edge ``i+1``), which Definition 3.1 requires.
        """
        if not edges:
            raise ValueError("a motif needs at least one edge")
        path: List[Hashable] = [edges[0][0], edges[0][1]]
        for i in range(1, len(edges)):
            src, dst = edges[i]
            if src != path[-1]:
                raise ValueError(
                    f"motif edges must form a path: edge {i + 1} starts at "
                    f"{src!r} but edge {i} ends at {path[-1]!r}"
                )
            path.append(dst)
        return cls(path, delta, phi, name=name)

    def with_constraints(
        self, delta: Optional[float] = None, phi: Optional[float] = None
    ) -> "Motif":
        """A copy of this motif with replaced δ and/or φ."""
        return Motif(
            self._path,
            self.delta if delta is None else delta,
            self.phi if phi is None else phi,
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------

    @property
    def spanning_path(self) -> Tuple[int, ...]:
        """The normalized spanning path ``SP_M`` as a vertex-id sequence."""
        return self._path

    @property
    def edges(self) -> Tuple[Tuple[int, int], ...]:
        """Motif edges ``(src, dst)`` in label order ``e_1 .. e_m``."""
        return tuple(
            (self._path[i], self._path[i + 1]) for i in range(len(self._path) - 1)
        )

    @property
    def num_edges(self) -> int:
        """``m = |E_M|``."""
        return len(self._path) - 1

    @property
    def num_vertices(self) -> int:
        """``|V_M|``."""
        return len(set(self._path))

    @property
    def is_cyclic(self) -> bool:
        """Whether the spanning path revisits any vertex."""
        return len(set(self._path)) < len(self._path)

    @property
    def display_name(self) -> str:
        """The given name, or a canonical ``M(|V|,|E|)/path`` fallback."""
        if self.name:
            return self.name
        path = "".join(str(v) for v in self._path)
        return f"M({self.num_vertices},{self.num_edges})/{path}"

    def edge(self, index: int) -> Tuple[int, int]:
        """The 0-based ``index``-th motif edge (paper's ``e_{index+1}``)."""
        return (self._path[index], self._path[index + 1])

    # ------------------------------------------------------------------
    # Equality / hashing: structural shape plus constraints
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Motif):
            return NotImplemented
        return (
            self._path == other._path
            and self.delta == other.delta
            and self.phi == other.phi
        )

    def __hash__(self) -> int:
        return hash((self._path, self.delta, self.phi))

    def __repr__(self) -> str:
        return (
            f"Motif({self.display_name}, path={'→'.join(map(str, self._path))}, "
            f"delta={self.delta:g}, phi={self.phi:g})"
        )


#: Spanning paths of the ten motifs of Figure 3. The figure itself is not
#: machine-readable in the source dump; DESIGN.md §5 documents the
#: reconstruction: chains, simple cycles, and for the A/B/C variants the
#: three possible placements of the single repeated spanning-path vertex.
PAPER_MOTIF_PATHS: Dict[str, Tuple[int, ...]] = {
    "M(3,2)": (0, 1, 2),
    "M(3,3)": (0, 1, 2, 0),
    "M(4,3)": (0, 1, 2, 3),
    "M(4,4)A": (0, 1, 2, 3, 0),
    "M(4,4)B": (0, 1, 2, 0, 3),
    "M(4,4)C": (0, 1, 2, 3, 1),
    "M(5,4)": (0, 1, 2, 3, 4),
    "M(5,5)A": (0, 1, 2, 3, 4, 0),
    "M(5,5)B": (0, 1, 2, 3, 0, 4),
    "M(5,5)C": (0, 1, 2, 3, 4, 1),
}


def paper_motifs(delta: float, phi: float = 0.0) -> Dict[str, Motif]:
    """The Figure 3 motif catalog with the given constraints.

    Returns an insertion-ordered dict (paper order: M(3,2) .. M(5,5)C).
    """
    return {
        name: Motif(path, delta, phi, name=name)
        for name, path in PAPER_MOTIF_PATHS.items()
    }
