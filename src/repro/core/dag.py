"""DAG motifs with forks and joins (Section 7 future work).

The paper's motifs require the edge labels to trace a single path. Its
future-work section proposes generalizing to *"other graph structures
besides paths (e.g., directed acyclic graphs with forks and joins)"*. This
module implements that generalization:

* :class:`GeneralMotif` — any small directed multigraph whose edges carry
  the total label order ``1..m`` (no path requirement).
* Semantics — the natural extension of Definition 3.2: the bijection and
  per-edge non-empty edge-sets are unchanged, and the label order is
  enforced *globally*: every interaction assigned to edge ``i`` strictly
  precedes every interaction assigned to edge ``j`` for ``i < j``. (For
  path motifs this coincides with the paper's pairwise condition by
  transitivity, so ``GeneralMotif`` searches reproduce ``Motif`` searches
  exactly — tested.)
* Matching — a backtracking subgraph matcher assigning motif vertices in
  label order of their first occurrence; unlike the spanning-path DFS it
  handles edges whose source is not the previous target (forks/joins).
* Enumeration — because the order is total, edge-sets still tile a window
  in label order, so the windows/enumeration machinery of
  :mod:`repro.core.windows` / :mod:`repro.core.enumeration` is reused
  verbatim on the per-edge series of a DAG match.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.core.enumeration import find_instances_in_match
from repro.core.instance import MotifInstance
from repro.core.matching import StructuralMatch
from repro.graph.events import Node
from repro.graph.timeseries import TimeSeriesGraph
from repro.utils.validation import require_non_negative


class GeneralMotif:
    """A flow motif whose labelled edges need not form a path.

    Vertices are normalized to integers by first appearance across the
    label-ordered edge list. Provides the same attribute surface as
    :class:`repro.core.motif.Motif` (``edges``, ``num_edges``,
    ``num_vertices``, ``delta``, ``phi``, ``edge(i)``), so instances and
    validators interoperate.

    Example — a fork-join ("u pays v and w, both pay x"):

    >>> m = GeneralMotif([("u", "v"), ("u", "w"), ("v", "x"), ("w", "x")],
    ...                  delta=10, phi=1)
    >>> m.num_vertices, m.num_edges
    (4, 4)
    """

    __slots__ = ("_edges", "delta", "phi", "name")

    def __init__(
        self,
        edges: Sequence[Tuple[Hashable, Hashable]],
        delta: float,
        phi: float = 0.0,
        name: Optional[str] = None,
    ) -> None:
        if not edges:
            raise ValueError("a motif needs at least one edge")
        require_non_negative(delta, "delta")
        require_non_negative(phi, "phi")
        mapping: Dict[Hashable, int] = {}
        normalized: List[Tuple[int, int]] = []
        for src, dst in edges:
            for vertex in (src, dst):
                if vertex not in mapping:
                    mapping[vertex] = len(mapping)
            normalized.append((mapping[src], mapping[dst]))
        self._edges = tuple(normalized)
        self.delta = float(delta)
        self.phi = float(phi)
        self.name = name

    @property
    def edges(self) -> Tuple[Tuple[int, int], ...]:
        """Motif edges in label order."""
        return self._edges

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def num_vertices(self) -> int:
        return len({v for edge in self._edges for v in edge})

    @property
    def display_name(self) -> str:
        if self.name:
            return self.name
        return f"G({self.num_vertices},{self.num_edges})"

    def edge(self, index: int) -> Tuple[int, int]:
        """The 0-based ``index``-th motif edge."""
        return self._edges[index]

    @property
    def spanning_path(self) -> Tuple[Tuple[int, int], ...]:
        """Identity key for engine-level caching (edge tuple; the name is
        kept for interface compatibility with :class:`Motif`)."""
        return self._edges

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GeneralMotif):
            return NotImplemented
        return (
            self._edges == other._edges
            and self.delta == other.delta
            and self.phi == other.phi
        )

    def __hash__(self) -> int:
        return hash((self._edges, self.delta, self.phi))

    def __repr__(self) -> str:
        return (
            f"GeneralMotif({self.display_name}, edges={self._edges}, "
            f"delta={self.delta:g}, phi={self.phi:g})"
        )


def iter_dag_matches(
    graph: TimeSeriesGraph, motif: GeneralMotif
) -> Iterator[StructuralMatch]:
    """All injective structural matches of a general motif.

    Backtracks over motif edges in label order; at each edge the source
    and/or target vertex may be new, giving four assignment cases. The
    candidate pool uses graph adjacency whenever one endpoint is bound
    (never full vertex enumeration beyond the first edge).
    """
    edges = motif.edges
    m = len(edges)
    assignment: Dict[int, Node] = {}
    used: set = set()
    chosen: List = [None] * m

    def bind(vid: int, node: Node) -> bool:
        if vid in assignment:
            return assignment[vid] == node
        if node in used:
            return False
        assignment[vid] = node
        used.add(node)
        return True

    def unbind(vid: int, was_bound: bool) -> None:
        if not was_bound:
            used.discard(assignment[vid])
            del assignment[vid]

    def extend(i: int) -> Iterator[StructuralMatch]:
        if i == m:
            vertex_map = tuple(
                assignment[v] for v in range(motif.num_vertices)
            )
            yield StructuralMatch(motif, vertex_map, tuple(chosen))  # type: ignore[arg-type]
            return
        src_vid, dst_vid = edges[i]
        src_bound = src_vid in assignment
        dst_bound = dst_vid in assignment
        if src_bound and dst_bound:
            series = graph.series(assignment[src_vid], assignment[dst_vid])
            candidates = [series] if series is not None else []
        elif src_bound:
            candidates = graph.out_series(assignment[src_vid])
        elif dst_bound:
            candidates = graph.in_series(assignment[dst_vid])
        else:
            candidates = graph.all_series()
        for series in candidates:
            ok_src = bind(src_vid, series.src)
            if not ok_src:
                continue
            ok_dst = bind(dst_vid, series.dst)
            if not ok_dst:
                unbind(src_vid, src_bound)
                continue
            chosen[i] = series
            yield from extend(i + 1)
            chosen[i] = None
            unbind(dst_vid, dst_bound)
            unbind(src_vid, src_bound)

    yield from extend(0)


def find_dag_instances(
    graph: TimeSeriesGraph,
    motif: GeneralMotif,
    delta: Optional[float] = None,
    phi: Optional[float] = None,
    on_instance: Optional[Callable[[MotifInstance], None]] = None,
) -> List[MotifInstance]:
    """All maximal instances of a general (fork/join) motif.

    The per-match enumeration is the unmodified Algorithm 1 machinery:
    under the global label order, edge-sets tile each δ-window in label
    order regardless of which vertex pairs the edges connect.
    """
    collected: List[MotifInstance] = []
    sink = on_instance if on_instance is not None else collected.append
    for match in iter_dag_matches(graph, motif):
        find_instances_in_match(
            match, delta=delta, phi=phi, on_instance=sink
        )
    return collected
