"""Fully incremental maintenance of structural matches and closed windows.

The streaming detector's work per poll used to be ``O(|E| + matches)``:
the first poll after any :meth:`~repro.core.streaming.StreamingDetector.add`
rebuilt the whole :class:`~repro.graph.timeseries.TimeSeriesGraph` and
re-enumerated every structural match. This module replaces that with true
per-edge maintenance, built on two observations about the paper's two-phase
search:

1. **Phase P1 is event-free.** A structural match depends only on *which*
   ordered pairs are connected, never on the events they carry. Appending
   an event to an existing pair therefore changes nothing in P1; only the
   *first* event of a pair can create matches — and every match it creates
   contains that pair. :meth:`IncrementalMatcher._matches_through` finds
   exactly those by anchoring the paper's spanning-path DFS at the new
   edge (each candidate position once, deduplicated by first occurrence)
   and extending backwards/forwards, so discovery cost is proportional to
   the walks through the new edge, not to the whole graph.

2. **Window closure is a merge by deadline.** A window anchored at ``a``
   finalizes when the watermark passes ``a + δ``. Per match, the earliest
   unprocessed anchor gives the next deadline; a min-heap over these
   deadlines lets :meth:`IncrementalMatcher.emit_closed` pop exactly the
   matches with ready windows — a poll touches no match whose windows are
   all still open or already drained.

Matches that cannot yet host any instance (no strictly time-respecting
chain, or total flow below φ — both *monotone* in appended events) are
parked in a per-pair watch table and rechecked only when one of their own
pairs receives an event; matches whose anchors are exhausted are parked on
their first-edge pair and woken only by a new anchor. ``rebuild_count``
on the detector therefore stays 0 after construction: nothing is ever
recomputed from scratch.

Exactly-once and equivalence with the offline
:func:`repro.core.enumeration.find_instances` are property-tested in
``tests/property/test_streaming_oracle.py`` against random interleavings
of ``add``/``poll``/``flush``.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.enumeration import enumerate_window_ranges, match_is_feasible
from repro.core.instance import MotifInstance, Run
from repro.core.matching import StructuralMatch, iter_structural_matches
from repro.core.motif import Motif
from repro.core.windows import Window
from repro.graph.events import Node
from repro.graph.timeseries import GrowableTimeSeriesGraph

__all__ = [
    "IncrementalMatcher",
    "MatchProgress",
    "match_key",
    "next_window_end",
    "sweep_closed_windows",
]

_Pair = Tuple[Node, Node]
_NEG_INF = float("-inf")


def match_key(match: StructuralMatch) -> Tuple:
    """Stable identity of one structural match: vertex map *and* edge map.

    The vertex map alone is not enough: two distinct matches can map the
    same graph vertices while assigning different edge sequences to the
    motif edges (multigraph-style parallel series over the same pair).
    Keying per-match skip-rule state on the vertex map would let such
    matches share — and corrupt — each other's progress, silently dropping
    instances. The key therefore includes the full edge mapping.
    """
    return (
        match.vertex_map,
        tuple((s.src, s.dst) for s in match.series),
    )


class MatchProgress:
    """Mutable per-match emission state (one object per structural match).

    ``last_anchor`` is the latest window anchor already processed (all
    windows at or before it are finalized — the exactly-once cursor);
    ``prev_lam`` is the last-edge frontier ``Λ`` of the previously emitted
    window (the paper's skip-rule state). ``feasible``/``drained`` track
    the scheduling lifecycle inside :class:`IncrementalMatcher`.
    """

    __slots__ = ("match", "last_anchor", "prev_lam", "feasible", "drained")

    def __init__(self, match: Optional[StructuralMatch] = None) -> None:
        self.match = match
        self.last_anchor: float = _NEG_INF
        self.prev_lam: Optional[float] = None
        self.feasible = False
        self.drained = False


def next_window_end(
    match: StructuralMatch, progress: MatchProgress, delta: float
) -> Optional[float]:
    """End of the earliest unprocessed window, or None when drained.

    This is the match's next finalization deadline: once the horizon
    passes it, :func:`sweep_closed_windows` has work to do.
    """
    first = match.series[0]
    idx = first.first_index_after(progress.last_anchor)
    if idx >= len(first.times):
        return None
    return first.times[idx] + delta


def sweep_closed_windows(
    match: StructuralMatch,
    progress: MatchProgress,
    horizon: float,
    delta: float,
    phi: float,
    sink: Callable[[MotifInstance], None],
) -> int:
    """Emit all maximal instances of ``match`` in windows closed by ``horizon``.

    Mirrors :func:`repro.core.windows.iter_maximal_windows` plus Algorithm
    1's per-window enumeration, but resumes from ``progress`` (binary
    search to the first unprocessed anchor — no O(n) rescan) and stops at
    the first window whose end has not yet passed the horizon, leaving
    ``progress`` positioned for the next call. Returns the number of
    instances emitted. Both streaming modes (incremental and rebuild)
    share this sweep, so their per-match window semantics are identical
    by construction.
    """
    series_list = match.series
    first, last = series_list[0], series_list[-1]
    times = first.times
    last_times = last.times
    n = len(times)
    last_anchor = progress.last_anchor
    prev_lam = progress.prev_lam
    emitted = 0

    def emit(ranges: Tuple[Tuple[int, int], ...]) -> None:
        nonlocal emitted
        runs = tuple(
            Run(series_list[k], lo, hi) for k, (lo, hi) in enumerate(ranges)
        )
        sink(MotifInstance(match.motif, match.vertex_map, runs))
        emitted += 1

    i = first.first_index_after(last_anchor)
    while i < n:
        anchor = times[i]
        i += 1
        if anchor <= last_anchor:
            continue  # tied anchors produce one window
        end = anchor + delta
        if end >= horizon:
            break  # later events could still land inside this window
        j = last.last_index_at_or_before(end)
        if j < 0:
            last_anchor = anchor
            continue
        lam = last_times[j]
        if lam < anchor:
            last_anchor = anchor
            continue  # no last-edge element inside the window
        if prev_lam is not None and lam <= prev_lam:
            last_anchor = anchor
            continue  # the paper's skip rule
        prev_lam = lam
        last_anchor = anchor
        enumerate_window_ranges(series_list, Window(anchor, end), phi, emit)
    progress.last_anchor = last_anchor
    progress.prev_lam = prev_lam
    return emitted


class IncrementalMatcher:
    """Incremental structural-match index with deadline-driven emission.

    Owns the growable graph's match set for one ``(motif, δ, φ)`` query
    and keeps, per match, a :class:`MatchProgress`. Matches move between
    three disjoint states:

    ``waiting``
        not yet feasible (no strictly time-respecting chain, or a series
        below φ); parked in ``_waiting[pair]`` for each of its pairs and
        rechecked only when one of those pairs receives an event.
        Feasibility is monotone under appends, so parking is safe.
    ``scheduled``
        feasible with at least one unprocessed anchor; a single entry
        ``(next window end, match index)`` lives in the min-heap.
    ``drained``
        feasible but every anchor processed; parked in ``_drained`` on
        the first-edge pair, woken by the next new anchor.

    :meth:`add` costs O(1) amortized for events on known pairs (plus any
    wakeups that event triggers); the first event of a new pair
    additionally discovers the matches through that pair. :meth:`emit_closed`
    costs O(log #matches) per popped match plus the per-window
    enumeration work — matches without ready windows are never touched.
    """

    def __init__(
        self,
        graph: GrowableTimeSeriesGraph,
        motif: Motif,
        delta: float,
        phi: float,
    ) -> None:
        self.graph = graph
        self.motif = motif
        self.delta = delta
        self.phi = phi
        self._states: List[MatchProgress] = []
        self._heap: List[Tuple[float, int]] = []
        self._waiting: Dict[_Pair, List[int]] = {}
        self._drained: Dict[_Pair, List[int]] = {}
        self.matches_discovered = 0
        self.feasibility_checks = 0
        # Profiling counters (plain ints — an increment costs less than a
        # registry gate, so these stay on unconditionally and are lifted
        # into the metrics registry by StreamingDetector.metrics()):
        # anchored-P1 DFS expansion steps, watch/drained-table wakeups,
        # and deadline-heap traffic.
        self.expansions = 0
        self.watchlist_hits = 0
        self.heap_pushes = 0
        self.heap_pops = 0
        # Bootstrap from whatever the graph already holds (usually empty).
        # No temporal/φ pruning here: pruned matches could become feasible
        # after later appends, so the index must keep them all and defer
        # feasibility to the monotone waiting/scheduled lifecycle.
        for match in iter_structural_matches(graph, motif):
            self._register(match)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def match_count(self) -> int:
        """Number of structural matches discovered so far."""
        return len(self._states)

    @property
    def scheduled_count(self) -> int:
        """Matches currently carrying a finalization deadline."""
        return len(self._heap)

    def matches(self) -> List[StructuralMatch]:
        """All discovered matches (discovery order)."""
        return [state.match for state in self._states]

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def export_progress(self) -> Dict[Tuple, Tuple[float, Optional[float]]]:
        """Per-match emission cursors, keyed by :func:`match_key`.

        The key is graph-content-addressed (vertex map + edge pairs), so
        the cursors can be re-applied to a matcher rebuilt from a restored
        graph even though match *indices* depend on discovery order.
        """
        return {
            match_key(state.match): (state.last_anchor, state.prev_lam)
            for state in self._states
        }

    def apply_progress(
        self, progress_by_key: Dict[Tuple, Tuple[float, Optional[float]]]
    ) -> None:
        """Overlay saved emission cursors onto the current match set.

        Used on checkpoint restore, after the match set has been
        re-derived from the graph: sets each match's ``last_anchor`` /
        ``prev_lam`` and rebuilds the deadline heap and drained table so
        the next :meth:`emit_closed` resumes instead of re-emitting.
        Matches absent from ``progress_by_key`` keep their fresh cursors.
        """
        self._heap = []
        self._drained = {}
        for idx, state in enumerate(self._states):
            saved = progress_by_key.get(match_key(state.match))
            if saved is not None:
                state.last_anchor, state.prev_lam = saved
            if state.feasible:
                state.drained = False
                self._schedule(idx, state)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def add(self, src: Node, dst: Node, time: float, flow: float) -> None:
        """Ingest one interaction and update the index incrementally."""
        is_new_pair = self.graph.append(src, dst, time, flow)
        pair = (src, dst)
        # Snapshot the wake lists *before* discovery: matches registered
        # below already see the new event, so rechecking them here would
        # pay match_is_feasible twice in the same call.
        waiting = self._waiting.pop(pair, None)
        drained = self._drained.pop(pair, None)
        if is_new_pair:
            series = self.graph.series(src, dst)
            assert series is not None
            for match in self._matches_through(series):
                self._register(match)
        if waiting:
            self.watchlist_hits += len(waiting)
            still_waiting: List[int] = []
            for idx in waiting:
                state = self._states[idx]
                if state.feasible:
                    continue  # stale entry left by a wake via another pair
                self.feasibility_checks += 1
                if match_is_feasible(state.match.series, self.phi):
                    state.feasible = True
                    self._schedule(idx, state)
                else:
                    still_waiting.append(idx)
            if still_waiting:
                self._waiting.setdefault(pair, []).extend(still_waiting)
        if drained:
            self.watchlist_hits += len(drained)
            for idx in drained:
                state = self._states[idx]
                state.drained = False
                # Re-drains immediately when the new event's timestamp
                # ties the already-processed anchor (duplicate anchor).
                self._schedule(idx, state)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def emit_closed(
        self, horizon: float, sink: Callable[[MotifInstance], None]
    ) -> int:
        """Emit every instance whose window end is strictly below horizon.

        Pops matches in deadline order; each popped match sweeps *all* its
        closed windows in one go and is rescheduled at its next deadline
        (or drained). Deterministic: heap ties break on match index, i.e.
        discovery order.
        """
        heap = self._heap
        emitted = 0
        while heap and heap[0][0] < horizon:
            _, idx = heappop(heap)
            self.heap_pops += 1
            state = self._states[idx]
            emitted += sweep_closed_windows(
                state.match, state, horizon, self.delta, self.phi, sink
            )
            self._schedule(idx, state)
        return emitted

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _register(self, match: StructuralMatch) -> None:
        idx = len(self._states)
        state = MatchProgress(match)
        self._states.append(state)
        self.matches_discovered += 1
        self.feasibility_checks += 1
        if match_is_feasible(match.series, self.phi):
            state.feasible = True
            self._schedule(idx, state)
        else:
            for pair in {(s.src, s.dst) for s in match.series}:
                self._waiting.setdefault(pair, []).append(idx)

    def _schedule(self, idx: int, state: MatchProgress) -> None:
        end = next_window_end(state.match, state, self.delta)
        if end is None:
            state.drained = True
            first = state.match.series[0]
            self._drained.setdefault((first.src, first.dst), []).append(idx)
        else:
            heappush(self._heap, (end, idx))
            self.heap_pushes += 1

    def _matches_through(
        self, new_series
    ) -> Iterator[StructuralMatch]:
        """All structural matches whose edge mapping uses ``new_series``.

        For every motif-edge position ``p`` the new pair could instantiate,
        anchor ``path[p] → src`` and ``path[p+1] → dst``, then extend the
        assignment backwards to position 0 and forwards to position m-1 —
        the same modified DFS as :func:`iter_structural_matches`, rooted
        at the new edge instead of at a start vertex. Matches using the
        new series at several positions are produced exactly once, at the
        *first* such position (earlier positions are forbidden from
        choosing it). Existing matches cannot reappear: they predate the
        pair and therefore cannot contain its series.
        """
        graph, motif = self.graph, self.motif
        path = motif.spanning_path
        m = motif.num_edges
        u, v = new_series.src, new_series.dst
        for p in range(m):
            a, b = path[p], path[p + 1]
            if a == b:
                if u != v:
                    continue  # motif self-loop needs a graph self-loop
            elif u == v:
                continue  # two motif vertices cannot share a graph vertex
            assignment: Dict[int, Node] = {a: u}
            if b != a:
                assignment[b] = v
            used = set(assignment.values())
            chosen: List[Optional[object]] = [None] * m
            chosen[p] = new_series
            # Fill order: backwards from the anchor to edge 0, then
            # forwards to edge m-1. Each step has the inner endpoint of
            # its edge already assigned.
            order = list(range(p - 1, -1, -1)) + list(range(p + 1, m))

            def fill(k: int) -> Iterator[StructuralMatch]:
                self.expansions += 1
                if k == len(order):
                    vertex_map = tuple(
                        assignment[vid] for vid in range(motif.num_vertices)
                    )
                    yield StructuralMatch(
                        motif, vertex_map, tuple(chosen)  # type: ignore[arg-type]
                    )
                    return
                q = order[k]
                qa, qb = path[q], path[q + 1]
                forbid_new = q < p  # first-occurrence dedup
                if qa in assignment and qb in assignment:
                    series = graph.series(assignment[qa], assignment[qb])
                    if series is not None and not (
                        forbid_new and series is new_series
                    ):
                        chosen[q] = series
                        yield from fill(k + 1)
                        chosen[q] = None
                elif qb in assignment:  # backward: pick the source vertex
                    for series in graph.in_series(assignment[qb]):
                        if forbid_new and series is new_series:
                            continue
                        candidate = series.src
                        if candidate in used:
                            continue
                        assignment[qa] = candidate
                        used.add(candidate)
                        chosen[q] = series
                        yield from fill(k + 1)
                        chosen[q] = None
                        used.discard(candidate)
                        del assignment[qa]
                else:  # forward: pick the target vertex
                    for series in graph.out_series(assignment[qa]):
                        candidate = series.dst
                        if candidate in used:
                            continue
                        assignment[qb] = candidate
                        used.add(candidate)
                        chosen[q] = series
                        yield from fill(k + 1)
                        chosen[q] = None
                        used.discard(candidate)
                        del assignment[qb]

            yield from fill(0)
