"""Phase P2: Algorithm 1 — enumerate all maximal motif instances.

Given a structural match ``G_s`` with series ``R(e_1) .. R(e_m)``, the
enumerator slides the maximal δ-windows of :mod:`repro.core.windows` and,
inside each window ``[a, a + δ]``, recursively assigns to every motif edge a
*prefix* of the remaining part of its series (the paper's ``FindInstances``
procedure):

* edge 1 receives all its elements in ``[a, b_1]``,
* edge ``i`` receives all its elements in ``(b_{i-1}, b_i]``,
* the last edge ``m`` receives all its elements in ``(b_{m-1}, a + δ]``,

where the breakpoints ``b_i`` run over element timestamps. Two checks make
the output exactly the *maximal* instances:

1. **Prefix validity** (the paper's "no element of e2 between (13,2) and
   (15,3)" remark): a prefix of edge ``i`` ending at element ``x_j`` is
   extended only if the next element ``x_{j+1}`` of the same series (within
   the window) does **not** precede the first available element of edge
   ``i+1``; otherwise ``x_{j+1}`` could be added to edge ``i``'s set without
   violating order or duration, so every completion would be non-maximal.
2. **φ-pruning** (line 16 of Algorithm 1): a prefix whose aggregated flow is
   below φ cannot be an edge-set of a valid instance — the recursion is cut
   immediately. (Longer prefixes have larger flow, so the scan continues.)
   The ``prefix_pruning=False`` ablation defers the φ test to complete
   instances; the result set is identical, only slower to produce.

Duplicate freedom: within a window, distinct breakpoint choices produce
distinct edge-sets; across windows, every emitted instance starts exactly at
its window anchor (first edge-set always contains the anchor element) and
anchors are distinct.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.instance import MotifInstance, Run
from repro.core.matching import StructuralMatch
from repro.core.windows import Window, iter_maximal_windows
from repro.graph.timeseries import EdgeSeries

#: Callback receiving one complete assignment: a tuple of (lo, hi) index
#: ranges, one per motif edge.
RangeCallback = Callable[[Tuple[Tuple[int, int], ...]], None]


def match_is_feasible(
    series_list: Sequence[EdgeSeries], phi: float
) -> bool:
    """Cheap output-preserving prechecks for one structural match.

    Phase P1 ignores time and flow entirely, so most structural matches of
    larger motifs cannot host any instance. Two O(m log n) checks reject
    them before any window is opened:

    * **flow feasibility** — an edge-set is a subset of its series, so a
      series with total flow below φ makes every instance fail the flow
      constraint;
    * **temporal feasibility** — instances need a strictly time-respecting
      chain across the series; the greedy earliest walk (first element of
      ``R(e_1)``, then the first strictly later element of ``R(e_2)``, …)
      exists iff any such chain exists (ignoring δ, which the window
      iterator enforces later).
    """
    if phi > 0:
        for series in series_list:
            if series.total_flow < phi:
                return False
    t = series_list[0].first_time
    for series in series_list[1:]:
        idx = series.first_index_after(t)
        if idx >= len(series):
            return False
        t = series.times[idx]
    return True


def enumerate_window_ranges(
    series_list: Sequence[EdgeSeries],
    window: Window,
    phi: float,
    emit: RangeCallback,
    prefix_pruning: bool = True,
) -> None:
    """Run ``FindInstances`` for one window, emitting index-range tuples.

    ``series_list[i]`` is ``R(e_{i+1})`` of the match. Ranges are inclusive
    ``(lo, hi)`` index pairs into the corresponding series.
    """
    m = len(series_list)
    anchor, end = window
    runs: List[Optional[Tuple[int, int]]] = [None] * m

    def recurse(i: int, lower_t: float, inclusive: bool) -> None:
        series = series_list[i]
        times = series.times
        n = len(times)
        start_idx = (
            series.first_index_at_or_after(lower_t)
            if inclusive
            else series.first_index_after(lower_t)
        )
        if start_idx >= n or times[start_idx] > end:
            return
        last_idx = series.last_index_at_or_before(end)

        if i == m - 1:
            # Last motif edge: take everything up to the window end. In
            # ablation mode the φ test is deferred to the emit callback.
            if not prefix_pruning or series.flow_between(start_idx, last_idx) >= phi:
                runs[i] = (start_idx, last_idx)
                emit(tuple(runs))  # type: ignore[arg-type]
                runs[i] = None
            return

        next_series = series_list[i + 1]
        next_times = next_series.times
        next_n = len(next_times)
        # First element of the next edge strictly after the running prefix
        # end; advanced incrementally as the prefix grows.
        next_idx = next_series.first_index_after(times[start_idx])

        for j in range(start_idx, last_idx + 1):
            t_j = times[j]
            while next_idx < next_n and next_times[next_idx] <= t_j:
                next_idx += 1
            if next_idx >= next_n or next_times[next_idx] > end:
                # No next-edge element left in the window; longer prefixes
                # only push the requirement later — stop.
                return
            if j + 1 <= last_idx and times[j + 1] < next_times[next_idx]:
                # Prefix validity: element j+1 would be addable to this
                # edge-set, so completions would be non-maximal.
                continue
            if prefix_pruning and series.flow_between(start_idx, j) < phi:
                continue  # φ-pruning (line 16 of Algorithm 1)
            runs[i] = (start_idx, j)
            recurse(i + 1, t_j, False)
            runs[i] = None

    recurse(0, anchor, True)


def find_instances_in_match(
    match: StructuralMatch,
    delta: Optional[float] = None,
    phi: Optional[float] = None,
    on_instance: Optional[Callable[[MotifInstance], None]] = None,
    skip_rule: bool = True,
    prefix_pruning: bool = True,
    anchor_range: Optional[Tuple[float, float]] = None,
) -> List[MotifInstance]:
    """All maximal instances of the motif within one structural match.

    Parameters
    ----------
    match:
        A phase-P1 structural match.
    delta, phi:
        Override the motif's constraints (default: the motif's own δ, φ).
    on_instance:
        When given, instances are streamed to this callback and the
        returned list is empty (avoids materialising huge result sets).
    skip_rule, prefix_pruning:
        Ablation switches; leave at defaults for correct/efficient search.
        With ``prefix_pruning=False`` the φ test happens on complete
        assignments only (identical results, more work).
    anchor_range:
        Optional half-open interval ``[lo, hi)``: only windows whose anchor
        (== the emitted instances' start time) falls inside it are
        enumerated. Windows outside the range are still *iterated* so the
        skip rule sees the same history as an unrestricted run — this is
        what makes δ-overlap sharding (:mod:`repro.parallel`) exact.
    """
    motif = match.motif
    delta = motif.delta if delta is None else delta
    phi = motif.phi if phi is None else phi
    series_list = match.series
    collected: List[MotifInstance] = []
    if not match_is_feasible(series_list, phi):
        return collected
    sink = on_instance if on_instance is not None else collected.append

    def emit(ranges: Tuple[Tuple[int, int], ...]) -> None:
        runs = tuple(
            Run(series_list[i], lo, hi) for i, (lo, hi) in enumerate(ranges)
        )
        instance = MotifInstance(motif, match.vertex_map, runs)
        if not prefix_pruning and any(run.flow < phi for run in runs):
            return  # deferred φ check (ablation mode)
        sink(instance)

    for window in iter_maximal_windows(
        series_list[0], series_list[-1], delta, skip_rule=skip_rule
    ):
        if anchor_range is not None:
            if window.start >= anchor_range[1]:
                break  # anchors are non-decreasing; nothing owned follows
            if window.start < anchor_range[0]:
                continue  # halo window: skip-rule state only
        enumerate_window_ranges(
            series_list, window, phi, emit, prefix_pruning=prefix_pruning
        )
    return collected


def find_instances(
    matches: Sequence[StructuralMatch],
    delta: Optional[float] = None,
    phi: Optional[float] = None,
    on_instance: Optional[Callable[[MotifInstance], None]] = None,
    skip_rule: bool = True,
    prefix_pruning: bool = True,
    anchor_range: Optional[Tuple[float, float]] = None,
) -> List[MotifInstance]:
    """All maximal instances across a set of structural matches (phase P2)."""
    collected: List[MotifInstance] = []
    sink = on_instance if on_instance is not None else collected.append
    for match in matches:
        find_instances_in_match(
            match,
            delta=delta,
            phi=phi,
            on_instance=sink,
            skip_rule=skip_rule,
            prefix_pruning=prefix_pruning,
            anchor_range=anchor_range,
        )
    return collected
