"""The :class:`FlowMotifEngine` facade — the library's main entry point.

Wraps the two-phase algorithm of Section 4 (and its Section 5 variants)
behind one object bound to an interaction graph:

>>> from repro import InteractionGraph, Motif, FlowMotifEngine
>>> g = InteractionGraph.from_tuples([
...     ("a", "b", 1.0, 5.0), ("b", "c", 2.0, 4.0), ("b", "c", 3.0, 2.0),
... ])
>>> engine = FlowMotifEngine(g)
>>> result = engine.find_instances(Motif.chain(3, delta=10, phi=3))
>>> result.count
1
>>> round(result.instances[0].flow, 1)
5.0

Phase timings are recorded the way the paper reports them: phase P1
(structural matching, independent of δ/φ — Table 4) and phase P2 (instance
search — Figures 8–10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.core import counting as _counting
from repro.core import dp as _dp
from repro.core import enumeration as _enumeration
from repro.core import topk as _topk
from repro.core.instance import MotifInstance
from repro.core.matching import (
    StructuralMatch,
    find_structural_matches,
    iter_structural_matches,
)
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph
from repro.graph.timeseries import TimeSeriesGraph
from repro.obs import metrics as _metrics
from repro.obs.tracing import span as _span
from repro.utils.timing import ShardTimingReport, Timer


@dataclass
class SearchResult:
    """Outcome of a full two-phase instance search.

    Attributes
    ----------
    motif:
        The searched motif.
    instances:
        The maximal instances found (empty when ``collect=False``).
    count:
        Number of instances found (also set when not collecting).
    num_matches:
        Number of phase-P1 structural matches (Table 4's "Instances").
        Parallel runs report the sum of per-shard feasible match counts,
        which can differ from the serial count (a match whose events span
        several shards is examined by each of them).
    p1_seconds, p2_seconds:
        Wall-clock time of the two phases. Parallel runs report aggregate
        *work* (the sum over shards); the elapsed critical path lives in
        ``shard_timings``.
    shard_timings:
        Per-shard breakdown of a parallel run (None for serial searches);
        see :class:`repro.utils.timing.ShardTimingReport`.
    """

    motif: Motif
    instances: List[MotifInstance] = field(default_factory=list)
    count: int = 0
    num_matches: int = 0
    p1_seconds: float = 0.0
    p2_seconds: float = 0.0
    shard_timings: Optional[ShardTimingReport] = None

    @property
    def total_seconds(self) -> float:
        """End-to-end search time (P1 + P2)."""
        return self.p1_seconds + self.p2_seconds

    def flows(self) -> List[float]:
        """Instance flows, descending (useful for quick inspection)."""
        return sorted((inst.flow for inst in self.instances), reverse=True)


class FlowMotifEngine:
    """Two-phase flow-motif search over one interaction network.

    Parameters
    ----------
    graph:
        Either the raw :class:`InteractionGraph` multigraph or an already
        merged :class:`TimeSeriesGraph`.

    Notes
    -----
    Structural matches are cached per motif *shape* (spanning path), since
    they do not depend on δ/φ; repeated searches with different constraints
    (the Figure 9/10 sweeps) pay phase P1 once.
    """

    def __init__(self, graph: Union[InteractionGraph, TimeSeriesGraph]) -> None:
        if isinstance(graph, InteractionGraph):
            self._ts = graph.to_time_series()
        elif isinstance(graph, TimeSeriesGraph):
            self._ts = graph
        else:
            raise TypeError(
                "graph must be an InteractionGraph or TimeSeriesGraph, "
                f"got {type(graph).__name__}"
            )
        self._match_cache: dict = {}

    @property
    def time_series_graph(self) -> TimeSeriesGraph:
        """The underlying merged graph ``G_T``."""
        return self._ts

    # ------------------------------------------------------------------
    # Phase P1
    # ------------------------------------------------------------------

    def structural_matches(
        self, motif: Motif, use_cache: bool = True
    ) -> List[StructuralMatch]:
        """All structural matches of the motif (phase P1, Table 4)."""
        key = motif.spanning_path
        if use_cache and key in self._match_cache:
            cached = self._match_cache[key]
            return [
                StructuralMatch(motif, m.vertex_map, m.series) for m in cached
            ]
        matches = find_structural_matches(self._ts, motif)
        if use_cache:
            self._match_cache[key] = matches
        return matches

    def clear_cache(self) -> None:
        """Drop cached structural matches (e.g. after graph changes)."""
        self._match_cache.clear()

    def parallel(
        self,
        jobs: Optional[int] = None,
        shards: Optional[int] = None,
        backend: str = "process",
        partition_strategy: str = "events",
        use_shared_memory: bool = True,
    ):
        """A :class:`~repro.parallel.ParallelFlowMotifEngine` over the same
        graph — δ-overlap time-sharded search fanned out over ``jobs``
        workers (see :mod:`repro.parallel`). ``use_shared_memory=False``
        disables the process backend's zero-copy columnar transport.

        >>> g = InteractionGraph.from_tuples([("a", "b", 1.0, 5.0),
        ...                                   ("b", "c", 2.0, 4.0)])
        >>> engine = FlowMotifEngine(g)
        >>> pengine = engine.parallel(jobs=1)
        >>> pengine.find_instances(Motif.chain(3, delta=10, phi=0)).count
        1
        """
        from repro.parallel.engine import ParallelFlowMotifEngine

        return ParallelFlowMotifEngine(
            self._ts,
            jobs=jobs,
            shards=shards,
            backend=backend,
            partition_strategy=partition_strategy,
            use_shared_memory=use_shared_memory,
        )

    # ------------------------------------------------------------------
    # Phase P2 entry points
    # ------------------------------------------------------------------

    def find_instances(
        self,
        motif: Motif,
        delta: Optional[float] = None,
        phi: Optional[float] = None,
        collect: bool = True,
        skip_rule: bool = True,
        prefix_pruning: bool = True,
        use_cache: bool = True,
    ) -> SearchResult:
        """Find all maximal instances of ``motif`` (Sections 4, Algorithm 1).

        Parameters
        ----------
        motif:
            The flow motif; its δ/φ apply unless overridden.
        delta, phi:
            Optional per-call constraint overrides.
        collect:
            When False, instances are counted but not retained (for large
            sweeps); ``result.count`` is still exact.
        skip_rule, prefix_pruning:
            Ablation switches (see :mod:`repro.core.enumeration`).

        Notes
        -----
        With ``use_cache=False`` the search runs *fused*: structural
        matches stream out of a flow/temporally-pruned DFS directly into
        phase P2, skipping matches that provably host no instance. The
        instance set is identical; ``num_matches`` then reports the pruned
        (feasible) match count and the whole time is accounted to
        ``p2_seconds``.
        """
        result = SearchResult(motif=motif)
        counter = [0]

        if collect:
            def sink(instance: MotifInstance) -> None:
                counter[0] += 1
                result.instances.append(instance)
        else:
            def sink(instance: MotifInstance) -> None:
                counter[0] += 1

        with _span(
            "query.find_instances", motif=str(motif), backend="serial"
        ):
            if use_cache:
                with _span("p1.match"), Timer() as t1:
                    matches = self.structural_matches(motif, use_cache=True)
                result.num_matches = len(matches)
                result.p1_seconds = t1.elapsed
                with _span("p2.enumerate"), Timer() as t2:
                    _enumeration.find_instances(
                        matches,
                        delta=delta,
                        phi=phi,
                        on_instance=sink,
                        skip_rule=skip_rule,
                        prefix_pruning=prefix_pruning,
                    )
                result.p2_seconds = t2.elapsed
            else:
                effective_phi = motif.phi if phi is None else phi
                with _span("p2.enumerate", fused=True), Timer() as t2:
                    for match in iter_structural_matches(
                        self._ts, motif, phi=effective_phi,
                        temporal_pruning=True
                    ):
                        result.num_matches += 1
                        _enumeration.find_instances_in_match(
                            match,
                            delta=delta,
                            phi=phi,
                            on_instance=sink,
                            skip_rule=skip_rule,
                            prefix_pruning=prefix_pruning,
                        )
                result.p2_seconds = t2.elapsed
        result.count = counter[0]
        reg = _metrics.active()
        if reg is not None:
            reg.counter("p1.matches").inc(result.num_matches)
            reg.counter("p2.instances").inc(result.count)
        return result

    def count_instances(
        self,
        motif: Motif,
        delta: Optional[float] = None,
        phi: Optional[float] = None,
        use_cache: bool = True,
    ) -> SearchResult:
        """Count maximal instances without constructing them (memoized;
        the Section 7 future-work feature)."""
        result = SearchResult(motif=motif)
        with _span(
            "query.count_instances", motif=str(motif), backend="serial"
        ):
            with _span("p1.match"), Timer() as t1:
                matches = self.structural_matches(motif, use_cache=use_cache)
            result.num_matches = len(matches)
            result.p1_seconds = t1.elapsed
            with _span("p2.count"), Timer() as t2:
                result.count = _counting.count_instances(
                    matches, delta=delta, phi=phi
                )
            result.p2_seconds = t2.elapsed
        reg = _metrics.active()
        if reg is not None:
            reg.counter("p1.matches").inc(result.num_matches)
            reg.counter("p2.instances").inc(result.count)
        return result

    def top_k(
        self,
        motif: Motif,
        k: int,
        delta: Optional[float] = None,
        use_cache: bool = True,
    ) -> List[MotifInstance]:
        """The k maximal instances with the largest flow (Section 5)."""
        matches = self.structural_matches(motif, use_cache=use_cache)
        return _topk.top_k_instances(matches, k, delta=delta)

    def top_one_dp(
        self,
        motif: Motif,
        delta: Optional[float] = None,
        method: str = "auto",
        use_cache: bool = True,
    ) -> _dp.TopOneResult:
        """The maximum-flow instance via the DP module (Section 5.1)."""
        matches = self.structural_matches(motif, use_cache=use_cache)
        return _dp.top_one_instance(matches, delta=delta, method=method)
