"""Post-search analysis of motif instances (Section 7 future work).

The paper's future-work list opens with: *"group the motif instances per
structural match, in order to identify the structural matches (i.e., sets
of vertices in the graph G) with the largest activity and how this
activity is spread along the timeline."* This package implements that
analysis layer on top of search results.
"""

from repro.analysis.activity import (
    ActivityProfile,
    activity_timeline,
    group_by_match,
    group_by_vertices,
    rank_matches_by_activity,
)

__all__ = [
    "ActivityProfile",
    "activity_timeline",
    "group_by_match",
    "group_by_vertices",
    "rank_matches_by_activity",
]
