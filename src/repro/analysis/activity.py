"""Grouping instances per structural match and activity timelines.

Implements the first future-work item of the paper's Section 7: given the
instances found for a motif, identify which vertex groups (structural
matches) are most active — by instance count or by total flow — and how
that activity distributes over time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.instance import MotifInstance
from repro.graph.events import Node


@dataclass(frozen=True)
class ActivityProfile:
    """Aggregate activity of one structural match (one vertex group).

    Attributes
    ----------
    vertices:
        The graph vertices of the match (bijection image, in motif-vertex
        order).
    num_instances:
        How many maximal instances this vertex group produced.
    total_flow:
        Sum of instance flows (Equation 1 values).
    max_flow:
        Largest single instance flow.
    first_start, last_end:
        Time extent covered by the group's instances.
    """

    vertices: Tuple[Node, ...]
    num_instances: int
    total_flow: float
    max_flow: float
    first_start: float
    last_end: float

    @property
    def active_span(self) -> float:
        """Length of the period over which this group was active."""
        return self.last_end - self.first_start


def group_by_vertices(
    instances: Iterable[MotifInstance],
) -> Dict[Tuple[Node, ...], List[MotifInstance]]:
    """Group instances by their vertex map (= structural match identity)."""
    groups: Dict[Tuple[Node, ...], List[MotifInstance]] = {}
    for instance in instances:
        groups.setdefault(instance.vertex_map, []).append(instance)
    return groups


def group_by_match(
    instances: Iterable[MotifInstance],
) -> List[ActivityProfile]:
    """One :class:`ActivityProfile` per structural match, unordered."""
    profiles = []
    for vertices, group in group_by_vertices(instances).items():
        flows = [instance.flow for instance in group]
        profiles.append(
            ActivityProfile(
                vertices=vertices,
                num_instances=len(group),
                total_flow=sum(flows),
                max_flow=max(flows),
                first_start=min(i.start_time for i in group),
                last_end=max(i.end_time for i in group),
            )
        )
    return profiles


def rank_matches_by_activity(
    instances: Iterable[MotifInstance],
    by: str = "num_instances",
    top: int = 10,
) -> List[ActivityProfile]:
    """The ``top`` most active vertex groups.

    Parameters
    ----------
    instances:
        Search output (e.g. ``engine.find_instances(motif).instances``).
    by:
        Ranking key: ``"num_instances"``, ``"total_flow"`` or
        ``"max_flow"``.
    top:
        How many groups to return.
    """
    if by not in ("num_instances", "total_flow", "max_flow"):
        raise ValueError(
            f"by must be num_instances, total_flow or max_flow, got {by!r}"
        )
    profiles = group_by_match(instances)
    profiles.sort(key=lambda p: (getattr(p, by), p.total_flow), reverse=True)
    return profiles[:top]


def activity_timeline(
    instances: Sequence[MotifInstance],
    bucket_width: float,
    origin: float = 0.0,
) -> List[Tuple[float, int, float]]:
    """Instance activity bucketed along the timeline.

    Each instance is attributed to the bucket of its start time. Returns
    ``(bucket_start, instance_count, total_flow)`` triples for non-empty
    buckets, in time order — "how the activity is spread along the
    timeline" (paper §7).
    """
    if bucket_width <= 0:
        raise ValueError(f"bucket_width must be positive, got {bucket_width!r}")
    counts: Dict[int, int] = {}
    flows: Dict[int, float] = {}
    for instance in instances:
        bucket = math.floor((instance.start_time - origin) / bucket_width)
        counts[bucket] = counts.get(bucket, 0) + 1
        flows[bucket] = flows.get(bucket, 0.0) + instance.flow
    return [
        (origin + bucket * bucket_width, counts[bucket], flows[bucket])
        for bucket in sorted(counts)
    ]
