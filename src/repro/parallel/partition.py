"""δ-overlap time-range partitioning of a time-series graph.

The timeline is cut into ``k`` consecutive *core* ranges
``(-inf, b_1), [b_1, b_2), ..., [b_{k-1}, +inf)``; shard ``i`` receives
every event with timestamp in ``[b_i - halo, b_{i+1} + halo]`` — its core
plus a halo of width ``halo >= δ`` on both sides.

**Anchored-ownership rule.** Algorithm 1 anchors every emitted instance at
a window start equal to the instance's first (earliest) interaction, and
the whole instance fits in ``[a, a + δ]``. Shard ``i`` *owns* exactly the
instances whose anchor lies in its core range; the search restricts
enumeration to owned windows via the ``anchor_range`` parameter of
:func:`repro.core.enumeration.find_instances`.

Why a δ-halo on **both** sides makes sharded output exact:

* *content* — an owned window ``[a, a + δ]`` with ``a < b_{i+1}`` only
  touches events ``<= b_{i+1} + halo``: all present (right halo);
* *maximality / skip rule* — an owned instance anchored at ``a`` is
  non-maximal globally iff a first-series element exists in
  ``[Λ - δ, a)`` (it could join the first edge-set), where ``Λ <= a + δ``
  is the instance's last event. All such elements are ``>= a - δ >= b_i -
  halo``: present (left halo). The window iterator's skip rule compares
  the last-edge frontier ``Λ`` of a window against the maximum frontier of
  previously *considered* windows; frontiers of windows anchored before
  ``b_i - halo`` are ``< b_i <= Λ`` and can never flip a skip decision for
  an owned window, so iterating the left-halo windows (without enumerating
  them) reproduces the exact global skip state.

Shard series are contiguous index slices of the parent series, and
:class:`EdgeSeries` sorts stably, so a shard-local run ``[lo, hi]`` maps
back to the parent series as ``[lo + offset, hi + offset]`` — the merger
uses the recorded per-pair offsets to rebind instances onto the parent
graph (:mod:`repro.parallel.merge`).

Two materialization modes exist. ``materialize=True`` (default) slices the
parent series into per-shard copies — the payload the thread/serial
backends use directly. ``materialize=False`` produces *light* shards
(``graph=None``): only the cut bounds and rebinding offsets, computed with
bisects and no copying. The process backend ships light-shard bounds plus
a shared-memory name; each worker re-materializes its slice as zero-copy
memoryview views over the attached :class:`~repro.graph.columnar.
ColumnStore` (:func:`materialize_shard`). Both modes cut identically, so
worker-side slices line up exactly with the parent-side offsets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.graph.events import Node
from repro.graph.interaction import InteractionGraph
from repro.graph.timeseries import EdgeSeries, TimeSeriesGraph

#: Pair key of one edge series: the (src, dst) vertex pair.
Pair = Tuple[Node, Node]


@dataclass
class TimeShard:
    """One shard of a δ-overlap time partition.

    Attributes
    ----------
    index, num_shards:
        Position of the shard and total shard count of its partition.
    core_start, core_end:
        The owned half-open anchor range ``[core_start, core_end)``;
        ``-inf`` / ``+inf`` on the outer shards, so ownership covers the
        whole timeline.
    halo:
        Overlap width (>= the search δ) applied on both sides of the core.
    graph:
        The sliced :class:`TimeSeriesGraph` holding every event in
        ``[core_start - halo, core_end + halo]`` — or ``None`` for a
        *light* shard, whose slice is re-materialized inside the worker
        from a shared-memory :class:`~repro.graph.columnar.ColumnStore`.
    offsets:
        Per (src, dst) pair, the parent-series index of the slice's first
        element — the rebinding map used by the merger.
    """

    index: int
    num_shards: int
    core_start: float
    core_end: float
    halo: float
    graph: Optional[TimeSeriesGraph]
    offsets: Dict[Pair, int] = field(default_factory=dict)

    @property
    def bounds(self) -> Tuple[int, int, float, float, float]:
        """The picklable payload a process worker needs to re-materialize
        this shard against an attached columnar store."""
        return (
            self.index,
            self.num_shards,
            self.core_start,
            self.core_end,
            self.halo,
        )

    @property
    def anchor_range(self) -> Tuple[float, float]:
        """The half-open ``[core_start, core_end)`` ownership interval."""
        return (self.core_start, self.core_end)

    @property
    def num_events(self) -> int:
        """Events in the shard (core plus halo) — the load-balance metric.

        0 for light shards, whose slice only exists inside the worker.
        """
        return self.graph.num_events if self.graph is not None else 0

    def owns_anchor(self, t: float) -> bool:
        """Whether an instance anchored at ``t`` belongs to this shard."""
        return self.core_start <= t < self.core_end

    def __repr__(self) -> str:
        payload = (
            f"{self.num_events} events" if self.graph is not None else "light"
        )
        return (
            f"TimeShard({self.index}/{self.num_shards}, "
            f"core=[{self.core_start:g}, {self.core_end:g}), {payload})"
        )


def _cut_points(
    times: List[float], num_shards: int, strategy: str
) -> List[float]:
    """The strictly increasing interior boundaries ``b_1 < ... < b_{k-1}``."""
    if strategy == "width":
        t_min, t_max = times[0], times[-1]
        span = t_max - t_min
        raw = [t_min + span * i / num_shards for i in range(1, num_shards)]
    elif strategy == "events":
        n = len(times)
        raw = [times[min(n - 1, (n * i) // num_shards)] for i in range(1, num_shards)]
    else:
        raise ValueError(
            f"partition strategy must be 'events' or 'width', got {strategy!r}"
        )
    cuts: List[float] = []
    for b in raw:
        if not cuts or b > cuts[-1]:
            cuts.append(b)
    return cuts


def _slice_all_series(
    all_series: List[EdgeSeries],
    data_start: float,
    data_end: float,
    materialize: bool,
    zero_copy: bool = False,
) -> Tuple[List[EdgeSeries], Dict[Pair, int]]:
    """One shard's per-series cut: slices (when materializing) + offsets.

    The single source of truth for where a shard's slice begins — used by
    both :func:`partition_time_range` (parent side, records the rebinding
    offsets) and :func:`materialize_shard` (worker side, produces the
    slices) so the two can never drift apart.

    ``zero_copy=True`` (worker side) dispatches to the series' own
    ``slice`` — memoryview views for columnar backings. The parent-side
    default forces list-backed copies even off a columnar graph, because
    materialized shards may be pickled (process backend with shared
    memory disabled) and memoryviews cannot be.
    """
    sliced: List[EdgeSeries] = []
    offsets: Dict[Pair, int] = {}
    for series in all_series:
        lo, hi = series.indices_in_interval(data_start, data_end)
        if hi < lo:
            continue
        if materialize:
            sliced.append(
                series.slice(lo, hi)
                if zero_copy
                else EdgeSeries.slice(series, lo, hi)
            )
        offsets[(series.src, series.dst)] = lo
    return sliced, offsets


def partition_time_range(
    graph: Union[InteractionGraph, TimeSeriesGraph],
    num_shards: int,
    halo: float,
    strategy: str = "events",
    sorted_times: Optional[List[float]] = None,
    materialize: bool = True,
    cut_points: Optional[List[float]] = None,
) -> List[TimeShard]:
    """Split a graph into time shards with a ``halo``-sized overlap.

    Parameters
    ----------
    graph:
        The interaction multigraph or its merged time-series view.
    num_shards:
        Requested shard count; fewer are returned when the graph has too
        few distinct timestamps to support that many non-empty cores.
    halo:
        Overlap width on both sides of each core; must be at least the δ
        of every search run against the partition (pass δ, or the maximum
        δ of a batch grid).
    strategy:
        ``"events"`` (default) cuts at event-count quantiles so shards
        carry similar load; ``"width"`` cuts the covered period into
        equal-length intervals (the Figure 13 prefix-sample geometry).
    sorted_times:
        Optional pre-sorted list of every event timestamp in ``graph``.
        The flattened sort is O(|E| log |E|) and independent of the halo,
        so callers partitioning the same graph repeatedly (δ-sweeps)
        should compute it once and pass it in.
    materialize:
        ``True`` (default) builds per-shard sliced copies of the series —
        what thread/serial workers consume directly. ``False`` builds
        light shards (``graph=None``) carrying only bounds and rebinding
        offsets: the zero-copy process backend ships those bounds and has
        each worker slice its own view of the shared columnar store.
    cut_points:
        Explicit interior boundaries overriding ``strategy`` — the hook
        for cost-adaptive sharding
        (:class:`~repro.parallel.costmodel.ShardCostModel`). Sanitized
        to a strictly increasing sequence; the anchored-ownership
        correctness argument holds for *any* cut sequence as long as the
        halo covers δ, so adapted partitions stay exact.

    Returns
    -------
    list of :class:`TimeShard`
        Cores are pairwise disjoint and jointly cover ``(-inf, +inf)``;
        every event timestamp falls in exactly one core.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    if halo < 0:
        raise ValueError(f"halo must be non-negative, got {halo!r}")
    ts = graph.to_time_series() if isinstance(graph, InteractionGraph) else graph
    if not isinstance(ts, TimeSeriesGraph):
        raise TypeError(
            "graph must be an InteractionGraph or TimeSeriesGraph, "
            f"got {type(graph).__name__}"
        )

    all_series = ts.all_series()
    times: List[float] = (
        sorted(t for series in all_series for t in series.times)
        if sorted_times is None
        else sorted_times
    )
    if cut_points is not None:
        cuts = []
        for b in cut_points:
            b = float(b)
            if math.isfinite(b) and (not cuts or b > cuts[-1]):
                cuts.append(b)
        cuts = cuts[: max(0, num_shards - 1)]
    elif num_shards == 1 or len(times) == 0:
        cuts = []
    else:
        cuts = _cut_points(times, num_shards, strategy)

    bounds = [-math.inf] + cuts + [math.inf]
    shards: List[TimeShard] = []
    total = len(bounds) - 1
    for i in range(total):
        core_start, core_end = bounds[i], bounds[i + 1]
        sliced, offsets = _slice_all_series(
            all_series, core_start - halo, core_end + halo, materialize
        )
        shards.append(
            TimeShard(
                index=i,
                num_shards=total,
                core_start=core_start,
                core_end=core_end,
                halo=halo,
                graph=TimeSeriesGraph(sliced) if materialize else None,
                offsets=offsets,
            )
        )
    return shards


def materialize_shard(
    graph: TimeSeriesGraph,
    bounds: Tuple[int, int, float, float, float],
    zero_copy: bool = True,
) -> TimeShard:
    """Rebuild one shard's slice against an attached graph (worker side).

    ``bounds`` is :attr:`TimeShard.bounds`; ``graph`` is typically the
    columnar view of a shared-memory store, in which case every slice is
    a zero-copy memoryview over the shared buffers. The bisection is the
    same one :func:`partition_time_range` performs, so shard-local index
    ranges line up exactly with the parent-side rebinding offsets.

    ``zero_copy=False`` forces list-backed slices — what the engine uses
    when a light shard ends up on the inline/pickled path, where the
    result may have to pickle.
    """
    index, num_shards, core_start, core_end, halo = bounds
    sliced, offsets = _slice_all_series(
        graph.all_series(), core_start - halo, core_end + halo, True,
        zero_copy=zero_copy,
    )
    return TimeShard(
        index=index,
        num_shards=num_shards,
        core_start=core_start,
        core_end=core_end,
        halo=halo,
        graph=TimeSeriesGraph(sliced),
        offsets=offsets,
    )
