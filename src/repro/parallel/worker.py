"""Shard worker functions — the code that runs inside pool workers.

Everything here is module-level and operates on picklable payloads
(:class:`~repro.parallel.partition.TimeShard`, :class:`~repro.core.motif.
Motif`, plain floats), so the functions can be dispatched over a
:class:`concurrent.futures.ProcessPoolExecutor` as well as called inline
for the thread/serial backends.

The process backend's default transport is the ``"columnar"`` envelope:
instead of a pickled :class:`TimeShard`, a task carries the name of a
shared-memory :class:`~repro.graph.columnar.ColumnStore` plus the shard's
cut bounds. The worker attaches the store once per process (cached in
:data:`_ATTACHED`), rebuilds the graph as zero-copy memoryview views, and
re-materializes its shard slice locally — spawn payload drops from
O(events) to O(1) per shard.

Workers do **not** ship :class:`~repro.core.instance.MotifInstance`
objects back to the parent: an instance found in a shard is reduced to a
compact :class:`InstanceRecord` — the vertex map plus one shard-local
``(lo, hi)`` index range per motif edge. The merger rebinds records onto
the parent graph's series using the shard's slice offsets, so merged
instances are bit-identical to what a serial search would have produced
(including being backed by the parent's own :class:`EdgeSeries` objects).

Phase P1 runs per shard with the output-preserving fused pruning of
:func:`repro.core.matching.iter_structural_matches` (``temporal_pruning=
True``): a shard only materializes matches that can host an instance
*somewhere in the shard*, which is a superset of what its owned windows
need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import counting as _counting
from repro.core import enumeration as _enumeration
from repro.core import topk as _topk
from repro.core.instance import MotifInstance
from repro.core.matching import iter_structural_matches
from repro.core.motif import Motif
from repro.graph.columnar import ColumnStore
from repro.graph.events import Node
from repro.graph.timeseries import TimeSeriesGraph
from repro.obs import metrics as _obs_metrics
from repro.obs import profiler as _obs_profiler
from repro.obs import tracing as _tracing
from repro.obs.tracing import span as _span
from repro.resilience import faultinject as _faultinject
from repro.parallel.partition import TimeShard, materialize_shard
from repro.utils.timing import Timer

#: Compact shard-local form of one instance: the vertex map plus one
#: inclusive (lo, hi) index range per motif edge, indices into the
#: *shard's* sliced series.
InstanceRecord = Tuple[Tuple[Node, ...], Tuple[Tuple[int, int], ...]]


@dataclass
class ShardSearchOutput:
    """What one shard worker sends back to the merger."""

    shard_index: int
    records: List[InstanceRecord] = field(default_factory=list)
    count: int = 0
    num_matches: int = 0
    p1_seconds: float = 0.0
    p2_seconds: float = 0.0
    #: Index of the grid configuration this output answers (batch runs).
    config_index: int = 0


def _record(instance: MotifInstance) -> InstanceRecord:
    """Reduce an instance to its shard-local record form."""
    return (
        instance.vertex_map,
        tuple((run.lo, run.hi) for run in instance.runs),
    )


def _shard_matches(shard: TimeShard, motif: Motif, phi: float):
    """Phase P1 on the shard slice, with output-preserving fused pruning."""
    return list(
        iter_structural_matches(
            shard.graph, motif, phi=phi, temporal_pruning=True
        )
    )


def search_shard(
    shard: TimeShard,
    motif: Motif,
    delta: float,
    phi: float,
    collect: bool = True,
    skip_rule: bool = True,
    prefix_pruning: bool = True,
) -> ShardSearchOutput:
    """Find the shard's owned maximal instances (its slice of Algorithm 1).

    ``delta`` and ``phi`` must be the resolved effective constraints (the
    engine applies motif defaults before dispatch), and ``delta`` must not
    exceed the shard's halo width.
    """
    out = ShardSearchOutput(shard_index=shard.index)
    if shard.graph.num_series == 0:
        return out
    # The p1/p2 spans wrap exactly the Timer blocks feeding
    # p1_seconds/p2_seconds, so span totals reconcile with the merged
    # ShardTimingReport (asserted in tests/obs/test_observed_search.py).
    with _span("p1.match", shard=shard.index), Timer() as t1:
        matches = _shard_matches(shard, motif, phi)
    out.num_matches = len(matches)
    out.p1_seconds = t1.elapsed

    counter = [0]
    if collect:
        def sink(instance: MotifInstance) -> None:
            counter[0] += 1
            out.records.append(_record(instance))
    else:
        def sink(instance: MotifInstance) -> None:
            counter[0] += 1

    with _span("p2.enumerate", shard=shard.index), Timer() as t2:
        _enumeration.find_instances(
            matches,
            delta=delta,
            phi=phi,
            on_instance=sink,
            skip_rule=skip_rule,
            prefix_pruning=prefix_pruning,
            anchor_range=shard.anchor_range,
        )
    out.p2_seconds = t2.elapsed
    out.count = counter[0]
    return out


def count_shard(
    shard: TimeShard,
    motif: Motif,
    delta: float,
    phi: float,
) -> ShardSearchOutput:
    """Count the shard's owned maximal instances without constructing them
    (the memoized :mod:`repro.core.counting` recursion, anchor-filtered)."""
    out = ShardSearchOutput(shard_index=shard.index)
    if shard.graph.num_series == 0:
        return out
    with _span("p1.match", shard=shard.index), Timer() as t1:
        matches = _shard_matches(shard, motif, phi)
    out.num_matches = len(matches)
    out.p1_seconds = t1.elapsed
    with _span("p2.count", shard=shard.index), Timer() as t2:
        out.count = _counting.count_instances(
            matches, delta=delta, phi=phi, anchor_range=shard.anchor_range
        )
    out.p2_seconds = t2.elapsed
    return out


def top_k_shard(
    shard: TimeShard,
    motif: Motif,
    k: int,
    delta: float,
) -> ShardSearchOutput:
    """The shard's k best owned instances by flow.

    Every globally top-k instance is owned by some shard and is therefore
    among that shard's local top-k, so merging the per-shard candidate
    lists and re-ranking yields the exact global answer. The
    ``anchor_range`` restriction is essential here: windows anchored in
    the halo can be truncated by the shard's data boundary, and allowing
    their (spurious) high-flow instances into the heap could displace
    genuine owned candidates.
    """
    out = ShardSearchOutput(shard_index=shard.index)
    if shard.graph.num_series == 0:
        return out
    with _span("p1.match", shard=shard.index), Timer() as t1:
        matches = _shard_matches(shard, motif, 0.0)
    out.num_matches = len(matches)
    out.p1_seconds = t1.elapsed
    with _span("p2.top_k", shard=shard.index), Timer() as t2:
        instances = _topk.top_k_instances(
            matches, k, delta=delta, anchor_range=shard.anchor_range
        )
    out.p2_seconds = t2.elapsed
    out.records = [_record(inst) for inst in instances]
    out.count = len(instances)
    return out


def batch_search_shard(
    shard: TimeShard,
    specs: Sequence[Tuple[int, Motif, float, float]],
    collect: bool = True,
) -> List[ShardSearchOutput]:
    """Run several (motif, δ, φ) configurations over one shard, sharing P1.

    ``specs`` is a list of ``(config_index, motif, delta, phi)`` with
    resolved constraints; configurations whose motifs share a spanning
    path reuse one phase-P1 match list (computed with φ = 0 so it serves
    every φ in the group). The shared P1 time is attributed to the first
    configuration of each topology group; the others report ``p1_seconds
    == 0.0`` — summing per-config timings therefore reflects the real
    total work, exactly the saving the runner exists to exploit.
    """
    outputs: List[ShardSearchOutput] = []
    empty = shard.graph.num_series == 0
    matches_by_path: dict = {}
    for config_index, motif, delta, phi in specs:
        out = ShardSearchOutput(shard_index=shard.index, config_index=config_index)
        if empty:
            outputs.append(out)
            continue
        key = motif.spanning_path
        if key not in matches_by_path:
            with _span("p1.match", shard=shard.index), Timer() as t1:
                # φ = 0: the unpruned match set serves every φ in the group.
                matches_by_path[key] = _shard_matches(shard, motif, 0.0)
            out.p1_seconds = t1.elapsed
        matches = matches_by_path[key]
        out.num_matches = len(matches)

        counter = [0]
        if collect:
            def sink(instance: MotifInstance, _out=out, _counter=counter) -> None:
                _counter[0] += 1
                _out.records.append(_record(instance))
        else:
            def sink(instance: MotifInstance, _out=out, _counter=counter) -> None:
                _counter[0] += 1

        with _span(
            "p2.enumerate", shard=shard.index, config=config_index
        ), Timer() as t2:
            _enumeration.find_instances(
                matches,
                delta=delta,
                phi=phi,
                on_instance=sink,
                anchor_range=shard.anchor_range,
            )
        out.p2_seconds = t2.elapsed
        out.count = counter[0]
        outputs.append(out)
    return outputs


#: Per-process cache of attached shared-memory stores and their graph
#: views, keyed by shm name. Pool workers handle several shard tasks per
#: query; attaching and rebuilding the (zero-copy) graph view once per
#: store amortizes the only non-trivial setup cost of the columnar path.
_ATTACHED: Dict[str, Tuple[ColumnStore, TimeSeriesGraph]] = {}

#: Per-process cache of mmap'd durable segments, keyed by file path —
#: the file-tier twin of :data:`_ATTACHED`. Validation (every CRC) runs
#: once per process on first map; later shard tasks reuse the view.
_MAPPED: Dict[str, Tuple[ColumnStore, TimeSeriesGraph]] = {}


def _attached_graph(shm_name: str) -> TimeSeriesGraph:
    """The columnar graph view of one shared store (cached per process)."""
    entry = _ATTACHED.get(shm_name)
    if entry is None:
        store = ColumnStore.attach(shm_name)
        entry = (store, store.to_graph())
        _ATTACHED[shm_name] = entry
    return entry[1]


def _mapped_graph(path: str) -> TimeSeriesGraph:
    """The columnar graph view of one sealed segment file (cached).

    Workers never quarantine: a corrupt segment raises
    :class:`~repro.resilience.SegmentCorruptionError` back to the
    dispatcher (classified as a task error, not retried into the same
    corruption forever thanks to the retry policy's bounded rounds);
    the *owner* of the store decides about renaming files.
    """
    entry = _MAPPED.get(path)
    if entry is None:
        from repro.graph.segments import open_segment

        store = open_segment(path, quarantine=False)
        entry = (store, store.to_graph())
        _MAPPED[path] = entry
    return entry[1]


def detach_all() -> None:
    """Drop every cached attachment (test hygiene; workers never need it
    — process exit releases the mappings)."""
    for cache in (_ATTACHED, _MAPPED):
        while cache:
            _, (store, graph) = cache.popitem()
            # Free the graph's series views before closing: they hold
            # memoryviews over the store's buffers, and a mapping with
            # live exports cannot be closed.
            del graph
            try:
                store.close()
            except BufferError:  # a shard slice outlives us; OS cleans up
                pass


def run_shard_task(task: Tuple) -> object:
    """Trampoline for executor dispatch: ``(kind, args...) -> output``.

    A single top-level entry point keeps pool submission uniform across
    the search/count/top-k/batch worker kinds.

    The ``"columnar"`` kind is the zero-copy process-backend envelope:
    ``("columnar", shm_name, shard_bounds, inner_kind, args...)``. The
    worker attaches the named shared-memory :class:`ColumnStore` (cached
    per process), re-materializes the shard as memoryview slices of the
    shared buffers, and runs the inner task — the payload that crossed
    the process boundary is a name and five numbers instead of pickled
    event lists.

    The ``"segment"`` kind is the same light-shard envelope over the
    durable tier: ``("segment", file_path, shard_bounds, inner_kind,
    args...)``. The worker mmaps the sealed segment (validated once per
    process, cached in :data:`_MAPPED`) instead of attaching shm — so a
    graph larger than RAM fans out with only its path crossing the
    process boundary, and the OS pages in exactly the ranges each shard
    touches.
    """
    kind, args = task[0], task[1:]
    if kind == "traced":
        return _run_traced(*args)
    if kind == "columnar":
        shm_name, bounds, inner_kind = args[0], args[1], args[2]
        shard = materialize_shard(_attached_graph(shm_name), bounds)
        return run_shard_task((inner_kind, shard) + tuple(args[3:]))
    if kind == "segment":
        path, bounds, inner_kind = args[0], args[1], args[2]
        shard = materialize_shard(_mapped_graph(path), bounds)
        return run_shard_task((inner_kind, shard) + tuple(args[3:]))
    # Chaos hook: a no-op dict lookup unless a fault plan is armed in the
    # environment (tests/resilience). Placed on the unwrapped path so a
    # columnar-enveloped task is subject to exactly one injection.
    if kind in ("search", "count", "top_k", "batch"):
        _faultinject.maybe_inject(args[0].index, kind)
    if kind == "search":
        return search_shard(*args)
    if kind == "count":
        return count_shard(*args)
    if kind == "top_k":
        return top_k_shard(*args)
    if kind == "batch":
        return batch_search_shard(*args)
    raise ValueError(f"unknown shard task kind {kind!r}")


def _run_traced(ctx: Tuple, attrs: Dict, opts: Dict, inner: Tuple) -> Tuple:
    """Run one task under the dispatcher's observability context.

    ``ctx`` is the shipped ``(trace_id, parent_span_id)`` (``(None,
    None)`` when only metrics were active). A *fresh* per-task registry
    and tracer are activated on this thread — thread-local activation
    means concurrent thread-backend tasks never share mutable state —
    and the previous state is restored afterwards, so the serial inline
    path leaves the dispatcher's own registry untouched.

    ``opts`` carries per-task extras; a ``"profile_hz"`` entry arms a
    sampling :class:`~repro.obs.profiler.Profiler` pinned to this thread
    for the task's duration — unless a profiler is already active here
    (the serial inline path, where the dispatcher's own profiler is
    sampling this very thread and a second one would double-count).

    Returns ``("obs", spans, snapshot, profile, inner_result)`` for the
    engine's ``_unwrap_traced`` to stitch, merge, and adopt parent-side.
    """
    trace_id, parent_id = ctx
    registry = _obs_metrics.MetricsRegistry()
    tracer = (
        _tracing.Tracer(trace_id, parent_id) if trace_id is not None else None
    )
    hz = opts.get("profile_hz") if opts else None
    ambient_prof = _obs_profiler.active()
    profiler = (
        _obs_profiler.Profiler(hz=hz)
        if hz and (ambient_prof is None or not ambient_prof.sampling_here)
        else None
    )
    prev_registry = _obs_metrics.activate(registry)
    prev_tracer = _tracing.activate(tracer)
    if profiler is not None:
        profiler.start()
    try:
        if tracer is not None:
            with tracer.span("worker.shard_task", **attrs):
                result = run_shard_task(inner)
        else:
            result = run_shard_task(inner)
    finally:
        if profiler is not None:
            profiler.stop()
        _obs_metrics.activate(prev_registry)
        _tracing.activate(prev_tracer)
    spans = tracer.spans() if tracer is not None else []
    profile = profiler.report.to_dict() if profiler is not None else None
    return ("obs", spans, registry.snapshot(), profile, result)
