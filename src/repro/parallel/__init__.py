"""Parallel partitioned execution of flow-motif search.

The paper's slowest experiments (the Figure 13 scaling sweep, Table 4's
phase-1 runs on Bitcoin/Prosper-sized graphs) are embarrassingly
parallelizable over *time*: every maximal instance lives inside a δ-window
``[a, a + δ]`` anchored at a first-edge event, so splitting the timeline
into shards with a δ-sized halo overlap makes each instance wholly visible
to exactly one owning shard. This package builds on that observation:

* :mod:`repro.parallel.partition` — the δ-overlap **time-range
  partitioner** (:func:`partition_time_range`, :class:`TimeShard`) and the
  anchored-ownership rule that makes sharded output exact;
* :mod:`repro.parallel.worker` — module-level worker functions (search,
  count, top-k, batch) that a :class:`~concurrent.futures.Executor` can
  pickle, plus the ``"columnar"`` zero-copy envelope: process workers
  receive ``(shm_name, shard bounds)``, attach the shared
  :class:`~repro.graph.columnar.ColumnStore` once per process, and slice
  their shard as memoryviews over the shared block;
* :mod:`repro.parallel.merge` — the **deduplicating merger** that rebinds
  shard-local instances onto the parent graph's series and aggregates
  per-shard timings;
* :mod:`repro.parallel.engine` — :class:`ParallelFlowMotifEngine`, a
  drop-in mirror of :class:`~repro.core.engine.FlowMotifEngine`
  (``find_instances`` / ``count_instances`` / ``top_k``) fanning shards out
  over processes, threads, or a serial loop;
* :mod:`repro.parallel.batch` — :class:`BatchRunner`, a multi-motif grid
  evaluator sharing phase-P1 structural matches across same-topology
  (motif, δ, φ) configurations — the paper's own Table 4 observation that
  P1 is δ/φ-independent, exploited across queries.

Quick start
-----------
>>> from repro import InteractionGraph, Motif
>>> from repro.parallel import ParallelFlowMotifEngine
>>> g = InteractionGraph.from_tuples([
...     ("a", "b", 1.0, 5.0), ("b", "c", 2.0, 4.0), ("b", "c", 3.0, 2.0),
... ])
>>> engine = ParallelFlowMotifEngine(g, jobs=1, shards=2)
>>> engine.find_instances(Motif.chain(3, delta=10, phi=3)).count
1
"""

from repro.parallel.batch import BatchRunner, MotifConfig
from repro.parallel.engine import ParallelFlowMotifEngine
from repro.parallel.merge import merge_search_results
from repro.parallel.partition import (
    TimeShard,
    materialize_shard,
    partition_time_range,
)

__all__ = [
    "BatchRunner",
    "MotifConfig",
    "ParallelFlowMotifEngine",
    "TimeShard",
    "materialize_shard",
    "partition_time_range",
    "merge_search_results",
]
