"""The :class:`ParallelFlowMotifEngine` — sharded, multi-worker search.

Mirrors the :class:`~repro.core.engine.FlowMotifEngine` API
(``find_instances`` / ``count_instances`` / ``top_k``) but executes each
query over a δ-overlap time partition (:mod:`repro.parallel.partition`),
fanning the shards out over a worker pool and merging the owned results
(:mod:`repro.parallel.merge`). Output is exactly the serial engine's —
property-tested for arbitrary shard counts in ``tests/parallel``.

>>> from repro import InteractionGraph, Motif
>>> g = InteractionGraph.from_tuples([
...     ("a", "b", 1.0, 5.0), ("b", "c", 2.0, 4.0), ("b", "c", 3.0, 2.0),
... ])
>>> engine = ParallelFlowMotifEngine(g, jobs=2, shards=3, backend="thread")
>>> result = engine.find_instances(Motif.chain(3, delta=10, phi=3))
>>> result.count, result.shard_timings.num_shards
(1, 3)

Backends
--------
``"process"`` (default)
    :class:`concurrent.futures.ProcessPoolExecutor` — true multi-core
    speedup; shard payloads and results must pickle (they do for all
    built-in node types; pass ``backend="thread"`` for exotic ones).
``"thread"``
    :class:`concurrent.futures.ThreadPoolExecutor` — no pickling and no
    fork cost; useful for testing and for C-extension-heavy futures.
``"serial"``
    In-process loop over shards, regardless of ``jobs`` — the
    deterministic reference used by the equivalence tests.

``jobs=1`` always runs the serial loop, so single-job runs are exactly
reproducible without pool nondeterminism.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.engine import SearchResult
from repro.core.instance import MotifInstance
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph
from repro.graph.timeseries import TimeSeriesGraph
from repro.parallel import merge as _merge
from repro.parallel import worker as _worker
from repro.parallel.partition import TimeShard, partition_time_range
from repro.utils.timing import Timer

_BACKENDS = ("process", "thread", "serial")

#: Partitions retained per engine. Each partition holds sliced copies of
#: the graph's event arrays, so the memo is a small LRU rather than
#: unbounded: δ-sweeps touching many distinct halos keep only the most
#: recent few resident.
_PARTITION_CACHE_SIZE = 2


class ParallelFlowMotifEngine:
    """Time-sharded flow-motif search over one interaction network.

    Parameters
    ----------
    graph:
        The raw :class:`InteractionGraph` or its merged
        :class:`TimeSeriesGraph` view.
    jobs:
        Worker count; defaults to ``os.cpu_count()``. ``jobs=1`` runs
        shards serially in-process.
    shards:
        Shard count; defaults to ``jobs``. More shards than jobs gives
        the pool latitude to balance uneven shards.
    backend:
        ``"process"``, ``"thread"`` or ``"serial"`` (see module notes).
    partition_strategy:
        ``"events"`` (load-balanced quantile cuts, default) or
        ``"width"`` (equal-length time intervals).

    Notes
    -----
    Each query partitions the timeline with a halo equal to its effective
    δ (partitions are memoized per (shards, halo, strategy), so δ-sweeps
    à la Figure 9 reuse one partition per δ).
    """

    def __init__(
        self,
        graph: Union[InteractionGraph, TimeSeriesGraph],
        jobs: Optional[int] = None,
        shards: Optional[int] = None,
        backend: str = "process",
        partition_strategy: str = "events",
    ) -> None:
        if isinstance(graph, InteractionGraph):
            self._ts = graph.to_time_series()
        elif isinstance(graph, TimeSeriesGraph):
            self._ts = graph
        else:
            raise TypeError(
                "graph must be an InteractionGraph or TimeSeriesGraph, "
                f"got {type(graph).__name__}"
            )
        if backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.num_shards = max(1, shards if shards is not None else self.jobs)
        self.backend = backend
        self.partition_strategy = partition_strategy
        self._partition_cache: dict = {}
        self._sorted_times: Optional[List[float]] = None

    @property
    def time_series_graph(self) -> TimeSeriesGraph:
        """The underlying merged graph ``G_T``."""
        return self._ts

    # ------------------------------------------------------------------
    # Partitioning and dispatch
    # ------------------------------------------------------------------

    def partition(self, halo: float) -> List[TimeShard]:
        """The memoized δ-overlap partition for a given halo width
        (LRU-bounded: only the most recent few halos stay resident)."""
        key = (self.num_shards, halo, self.partition_strategy)
        cached = self._partition_cache.pop(key, None)
        if cached is not None:
            self._partition_cache[key] = cached  # refresh LRU position
            return cached
        if self._sorted_times is None:
            # The flattened timeline sort is halo-independent: pay it
            # once per engine, not once per δ in a sweep.
            self._sorted_times = sorted(
                t for series in self._ts.all_series() for t in series.times
            )
        shards = partition_time_range(
            self._ts,
            self.num_shards,
            halo,
            strategy=self.partition_strategy,
            sorted_times=self._sorted_times,
        )
        self._partition_cache[key] = shards
        while len(self._partition_cache) > _PARTITION_CACHE_SIZE:
            self._partition_cache.pop(next(iter(self._partition_cache)))
        return shards

    def clear_cache(self) -> None:
        """Drop memoized partitions (e.g. after replacing the graph)."""
        self._partition_cache.clear()
        self._sorted_times = None

    def _dispatch(self, tasks: Sequence[Tuple]) -> List:
        """Run shard tasks on the configured backend, preserving order."""
        if self.jobs == 1 or self.backend == "serial" or len(tasks) <= 1:
            return [_worker.run_shard_task(task) for task in tasks]
        pool_cls = (
            ProcessPoolExecutor if self.backend == "process" else ThreadPoolExecutor
        )
        workers = min(self.jobs, len(tasks))
        with pool_cls(max_workers=workers) as pool:
            return list(pool.map(_worker.run_shard_task, tasks))

    # ------------------------------------------------------------------
    # FlowMotifEngine-mirroring entry points
    # ------------------------------------------------------------------

    def find_instances(
        self,
        motif: Motif,
        delta: Optional[float] = None,
        phi: Optional[float] = None,
        collect: bool = True,
        skip_rule: bool = True,
        prefix_pruning: bool = True,
    ) -> SearchResult:
        """All maximal instances of ``motif`` — sharded Algorithm 1.

        Accepts the same arguments as
        :meth:`repro.core.engine.FlowMotifEngine.find_instances` (minus
        ``use_cache``, which has no sharded meaning) and returns an
        identical instance set; the merged result additionally carries a
        per-shard :class:`~repro.utils.timing.ShardTimingReport`.
        """
        effective_delta = motif.delta if delta is None else delta
        effective_phi = motif.phi if phi is None else phi
        with Timer() as wall:
            shards = self.partition(effective_delta)
            tasks = [
                (
                    "search",
                    shard,
                    motif,
                    effective_delta,
                    effective_phi,
                    collect,
                    skip_rule,
                    prefix_pruning,
                )
                for shard in shards
            ]
            outputs = self._dispatch(tasks)
        return _merge.merge_search_results(
            motif, shards, outputs, self._ts, wall_seconds=wall.elapsed
        )

    def count_instances(
        self,
        motif: Motif,
        delta: Optional[float] = None,
        phi: Optional[float] = None,
    ) -> SearchResult:
        """Count maximal instances without constructing them, sharded."""
        effective_delta = motif.delta if delta is None else delta
        effective_phi = motif.phi if phi is None else phi
        with Timer() as wall:
            shards = self.partition(effective_delta)
            tasks = [
                ("count", shard, motif, effective_delta, effective_phi)
                for shard in shards
            ]
            outputs = self._dispatch(tasks)
        return _merge.merge_search_results(
            motif, shards, outputs, self._ts, wall_seconds=wall.elapsed
        )

    def top_k(
        self,
        motif: Motif,
        k: int,
        delta: Optional[float] = None,
    ) -> List[MotifInstance]:
        """The k maximal instances with the largest flow (Section 5),
        computed as a merge of per-shard top-k candidate lists."""
        effective_delta = motif.delta if delta is None else delta
        shards = self.partition(effective_delta)
        tasks = [
            ("top_k", shard, motif, k, effective_delta) for shard in shards
        ]
        outputs = self._dispatch(tasks)
        return _merge.merge_top_k(motif, shards, outputs, self._ts, k)
