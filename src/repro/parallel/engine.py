"""The :class:`ParallelFlowMotifEngine` — sharded, multi-worker search.

Mirrors the :class:`~repro.core.engine.FlowMotifEngine` API
(``find_instances`` / ``count_instances`` / ``top_k``) but executes each
query over a δ-overlap time partition (:mod:`repro.parallel.partition`),
fanning the shards out over a worker pool and merging the owned results
(:mod:`repro.parallel.merge`). Output is exactly the serial engine's —
property-tested for arbitrary shard counts in ``tests/parallel``.

>>> from repro import InteractionGraph, Motif
>>> g = InteractionGraph.from_tuples([
...     ("a", "b", 1.0, 5.0), ("b", "c", 2.0, 4.0), ("b", "c", 3.0, 2.0),
... ])
>>> engine = ParallelFlowMotifEngine(g, jobs=2, shards=3, backend="thread")
>>> result = engine.find_instances(Motif.chain(3, delta=10, phi=3))
>>> result.count, result.shard_timings.num_shards
(1, 3)

Backends
--------
``"process"`` (default)
    :class:`concurrent.futures.ProcessPoolExecutor` — true multi-core
    speedup. With ``use_shared_memory=True`` (default) the graph is
    exported once into a shared-memory
    :class:`~repro.graph.columnar.ColumnStore` and each worker receives
    only ``(shm_name, shard bounds)`` — zero-copy fan-out; workers
    rebuild their slice as memoryview views over the shared block.
    Results must still pickle (they do for all built-in node types;
    pass ``backend="thread"`` for exotic ones).
``"thread"``
    :class:`concurrent.futures.ThreadPoolExecutor` — no pickling and no
    fork cost; useful for testing and for C-extension-heavy futures.
``"serial"``
    In-process loop over shards, regardless of ``jobs`` — the
    deterministic reference used by the equivalence tests.

``jobs=1`` always runs the serial loop, so single-job runs are exactly
reproducible without pool nondeterminism.
"""

from __future__ import annotations

import logging
import os
import time as _time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.engine import SearchResult
from repro.core.instance import MotifInstance
from repro.core.motif import Motif
from repro.graph.columnar import ColumnStore
from repro.graph.interaction import InteractionGraph
from repro.graph.timeseries import TimeSeriesGraph
from repro.obs import flight as _flight
from repro.obs import metrics as _obs_metrics
from repro.obs import profiler as _profiler
from repro.obs import tracing as _tracing
from repro.parallel import merge as _merge
from repro.parallel import worker as _worker
from repro.parallel.costmodel import ShardCostModel
from repro.parallel.partition import (
    TimeShard,
    materialize_shard,
    partition_time_range,
)
from repro.resilience.retry import (
    DispatchReport,
    RetryPolicy,
    ShardExecutionError,
    ShardTimeoutError,
)
from repro.utils.timing import Timer

LOG = logging.getLogger("repro.parallel.engine")

_BACKENDS = ("process", "thread", "serial")

#: Graceful-degradation order: when a backend exhausts its retries, the
#: dispatcher falls through to the next entry — ending at "serial", which
#: shares the caller's process and therefore cannot lose workers.
_DEGRADATION_CHAIN = {
    "process": ("process", "thread", "serial"),
    "thread": ("thread", "serial"),
    "serial": ("serial",),
}

#: Partitions retained per engine. Each partition holds sliced copies of
#: the graph's event arrays, so the memo is a small LRU rather than
#: unbounded: δ-sweeps touching many distinct halos keep only the most
#: recent few resident.
_PARTITION_CACHE_SIZE = 2


class ParallelFlowMotifEngine:
    """Time-sharded flow-motif search over one interaction network.

    Parameters
    ----------
    graph:
        The raw :class:`InteractionGraph` or its merged
        :class:`TimeSeriesGraph` view.
    jobs:
        Worker count; defaults to ``os.cpu_count()``. ``jobs=1`` runs
        shards serially in-process.
    shards:
        Shard count; defaults to ``jobs``. More shards than jobs gives
        the pool latitude to balance uneven shards.
    backend:
        ``"process"``, ``"thread"`` or ``"serial"`` (see module notes).
    partition_strategy:
        ``"events"`` (load-balanced quantile cuts, default) or
        ``"width"`` (equal-length time intervals).
    use_shared_memory:
        Process backend only: export the graph once into a shared-memory
        :class:`~repro.graph.columnar.ColumnStore` and ship workers
        ``(shm_name, shard bounds)`` instead of pickled series (default
        True). Disable to fall back to pickled shard slices, e.g. on
        platforms without POSIX shared memory. Graphs whose node ids are
        not ``int``/``str`` fall back automatically.
    retry_policy:
        Fault-tolerance knobs for shard dispatch (see
        :class:`repro.resilience.RetryPolicy`): per-round shard timeout,
        bounded retries with deterministic backoff, and whether the
        engine may degrade ``process → thread → serial`` when a backend
        keeps failing. The default policy retries twice per backend and
        degrades; shard tasks are pure functions of their payload, so a
        retried or degraded dispatch merges to output identical to an
        undisturbed run. The :attr:`last_dispatch` report records what
        happened.

    Notes
    -----
    Each query partitions the timeline with a halo equal to its effective
    δ (partitions are memoized per (shards, halo, strategy), so δ-sweeps
    à la Figure 9 reuse one partition per δ).

    A zero-copy engine owns one shared-memory block for its graph; it is
    created lazily on the first process fan-out, reused by every later
    query, and removed by :meth:`close` (also wired to garbage
    collection, and to ``with ParallelFlowMotifEngine(...) as engine:``).
    """

    def __init__(
        self,
        graph: Union[InteractionGraph, TimeSeriesGraph],
        jobs: Optional[int] = None,
        shards: Optional[int] = None,
        backend: str = "process",
        partition_strategy: str = "events",
        use_shared_memory: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        cost_model: Optional[ShardCostModel] = None,
    ) -> None:
        if isinstance(graph, InteractionGraph):
            self._ts = graph.to_time_series()
        elif isinstance(graph, TimeSeriesGraph):
            self._ts = graph
        else:
            raise TypeError(
                "graph must be an InteractionGraph or TimeSeriesGraph, "
                f"got {type(graph).__name__}"
            )
        if backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.num_shards = max(1, shards if shards is not None else self.jobs)
        self.backend = backend
        self.partition_strategy = partition_strategy
        # Zero-copy fan-out only pays off (and only applies) when shard
        # tasks actually cross a process boundary. Graphs a ColumnStore
        # cannot hold bit-exactly (exotic node ids, values not exact in
        # float64) are detected when the export is first attempted and
        # flip this flag back off — see _shard_tasks.
        self._zero_copy = (
            use_shared_memory and backend == "process" and self.jobs > 1
        )
        self._export: Optional[ColumnStore] = None
        self._export_owned = False
        self._partition_cache: dict = {}
        self._sorted_times: Optional[List[float]] = None
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        #: Fault/retry/degradation report of the most recent dispatch.
        self.last_dispatch: Optional[DispatchReport] = None
        #: Optional cost model for adaptive (cost-balanced) sharding:
        #: fed by find/count timings, consulted by :meth:`partition`.
        self.cost_model = cost_model
        # Arm the flight recorder when REPRO_FLIGHT_DIR names a bundle
        # directory — one env read; a no-op in the common case.
        _flight.maybe_install_from_env()

    @property
    def time_series_graph(self) -> TimeSeriesGraph:
        """The underlying merged graph ``G_T``."""
        return self._ts

    # ------------------------------------------------------------------
    # Partitioning and dispatch
    # ------------------------------------------------------------------

    def partition(self, halo: float) -> List[TimeShard]:
        """The memoized δ-overlap partition for a given halo width
        (LRU-bounded: only the most recent few halos stay resident).

        With a ready :attr:`cost_model`, cut points come from the
        model's cost-weighted quantiles instead of the raw event
        quantiles; the model's version is part of the memo key, so
        fresher observations transparently invalidate stale partitions.
        """
        model = self.cost_model
        model_version = (
            model.version if model is not None and model.ready else 0
        )
        key = (self.num_shards, halo, self.partition_strategy, model_version)
        cached = self._partition_cache.pop(key, None)
        if cached is not None:
            self._partition_cache[key] = cached  # refresh LRU position
            return cached
        if self._sorted_times is None:
            # The flattened timeline sort is halo-independent: pay it
            # once per engine, not once per δ in a sweep.
            self._sorted_times = sorted(
                t for series in self._ts.all_series() for t in series.times
            )
        cuts = (
            model.cut_points(self._sorted_times, self.num_shards)
            if model_version
            else None
        )
        shards = partition_time_range(
            self._ts,
            self.num_shards,
            halo,
            strategy=self.partition_strategy,
            sorted_times=self._sorted_times,
            # Zero-copy mode keeps parent-side shards light (bounds +
            # rebinding offsets, no sliced copies): workers re-slice
            # their own views of the shared columnar store.
            materialize=not self._zero_copy,
            cut_points=cuts,
        )
        self._partition_cache[key] = shards
        while len(self._partition_cache) > _PARTITION_CACHE_SIZE:
            self._partition_cache.pop(next(iter(self._partition_cache)))
        return shards

    def clear_cache(self) -> None:
        """Drop memoized partitions (e.g. after replacing the graph)."""
        self._partition_cache.clear()
        self._sorted_times = None
        self.close()

    # ------------------------------------------------------------------
    # Shared-memory export lifecycle (zero-copy process fan-out)
    # ------------------------------------------------------------------

    def _shared_store(self) -> ColumnStore:
        """The engine's shared-memory export, created on first use.

        A graph already backed by a shared :class:`ColumnStore` (e.g.
        ``ColumnStore.attach(name).to_graph()``) is reused as-is — no
        second copy, and the engine does not take ownership.
        """
        if self._export is None:
            base = getattr(self._ts, "_column_store", None)
            if base is not None and base.shm_name is not None:
                self._export = base
                self._export_owned = False
            else:
                store = (
                    base
                    if base is not None
                    else ColumnStore.from_graph(self._ts)
                )
                self._export = store.to_shared()
                self._export_owned = True
        return self._export

    def close(self) -> None:
        """Release the shared-memory export (if this engine owns one).

        Queries after ``close()`` re-export lazily; calling it twice is
        safe.
        """
        export, self._export = self._export, None
        if export is not None and self._export_owned:
            self._export_owned = False
            try:
                export.close(unlink=True)
            except BufferError:
                # A live view pins the mapping, but close(unlink=True)
                # unlinks the name *before* closing, so the segment is
                # already gone from the system; only our mapping lingers
                # until the views die. Logged, not raised: callers
                # closing an engine should not crash on a borrowed view.
                LOG.debug(
                    "shm export %s unlinked but still mapped by live views",
                    getattr(export, "shm_name", "<unknown>"),
                )

    def __enter__(self) -> "ParallelFlowMotifEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except BaseException as exc:  # noqa: BLE001 - __del__ must not raise
            # A leaked shared-memory export is exactly the failure the
            # resilience layer exists to catch, so classify and log it
            # instead of swallowing it; raising from __del__ would only
            # produce an unraisable-exception warning anyway. The
            # registry's atexit hook still reclaims the segment.
            try:
                LOG.warning(
                    "failed to release engine resources in __del__ "
                    "(%s: %s); shm cleanup deferred to the exit hooks",
                    type(exc).__name__,
                    exc,
                )
            except Exception:
                pass  # logging machinery itself torn down at interpreter exit

    def _shard_tasks(
        self, shards: Sequence[TimeShard], kind: str, *args
    ) -> List[Tuple]:
        """Wrap one inner task per shard in the backend's payload form.

        Zero-copy mode envelopes the inner task as ``("columnar",
        shm_name, shard.bounds, kind, *args)`` — the only per-worker
        payload is the shared-memory name and five numbers. A graph
        backed by a durable sealed segment
        (:class:`~repro.graph.segments.SegmentColumnStore`) ships
        ``("segment", path, shard.bounds, kind, *args)`` instead:
        workers mmap the file themselves, so no shm export is ever
        created and graphs larger than RAM fan out by path. Other modes
        ship the materialized shard inline: ``(kind, shard, *args)``.

        A single shard never leaves this process (``_dispatch`` runs it
        inline), so the envelope — and the shared-memory export it would
        force — is skipped. A graph the columnar store cannot hold
        bit-exactly (exotic node ids, values not exact in float64) is
        detected on the first export attempt and permanently flips the
        engine to the pickled transport — one validation scan, no
        query-time failure.

        Light shards reaching the inline/pickled path are materialized
        here, list-backed (safe to pickle), and cached in place so
        repeat queries on the same partition pay the copy once.
        """
        if self._zero_copy and len(shards) > 1:
            base = getattr(self._ts, "_column_store", None)
            segment_path = getattr(base, "path", None)
            if segment_path is not None:
                return [
                    ("segment", str(segment_path), shard.bounds, kind) + args
                    for shard in shards
                ]
            try:
                name = self._shared_store().shm_name
            except (TypeError, ValueError, OSError):
                # TypeError/ValueError: the graph cannot live in a
                # ColumnStore bit-exactly (exotic node ids, values not
                # exact in float64). OSError: shared memory itself is
                # unavailable or too small (e.g. a container's 64 MB
                # /dev/shm). Either way the pickled transport works.
                self._zero_copy = False
                self._partition_cache.clear()
            else:
                return [
                    ("columnar", name, shard.bounds, kind) + args
                    for shard in shards
                ]
        for shard in shards:
            if shard.graph is None:
                shard.graph = materialize_shard(
                    self._ts, shard.bounds, zero_copy=False
                ).graph
        return [(kind, shard) + args for shard in shards]

    def _wrap_traced(self, tasks: Sequence[Tuple]) -> Sequence[Tuple]:
        """Envelope tasks with the caller's observability context.

        When a tracer, metrics registry, or profiler is active on the
        dispatching thread, each task becomes ``("traced", (trace_id,
        parent_span_id), attrs, opts, inner_task)``: the worker
        trampoline activates a fresh registry/tracer around the inner
        task — arming a per-task sampling profiler when ``opts`` ships a
        ``profile_hz`` — and ships spans + snapshot + profile back (see
        :func:`repro.parallel.worker.run_shard_task`). With
        observability off, tasks pass through untouched — the envelope,
        the per-task registries, and the return wrapping all vanish.
        """
        tracer = _tracing.active()
        prof = _profiler.active()
        if tracer is None and _obs_metrics.active() is None and prof is None:
            return tasks
        ctx = tracer.context() if tracer is not None else (None, None)
        opts = {"profile_hz": prof.hz} if prof is not None else {}
        return [
            ("traced", ctx, {"shard": index}, opts, task)
            for index, task in enumerate(tasks)
        ]

    def _unwrap_traced(self, results: List) -> List:
        """Fold worker observability payloads back into this thread.

        Worker results arrive as ``("obs", spans, snapshot, profile,
        inner)``: spans are adopted by the active tracer (stitching the
        worker subtrees under the dispatching span via their shipped
        parent ids), snapshots merge associatively into the active
        registry, and profiles fold into the active profiler's report.
        Results from retried attempts that ultimately failed never reach
        this point, so each shard contributes exactly one snapshot.
        """
        tracer = _tracing.active()
        registry = _obs_metrics.active()
        prof = _profiler.active()
        recorder = _flight.installed()
        unwrapped: List = []
        for item in results:
            if isinstance(item, tuple) and len(item) == 5 and item[0] == "obs":
                _, spans, snapshot, profile, inner = item
                if tracer is not None and spans:
                    tracer.add_spans(spans)
                if registry is not None and snapshot:
                    registry.merge(snapshot)
                if prof is not None and profile:
                    prof.adopt(profile)
                if recorder is not None and snapshot:
                    recorder.note_metrics(snapshot)
                unwrapped.append(inner)
            else:
                unwrapped.append(item)
        return unwrapped

    def _dispatch(self, tasks: Sequence[Tuple]) -> List:
        """Run shard tasks on the configured backend, preserving order.

        Fault-tolerant: failed or timed-out shards are retried per
        :attr:`retry_policy` (fresh pool each round — a ``BrokenExecutor``
        poisons its pool), and when a backend exhausts its retries the
        dispatcher degrades along ``process → thread → serial``. Shard
        tasks are pure, so a shard that succeeds on any round/backend
        contributes exactly the output it would have produced first try,
        and the merge stays identical to serial. Every failure is
        classified and logged into :attr:`last_dispatch`; if even the
        serial step cannot complete a shard (or degradation is disabled),
        :class:`~repro.resilience.ShardExecutionError` surfaces the whole
        fault history.
        """
        report = DispatchReport(backend=self.backend, final_backend=self.backend)
        self.last_dispatch = report
        tasks = self._wrap_traced(tasks)
        if self.jobs == 1 or self.backend == "serial" or len(tasks) <= 1:
            report.backend = report.final_backend = "serial"
            return self._unwrap_traced(
                [_worker.run_shard_task(task) for task in tasks]
            )
        policy = self.retry_policy
        results: List = [None] * len(tasks)
        pending = list(range(len(tasks)))
        chain = _DEGRADATION_CHAIN[self.backend]
        for step, backend in enumerate(chain):
            report.final_backend = backend
            if step > 0:
                report.record_degradation(backend)
                LOG.warning(
                    "degrading dispatch to %r backend (%d shard(s) "
                    "unresolved after %s)",
                    backend,
                    len(pending),
                    report.faults[-1] if report.faults else "failures",
                )
            for round_no in range(policy.max_retries + 1):
                if round_no > 0:
                    report.record_retry_round(backend)
                    _time.sleep(policy.delay_for(round_no - 1, token=step))
                pending = self._run_round(
                    tasks, results, pending, backend, round_no, report
                )
                if not pending:
                    return self._unwrap_traced(results)
            if not policy.degrade:
                break
        raise ShardExecutionError(
            f"shards {pending} failed on every backend "
            f"({' -> '.join(chain if policy.degrade else chain[:1])}) "
            f"after {policy.max_retries} retries each; fault history: "
            f"{'; '.join(str(f) for f in report.faults)}",
            faults=report.faults,
        )

    def _run_round(
        self,
        tasks: Sequence[Tuple],
        results: List,
        pending: List[int],
        backend: str,
        round_no: int,
        report: DispatchReport,
    ) -> List[int]:
        """One dispatch round over the still-pending shards.

        Fills ``results`` in place and returns the shard indices that
        failed this round (classified and recorded on the way).
        """
        if backend == "serial":
            failed: List[int] = []
            for index in pending:
                try:
                    results[index] = _worker.run_shard_task(tasks[index])
                except Exception as exc:
                    report.record(index, backend, round_no, exc)
                    failed.append(index)
            return failed
        pool_cls = (
            ProcessPoolExecutor if backend == "process" else ThreadPoolExecutor
        )
        workers = min(self.jobs, len(pending))
        policy = self.retry_policy
        deadline = (
            _time.monotonic() + policy.timeout
            if policy.timeout is not None
            else None
        )
        failed = []
        pool = pool_cls(max_workers=workers)
        try:
            futures = {
                index: pool.submit(_worker.run_shard_task, tasks[index])
                for index in pending
            }
            for index, future in futures.items():
                try:
                    if deadline is None:
                        results[index] = future.result()
                    else:
                        remaining = deadline - _time.monotonic()
                        if remaining <= 0:
                            raise ShardTimeoutError(
                                f"shard {index} unfinished at the round's "
                                f"{policy.timeout}s deadline"
                            )
                        results[index] = future.result(timeout=remaining)
                except FuturesTimeoutError:
                    report.record(
                        index,
                        backend,
                        round_no,
                        ShardTimeoutError(
                            f"shard {index} unfinished at the round's "
                            f"{policy.timeout}s deadline"
                        ),
                    )
                    failed.append(index)
                except Exception as exc:
                    report.record(index, backend, round_no, exc)
                    failed.append(index)
        finally:
            # Fresh pool per round: don't wait on stragglers from a
            # timed-out round, and never reuse a possibly-broken pool.
            pool.shutdown(wait=False, cancel_futures=True)
        return failed

    # ------------------------------------------------------------------
    # FlowMotifEngine-mirroring entry points
    # ------------------------------------------------------------------

    def find_instances(
        self,
        motif: Motif,
        delta: Optional[float] = None,
        phi: Optional[float] = None,
        collect: bool = True,
        skip_rule: bool = True,
        prefix_pruning: bool = True,
    ) -> SearchResult:
        """All maximal instances of ``motif`` — sharded Algorithm 1.

        Accepts the same arguments as
        :meth:`repro.core.engine.FlowMotifEngine.find_instances` (minus
        ``use_cache``, which has no sharded meaning) and returns an
        identical instance set; the merged result additionally carries a
        per-shard :class:`~repro.utils.timing.ShardTimingReport`.
        """
        effective_delta = motif.delta if delta is None else delta
        effective_phi = motif.phi if phi is None else phi
        with _tracing.span(
            "query.find_instances",
            motif=str(motif),
            delta=effective_delta,
            backend=self.backend,
            shards=self.num_shards,
        ):
            with Timer() as wall:
                shards = self.partition(effective_delta)
                tasks = self._shard_tasks(
                    shards,
                    "search",
                    motif,
                    effective_delta,
                    effective_phi,
                    collect,
                    skip_rule,
                    prefix_pruning,
                )
                outputs = self._dispatch(tasks)
            result = _merge.merge_search_results(
                motif, shards, outputs, self._ts, wall_seconds=wall.elapsed
            )
            self._observe_costs(shards, result)
            return result

    def count_instances(
        self,
        motif: Motif,
        delta: Optional[float] = None,
        phi: Optional[float] = None,
    ) -> SearchResult:
        """Count maximal instances without constructing them, sharded."""
        effective_delta = motif.delta if delta is None else delta
        effective_phi = motif.phi if phi is None else phi
        with _tracing.span(
            "query.count_instances",
            motif=str(motif),
            delta=effective_delta,
            backend=self.backend,
            shards=self.num_shards,
        ):
            with Timer() as wall:
                shards = self.partition(effective_delta)
                tasks = self._shard_tasks(
                    shards, "count", motif, effective_delta, effective_phi
                )
                outputs = self._dispatch(tasks)
            result = _merge.merge_search_results(
                motif, shards, outputs, self._ts, wall_seconds=wall.elapsed
            )
            self._observe_costs(shards, result)
            return result

    def _observe_costs(
        self, shards: Sequence[TimeShard], result: SearchResult
    ) -> None:
        """Feed the cost model one run's shard timings (no-op without one)."""
        model = self.cost_model
        if model is None or result.shard_timings is None:
            return
        if self._sorted_times is None or len(shards) <= 1:
            return
        model.observe(shards, result.shard_timings, self._sorted_times)

    def top_k(
        self,
        motif: Motif,
        k: int,
        delta: Optional[float] = None,
    ) -> List[MotifInstance]:
        """The k maximal instances with the largest flow (Section 5),
        computed as a merge of per-shard top-k candidate lists."""
        effective_delta = motif.delta if delta is None else delta
        with _tracing.span(
            "query.top_k",
            motif=str(motif),
            k=k,
            backend=self.backend,
            shards=self.num_shards,
        ):
            shards = self.partition(effective_delta)
            tasks = self._shard_tasks(
                shards, "top_k", motif, k, effective_delta
            )
            outputs = self._dispatch(tasks)
            return _merge.merge_top_k(motif, shards, outputs, self._ts, k)
