"""Merging shard outputs back into engine-level results.

The merger performs three jobs:

1. **Rebinding** — shard workers return instances as shard-local
   ``(vertex_map, (lo, hi) per edge)`` records; rebinding maps the index
   ranges onto the parent graph's own :class:`EdgeSeries` via the slice
   offsets recorded at partition time, so merged instances are
   indistinguishable from serially-found ones (``is_valid_instance`` and
   ``is_maximal`` hold against the parent graph).
2. **Deduplication** — the anchored-ownership rule makes every instance
   owned by exactly one shard, so duplicates cannot arise from a correct
   partition; the merger still drops canonical-key duplicates as a safety
   net against overlapping custom partitions.
3. **Aggregation** — per-shard match counts and P1/P2 timings are summed
   into the merged :class:`~repro.core.engine.SearchResult` and kept
   individually in its :class:`~repro.utils.timing.ShardTimingReport`.

Merged instance order is deterministic (sorted by start time, end time,
then vertex map) regardless of shard scheduling, so parallel runs are
reproducible across backends and job counts.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.engine import SearchResult
from repro.core.instance import MotifInstance, Run
from repro.core.motif import Motif
from repro.graph.timeseries import TimeSeriesGraph
from repro.obs import flight as _flight
from repro.obs import metrics as _metrics
from repro.parallel.partition import TimeShard
from repro.parallel.worker import InstanceRecord, ShardSearchOutput
from repro.utils.timing import ShardTiming, ShardTimingReport


def rebind_record(
    record: InstanceRecord,
    motif: Motif,
    shard: TimeShard,
    parent: TimeSeriesGraph,
) -> MotifInstance:
    """Rebind one shard-local record onto the parent graph's series."""
    vertex_map, ranges = record
    runs: List[Run] = []
    for edge_index, (lo, hi) in enumerate(ranges):
        m_src, m_dst = motif.edge(edge_index)
        pair = (vertex_map[m_src], vertex_map[m_dst])
        series = parent.series(*pair)
        if series is None:
            raise ValueError(
                f"shard {shard.index} produced an instance on pair {pair} "
                "absent from the parent graph"
            )
        offset = shard.offsets[pair]
        runs.append(Run(series, lo + offset, hi + offset))
    return MotifInstance(motif, vertex_map, runs)


def _instance_sort_key(instance: MotifInstance) -> Tuple:
    """Deterministic, shard-scheduling-independent ordering key."""
    return (
        instance.start_time,
        instance.end_time,
        tuple(repr(v) for v in instance.vertex_map),
        tuple((run.lo, run.hi) for run in instance.runs),
    )


def merge_search_results(
    motif: Motif,
    shards: Sequence[TimeShard],
    outputs: Sequence[ShardSearchOutput],
    parent: TimeSeriesGraph,
    wall_seconds: float = 0.0,
) -> SearchResult:
    """Combine per-shard outputs into one :class:`SearchResult`.

    Parameters
    ----------
    motif:
        The searched motif (becomes the merged result's motif).
    shards:
        The partition the outputs were produced from (indexable by
        ``output.shard_index``).
    outputs:
        One :class:`ShardSearchOutput` per shard, any order.
    parent:
        The unsharded time-series graph instances are rebound onto.
    wall_seconds:
        Elapsed fan-out/merge time measured by the caller, recorded on the
        timing report.
    """
    by_index: Dict[int, TimeShard] = {s.index: s for s in shards}
    result = SearchResult(motif=motif)
    timings: List[ShardTiming] = []
    instances: List[MotifInstance] = []
    seen: set = set()
    duplicates = 0
    for output in sorted(outputs, key=lambda o: o.shard_index):
        shard = by_index[output.shard_index]
        for record in output.records:
            instance = rebind_record(record, motif, shard, parent)
            key = instance.canonical_key()
            if key in seen:
                duplicates += 1
                continue
            seen.add(key)
            instances.append(instance)
        result.num_matches += output.num_matches
        result.p1_seconds += output.p1_seconds
        result.p2_seconds += output.p2_seconds
        timings.append(
            ShardTiming(
                shard_index=output.shard_index,
                p1_seconds=output.p1_seconds,
                p2_seconds=output.p2_seconds,
                num_matches=output.num_matches,
                num_instances=output.count,
            )
        )
    instances.sort(key=_instance_sort_key)
    result.instances = instances
    result.count = sum(o.count for o in outputs) - duplicates
    result.shard_timings = ShardTimingReport(
        shards=timings, wall_seconds=wall_seconds
    )
    reg = _metrics.active()
    if reg is not None:
        reg.counter("p1.matches").inc(result.num_matches)
        reg.counter("p2.instances").inc(result.count)
        reg.gauge("parallel.shard_imbalance_ratio").set(
            result.shard_timings.imbalance_ratio
        )
        reg.gauge("parallel.num_shards").set(len(timings))
    recorder = _flight.installed()
    if recorder is not None:
        # A merge summary in the ring buffer gives post-mortem bundles
        # the last-known-good shape of the computation (a duplicate
        # count > 0 here is the first symptom of a bad partition).
        recorder.note(
            "merge",
            num_shards=len(timings),
            num_matches=result.num_matches,
            num_instances=result.count,
            duplicates=duplicates,
            imbalance_ratio=result.shard_timings.imbalance_ratio,
        )
    return result


def merge_top_k(
    motif: Motif,
    shards: Sequence[TimeShard],
    outputs: Sequence[ShardSearchOutput],
    parent: TimeSeriesGraph,
    k: int,
) -> List[MotifInstance]:
    """Re-rank per-shard top-k candidate lists into the global top-k.

    Correctness: each globally top-k instance is owned by exactly one
    shard and therefore appears in that shard's local top-k candidates,
    so the union of candidates contains the global answer. Ties on flow
    are broken by the deterministic merge order (start time, end time,
    vertex map), which may differ from the serial engine's insertion-order
    tie-break — the returned *flows* always agree.
    """
    by_index: Dict[int, TimeShard] = {s.index: s for s in shards}
    candidates: List[MotifInstance] = []
    seen: set = set()
    for output in sorted(outputs, key=lambda o: o.shard_index):
        shard = by_index[output.shard_index]
        for record in output.records:
            instance = rebind_record(record, motif, shard, parent)
            key = instance.canonical_key()
            if key in seen:
                continue
            seen.add(key)
            candidates.append(instance)
    candidates.sort(key=lambda inst: (-inst.flow,) + _instance_sort_key(inst))
    return candidates[:k]
