"""Multi-motif batch evaluation with cross-query phase-P1 sharing.

Table 4 of the paper observes that phase P1 (structural matching) is
independent of δ and φ; the Figure 9/10 sweeps therefore pay it once per
motif *shape* and vary only phase P2. :class:`BatchRunner` lifts that
saving to whole grids of ``(motif, δ, φ)`` configurations: configurations
whose motifs share a spanning path form a *topology group* that computes
structural matches exactly once — per shard when running sharded, once
globally when running serially.

>>> from repro import InteractionGraph, Motif
>>> g = InteractionGraph.from_tuples([
...     ("a", "b", 1.0, 5.0), ("b", "c", 2.0, 4.0), ("b", "c", 3.0, 2.0),
... ])
>>> runner = BatchRunner(g, jobs=1)
>>> results = runner.run([
...     MotifConfig(Motif.chain(3, delta=10, phi=0)),
...     MotifConfig(Motif.chain(3, delta=10, phi=0), delta=0.5),
...     MotifConfig(Motif.chain(3, delta=10, phi=0), phi=100.0),
... ])
>>> [r.count for r in results]
[1, 0, 0]
>>> runner.last_stats["num_topology_groups"]
1
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.engine import SearchResult
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph
from repro.graph.timeseries import TimeSeriesGraph
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.parallel import merge as _merge
from repro.parallel import worker as _worker
from repro.parallel.costmodel import ShardCostModel
from repro.parallel.engine import ParallelFlowMotifEngine
from repro.utils.timing import Timer


@dataclass(frozen=True)
class MotifConfig:
    """One cell of a batch grid: a motif with optional δ/φ overrides.

    ``delta``/``phi`` default to the motif's own constraints, mirroring
    the per-call overrides of the engines.
    """

    motif: Motif
    delta: Optional[float] = None
    phi: Optional[float] = None

    @property
    def effective_delta(self) -> float:
        """The δ this configuration searches with."""
        return self.motif.delta if self.delta is None else self.delta

    @property
    def effective_phi(self) -> float:
        """The φ this configuration searches with."""
        return self.motif.phi if self.phi is None else self.phi


def _coerce_config(item: Union[MotifConfig, Motif, Tuple]) -> MotifConfig:
    """Accept MotifConfig, bare Motif, or (motif, delta, phi) tuples."""
    if isinstance(item, MotifConfig):
        return item
    if isinstance(item, Motif):
        return MotifConfig(item)
    if isinstance(item, tuple) and item and isinstance(item[0], Motif):
        motif = item[0]
        delta = item[1] if len(item) > 1 else None
        phi = item[2] if len(item) > 2 else None
        return MotifConfig(motif, delta, phi)
    raise TypeError(
        "batch configurations must be MotifConfig, Motif, or "
        f"(motif, delta[, phi]) tuples, got {type(item).__name__}"
    )


class BatchRunner:
    """Evaluate a grid of (motif, δ, φ) configurations over one graph.

    Parameters
    ----------
    graph:
        The interaction multigraph or its time-series view.
    jobs:
        Worker count. With one shard (the ``jobs=1`` default) the grid
        runs serially with a single shared phase-P1 pass per topology
        group; with several shards the timeline is partitioned once
        (halo = the grid's maximum δ) and fanned out, each worker
        sharing P1 across the whole grid for its shard. ``jobs=1`` with
        an explicit ``shards`` runs the sharded path in-process
        (determinism testing, as in the engine).
    shards, backend:
        As in :class:`~repro.parallel.engine.ParallelFlowMotifEngine`.
    adaptive:
        Observability-driven adaptive sharding: the sharded path runs
        the grid in two waves — a probe wave (first configuration, on
        the default quantile partition) whose measured per-shard
        timings feed the :class:`~repro.parallel.costmodel.
        ShardCostModel`, then the remaining configurations on a
        cost-balanced re-cut of the timeline. Output stays
        multiset-identical to serial (the δ-halo ownership argument
        holds for any cuts); only wall-clock balance changes.
    cost_model:
        An explicit model to (re)use across runners — e.g. one warmed
        by earlier runs on the same graph. Implies ``adaptive``.

    Attributes
    ----------
    last_stats:
        Dict describing the previous :meth:`run`: configuration count,
        topology-group count, total P1/P2 seconds, wall time, shard
        imbalance, and — on adaptive runs — the probe-wave imbalance
        (``imbalance_before``), the adapted-wave imbalance
        (``imbalance_after``) and the model's prediction error.
    """

    def __init__(
        self,
        graph: Union[InteractionGraph, TimeSeriesGraph],
        jobs: int = 1,
        shards: Optional[int] = None,
        backend: str = "process",
        partition_strategy: str = "events",
        adaptive: bool = False,
        cost_model: Optional[ShardCostModel] = None,
    ) -> None:
        if adaptive and cost_model is None:
            cost_model = ShardCostModel()
        self.adaptive = cost_model is not None
        self.cost_model = cost_model
        # Compose the parallel engine: one source of truth for graph
        # coercion, backend validation, dispatch, and partition caching.
        self._engine = ParallelFlowMotifEngine(
            graph,
            jobs=jobs,
            shards=shards,
            backend=backend,
            partition_strategy=partition_strategy,
            cost_model=cost_model,
        )
        self._ts = self._engine.time_series_graph
        self.last_stats: Dict[str, float] = {}

    @property
    def jobs(self) -> int:
        """Worker count (delegated to the underlying parallel engine)."""
        return self._engine.jobs

    @property
    def num_shards(self) -> int:
        """Shard count (delegated to the underlying parallel engine)."""
        return self._engine.num_shards

    @property
    def backend(self) -> str:
        """Execution backend (delegated to the underlying parallel engine)."""
        return self._engine.backend

    def run(
        self,
        configs: Sequence[Union[MotifConfig, Motif, Tuple]],
        collect: bool = True,
    ) -> List[SearchResult]:
        """Search every configuration; results align with ``configs``.

        With ``collect=False`` instances are counted but not materialized
        (the counts remain exact), which keeps huge grids memory-bound
        only by their result counts.
        """
        resolved = [_coerce_config(c) for c in configs]
        self._adaptive_stats: Dict[str, float] = {}
        if not resolved:
            self.last_stats = {
                "num_configs": 0,
                "num_topology_groups": 0,
                "p1_seconds": 0.0,
                "p2_seconds": 0.0,
                "wall_seconds": 0.0,
                "shard_imbalance_ratio": 1.0,
            }
            return []
        with _tracing.span(
            "query.batch", configs=len(resolved), shards=self.num_shards
        ):
            with Timer() as wall:
                if self.num_shards == 1:
                    results = self._run_serial(resolved, collect)
                else:
                    results = self._run_sharded(resolved, collect)
        groups = {c.motif.spanning_path for c in resolved}
        # Shard imbalance (max/mean shard wall time) of the batch: the
        # worst ratio across the grid — 1.0 on the serial path, where no
        # sharding (and hence no imbalance) exists.
        imbalance = max(
            (
                r.shard_timings.imbalance_ratio
                for r in results
                if r.shard_timings is not None
            ),
            default=1.0,
        )
        self.last_stats = {
            "num_configs": len(resolved),
            "num_topology_groups": len(groups),
            "p1_seconds": sum(r.p1_seconds for r in results),
            "p2_seconds": sum(r.p2_seconds for r in results),
            "wall_seconds": wall.elapsed,
            "shard_imbalance_ratio": imbalance,
        }
        self.last_stats.update(self._adaptive_stats)
        return results

    # ------------------------------------------------------------------
    # Serial path: one shared P1 pass per topology group
    # ------------------------------------------------------------------

    def _run_serial(
        self, configs: Sequence[MotifConfig], collect: bool
    ) -> List[SearchResult]:
        from repro.core import enumeration as _enumeration
        from repro.core.instance import MotifInstance
        from repro.core.matching import find_structural_matches

        matches_by_path: dict = {}
        p1_charged: set = set()
        p1_by_path: Dict[Tuple, float] = {}
        results: List[SearchResult] = []
        for config in configs:
            motif = config.motif
            key = motif.spanning_path
            if key not in matches_by_path:
                with Timer() as t1:
                    matches_by_path[key] = find_structural_matches(self._ts, motif)
                p1_by_path[key] = t1.elapsed
            matches = matches_by_path[key]
            result = SearchResult(motif=motif, num_matches=len(matches))
            if key not in p1_charged:
                # P1 is δ/φ-independent (Table 4): charged to the group's
                # first configuration, shared by the rest.
                result.p1_seconds = p1_by_path[key]
                p1_charged.add(key)
            counter = [0]
            # Shared matches carry the group-first motif; instances must
            # report *this* config's motif (matching the sharded path).
            rebind = matches and matches[0].motif is not motif
            if collect:
                def sink(instance, _result=result, _counter=counter, _rebind=rebind, _motif=motif):
                    _counter[0] += 1
                    if _rebind:
                        instance = MotifInstance(
                            _motif, instance.vertex_map, instance.runs
                        )
                    _result.instances.append(instance)
            else:
                def sink(instance, _result=result, _counter=counter):
                    _counter[0] += 1
            with Timer() as t2:
                _enumeration.find_instances(
                    matches,
                    delta=config.effective_delta,
                    phi=config.effective_phi,
                    on_instance=sink,
                )
            result.p2_seconds = t2.elapsed
            result.count = counter[0]
            results.append(result)
        return results

    # ------------------------------------------------------------------
    # Sharded path: one partition, whole grid per shard
    # ------------------------------------------------------------------

    def _run_sharded(
        self, configs: Sequence[MotifConfig], collect: bool
    ) -> List[SearchResult]:
        with Timer() as wall:
            halo = max(c.effective_delta for c in configs)
            if (
                self.adaptive
                and len(configs) > 1
                and self._engine.num_shards > 1
            ):
                results = self._run_adaptive(configs, halo, collect)
            else:
                _, results = self._run_wave(configs, halo, collect)
        # The fan-out/merge wall time is shared by the whole grid; record
        # it on every config's report so efficiency charts have a
        # non-zero denominator.
        for result in results:
            if result.shard_timings is not None:
                result.shard_timings.wall_seconds = wall.elapsed
        return results

    def _run_wave(
        self, configs: Sequence[MotifConfig], halo: float, collect: bool
    ) -> Tuple[List, List[SearchResult]]:
        """Fan one sub-grid out over the current partition and merge.

        When a cost model is attached, every merged result's per-shard
        timings feed it — so the *next* wave (or run) partitions on
        fresher densities.
        """
        shards = self._engine.partition(halo)
        specs = [
            (i, c.motif, c.effective_delta, c.effective_phi)
            for i, c in enumerate(configs)
        ]
        tasks = self._engine._shard_tasks(shards, "batch", specs, collect)
        grouped = self._engine._dispatch(tasks)
        # grouped[s] is the list of per-config outputs from shard s.
        per_config: List[List[_worker.ShardSearchOutput]] = [
            [] for _ in configs
        ]
        for shard_outputs in grouped:
            for output in shard_outputs:
                per_config[output.config_index].append(output)
        results: List[SearchResult] = []
        for config, outputs in zip(configs, per_config):
            result = _merge.merge_search_results(
                config.motif, shards, outputs, self._ts
            )
            self._engine._observe_costs(shards, result)
            results.append(result)
        return shards, results

    def _run_adaptive(
        self, configs: Sequence[MotifConfig], halo: float, collect: bool
    ) -> List[SearchResult]:
        """Probe wave on quantile cuts, the rest on cost-balanced cuts.

        The first configuration runs on the default (event-quantile)
        partition purely to measure real per-shard seconds; its timings
        teach the cost model the timeline's density profile, and the
        remaining configurations re-partition at cost-weighted
        quantiles. Before/after imbalance and the model's
        predicted-vs-actual error are published as
        ``parallel.adaptive.*`` gauges and mirrored in ``last_stats``.
        """
        _, probe_results = self._run_wave(configs[:1], halo, collect)
        probe_timings = probe_results[0].shard_timings
        before = (
            probe_timings.imbalance_ratio if probe_timings is not None else 1.0
        )
        _, rest_results = self._run_wave(configs[1:], halo, collect)
        after = max(
            (
                r.shard_timings.imbalance_ratio
                for r in rest_results
                if r.shard_timings is not None
            ),
            default=before,
        )
        model = self.cost_model
        error = model.mean_abs_rel_error if model is not None else 0.0
        self._adaptive_stats = {
            "imbalance_before": before,
            "imbalance_after": after,
            "prediction_error": error,
        }
        reg = _metrics.active()
        if reg is not None:
            reg.gauge("parallel.adaptive.imbalance_before").set(before)
            reg.gauge("parallel.adaptive.imbalance_after").set(after)
            reg.gauge("parallel.adaptive.prediction_error").set(error)
        return probe_results + rest_results
