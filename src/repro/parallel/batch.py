"""Multi-motif batch evaluation with cross-query phase-P1 sharing.

Table 4 of the paper observes that phase P1 (structural matching) is
independent of δ and φ; the Figure 9/10 sweeps therefore pay it once per
motif *shape* and vary only phase P2. :class:`BatchRunner` lifts that
saving to whole grids of ``(motif, δ, φ)`` configurations: configurations
whose motifs share a spanning path form a *topology group* that computes
structural matches exactly once — per shard when running sharded, once
globally when running serially.

>>> from repro import InteractionGraph, Motif
>>> g = InteractionGraph.from_tuples([
...     ("a", "b", 1.0, 5.0), ("b", "c", 2.0, 4.0), ("b", "c", 3.0, 2.0),
... ])
>>> runner = BatchRunner(g, jobs=1)
>>> results = runner.run([
...     MotifConfig(Motif.chain(3, delta=10, phi=0)),
...     MotifConfig(Motif.chain(3, delta=10, phi=0), delta=0.5),
...     MotifConfig(Motif.chain(3, delta=10, phi=0), phi=100.0),
... ])
>>> [r.count for r in results]
[1, 0, 0]
>>> runner.last_stats["num_topology_groups"]
1
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.engine import SearchResult
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph
from repro.graph.timeseries import TimeSeriesGraph
from repro.obs import tracing as _tracing
from repro.parallel import merge as _merge
from repro.parallel import worker as _worker
from repro.parallel.engine import ParallelFlowMotifEngine
from repro.utils.timing import Timer


@dataclass(frozen=True)
class MotifConfig:
    """One cell of a batch grid: a motif with optional δ/φ overrides.

    ``delta``/``phi`` default to the motif's own constraints, mirroring
    the per-call overrides of the engines.
    """

    motif: Motif
    delta: Optional[float] = None
    phi: Optional[float] = None

    @property
    def effective_delta(self) -> float:
        """The δ this configuration searches with."""
        return self.motif.delta if self.delta is None else self.delta

    @property
    def effective_phi(self) -> float:
        """The φ this configuration searches with."""
        return self.motif.phi if self.phi is None else self.phi


def _coerce_config(item: Union[MotifConfig, Motif, Tuple]) -> MotifConfig:
    """Accept MotifConfig, bare Motif, or (motif, delta, phi) tuples."""
    if isinstance(item, MotifConfig):
        return item
    if isinstance(item, Motif):
        return MotifConfig(item)
    if isinstance(item, tuple) and item and isinstance(item[0], Motif):
        motif = item[0]
        delta = item[1] if len(item) > 1 else None
        phi = item[2] if len(item) > 2 else None
        return MotifConfig(motif, delta, phi)
    raise TypeError(
        "batch configurations must be MotifConfig, Motif, or "
        f"(motif, delta[, phi]) tuples, got {type(item).__name__}"
    )


class BatchRunner:
    """Evaluate a grid of (motif, δ, φ) configurations over one graph.

    Parameters
    ----------
    graph:
        The interaction multigraph or its time-series view.
    jobs:
        Worker count. With one shard (the ``jobs=1`` default) the grid
        runs serially with a single shared phase-P1 pass per topology
        group; with several shards the timeline is partitioned once
        (halo = the grid's maximum δ) and fanned out, each worker
        sharing P1 across the whole grid for its shard. ``jobs=1`` with
        an explicit ``shards`` runs the sharded path in-process
        (determinism testing, as in the engine).
    shards, backend:
        As in :class:`~repro.parallel.engine.ParallelFlowMotifEngine`.

    Attributes
    ----------
    last_stats:
        Dict describing the previous :meth:`run`: configuration count,
        topology-group count, total P1/P2 seconds and wall time.
    """

    def __init__(
        self,
        graph: Union[InteractionGraph, TimeSeriesGraph],
        jobs: int = 1,
        shards: Optional[int] = None,
        backend: str = "process",
        partition_strategy: str = "events",
    ) -> None:
        # Compose the parallel engine: one source of truth for graph
        # coercion, backend validation, dispatch, and partition caching.
        self._engine = ParallelFlowMotifEngine(
            graph,
            jobs=jobs,
            shards=shards,
            backend=backend,
            partition_strategy=partition_strategy,
        )
        self._ts = self._engine.time_series_graph
        self.last_stats: Dict[str, float] = {}

    @property
    def jobs(self) -> int:
        """Worker count (delegated to the underlying parallel engine)."""
        return self._engine.jobs

    @property
    def num_shards(self) -> int:
        """Shard count (delegated to the underlying parallel engine)."""
        return self._engine.num_shards

    @property
    def backend(self) -> str:
        """Execution backend (delegated to the underlying parallel engine)."""
        return self._engine.backend

    def run(
        self,
        configs: Sequence[Union[MotifConfig, Motif, Tuple]],
        collect: bool = True,
    ) -> List[SearchResult]:
        """Search every configuration; results align with ``configs``.

        With ``collect=False`` instances are counted but not materialized
        (the counts remain exact), which keeps huge grids memory-bound
        only by their result counts.
        """
        resolved = [_coerce_config(c) for c in configs]
        if not resolved:
            self.last_stats = {
                "num_configs": 0,
                "num_topology_groups": 0,
                "p1_seconds": 0.0,
                "p2_seconds": 0.0,
                "wall_seconds": 0.0,
                "shard_imbalance_ratio": 1.0,
            }
            return []
        with _tracing.span(
            "query.batch", configs=len(resolved), shards=self.num_shards
        ):
            with Timer() as wall:
                if self.num_shards == 1:
                    results = self._run_serial(resolved, collect)
                else:
                    results = self._run_sharded(resolved, collect)
        groups = {c.motif.spanning_path for c in resolved}
        # Shard imbalance (max/mean shard wall time) of the batch: the
        # worst ratio across the grid — 1.0 on the serial path, where no
        # sharding (and hence no imbalance) exists.
        imbalance = max(
            (
                r.shard_timings.imbalance_ratio
                for r in results
                if r.shard_timings is not None
            ),
            default=1.0,
        )
        self.last_stats = {
            "num_configs": len(resolved),
            "num_topology_groups": len(groups),
            "p1_seconds": sum(r.p1_seconds for r in results),
            "p2_seconds": sum(r.p2_seconds for r in results),
            "wall_seconds": wall.elapsed,
            "shard_imbalance_ratio": imbalance,
        }
        return results

    # ------------------------------------------------------------------
    # Serial path: one shared P1 pass per topology group
    # ------------------------------------------------------------------

    def _run_serial(
        self, configs: Sequence[MotifConfig], collect: bool
    ) -> List[SearchResult]:
        from repro.core import enumeration as _enumeration
        from repro.core.instance import MotifInstance
        from repro.core.matching import find_structural_matches

        matches_by_path: dict = {}
        p1_charged: set = set()
        p1_by_path: Dict[Tuple, float] = {}
        results: List[SearchResult] = []
        for config in configs:
            motif = config.motif
            key = motif.spanning_path
            if key not in matches_by_path:
                with Timer() as t1:
                    matches_by_path[key] = find_structural_matches(self._ts, motif)
                p1_by_path[key] = t1.elapsed
            matches = matches_by_path[key]
            result = SearchResult(motif=motif, num_matches=len(matches))
            if key not in p1_charged:
                # P1 is δ/φ-independent (Table 4): charged to the group's
                # first configuration, shared by the rest.
                result.p1_seconds = p1_by_path[key]
                p1_charged.add(key)
            counter = [0]
            # Shared matches carry the group-first motif; instances must
            # report *this* config's motif (matching the sharded path).
            rebind = matches and matches[0].motif is not motif
            if collect:
                def sink(instance, _result=result, _counter=counter, _rebind=rebind, _motif=motif):
                    _counter[0] += 1
                    if _rebind:
                        instance = MotifInstance(
                            _motif, instance.vertex_map, instance.runs
                        )
                    _result.instances.append(instance)
            else:
                def sink(instance, _result=result, _counter=counter):
                    _counter[0] += 1
            with Timer() as t2:
                _enumeration.find_instances(
                    matches,
                    delta=config.effective_delta,
                    phi=config.effective_phi,
                    on_instance=sink,
                )
            result.p2_seconds = t2.elapsed
            result.count = counter[0]
            results.append(result)
        return results

    # ------------------------------------------------------------------
    # Sharded path: one partition, whole grid per shard
    # ------------------------------------------------------------------

    def _run_sharded(
        self, configs: Sequence[MotifConfig], collect: bool
    ) -> List[SearchResult]:
        with Timer() as wall:
            halo = max(c.effective_delta for c in configs)
            shards = self._engine.partition(halo)
            specs = [
                (i, c.motif, c.effective_delta, c.effective_phi)
                for i, c in enumerate(configs)
            ]
            tasks = self._engine._shard_tasks(shards, "batch", specs, collect)
            grouped = self._engine._dispatch(tasks)
            # grouped[s] is the list of per-config outputs from shard s.
            per_config: List[List[_worker.ShardSearchOutput]] = [
                [] for _ in configs
            ]
            for shard_outputs in grouped:
                for output in shard_outputs:
                    per_config[output.config_index].append(output)
            results: List[SearchResult] = []
            for config, outputs in zip(configs, per_config):
                results.append(
                    _merge.merge_search_results(
                        config.motif, shards, outputs, self._ts
                    )
                )
        # The fan-out/merge wall time is shared by the whole grid; record
        # it on every config's report so efficiency charts have a
        # non-zero denominator.
        for result in results:
            if result.shard_timings is not None:
                result.shard_timings.wall_seconds = wall.elapsed
        return results
