"""EWMA per-shard cost model for observability-driven adaptive sharding.

The quantile partitioner (:func:`repro.parallel.partition._cut_points`)
balances *event counts* — but phase-P2 cost per event is anything but
uniform: a dense burst of interactions multiplies window density and DP
work, so an event-balanced partition can leave one shard holding most
of the wall clock (the imbalance ratio visible in every
``SearchResult.shard_timings``). This module closes the observe →
adapt loop the ROADMAP calls for:

1. After a sharded run, :meth:`ShardCostModel.observe` attributes each
   shard's measured seconds (P1 + P2 from its
   :class:`~repro.utils.timing.ShardTiming`) to the time bins its core
   covers, as an exponentially weighted moving average of **seconds per
   event** — the empirical "window density" of that stretch of the
   timeline.
2. Before the next same-topology run, :meth:`ShardCostModel.cut_points`
   re-cuts the timeline at *cost-weighted* quantiles: every event is
   weighted by its bin's learned density, so expensive regions get more
   (smaller) shards and cheap regions fewer (larger) ones.
3. :meth:`predicted_costs` is recorded at cut time and compared against
   the next observation — predicted-vs-actual accuracy and the
   imbalance improvement are published as gauges by the
   :class:`~repro.parallel.batch.BatchRunner`.

Correctness is free: the δ-halo anchored-ownership construction of
:mod:`repro.parallel.partition` is valid for *any* strictly increasing
cut sequence, so adapted partitions produce output multiset-identical
to serial (property-tested in ``tests/parallel/test_costmodel.py``).

The model is deliberately tiny — ``num_bins`` floats plus bookkeeping —
and deterministic: same observations in, same cuts out.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

__all__ = ["ShardCostModel"]


class ShardCostModel:
    """Piecewise-constant EWMA model of search cost over the timeline.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor: a bin's density after an observation is
        ``alpha * observed + (1 - alpha) * previous``. Higher values
        adapt faster; 0.3 follows roughly the last three runs.
    num_bins:
        Fixed time-bin count the timeline is modelled with. More bins
        resolve sharper bursts at slightly more bookkeeping.
    """

    def __init__(self, alpha: float = 0.3, num_bins: int = 64) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha!r}")
        if num_bins < 1:
            raise ValueError(f"num_bins must be positive, got {num_bins}")
        self.alpha = alpha
        self.num_bins = num_bins
        self._density: List[Optional[float]] = [None] * num_bins
        self._t_min: Optional[float] = None
        self._t_max: Optional[float] = None
        #: Bumped on every observation — partition caches key on it so a
        #: fresher model transparently invalidates stale partitions.
        self.version = 0
        #: Most recent per-shard cost prediction (seconds), recorded by
        #: :meth:`cut_points` and scored by the next :meth:`observe`.
        self._last_prediction: Optional[List[float]] = None
        self._error_sum = 0.0
        self._error_count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def ready(self) -> bool:
        """True once at least one observation landed (cuts make sense)."""
        return self.version > 0 and any(
            d is not None for d in self._density
        )

    @property
    def mean_abs_rel_error(self) -> float:
        """Mean |predicted - actual| / actual over scored predictions.

        0.0 until the first prediction has been scored.
        """
        if self._error_count == 0:
            return 0.0
        return self._error_sum / self._error_count

    @property
    def scored_predictions(self) -> int:
        """Per-shard predictions scored against an observation so far."""
        return self._error_count

    # ------------------------------------------------------------------
    # Bin helpers
    # ------------------------------------------------------------------

    def _bin_of(self, t: float) -> int:
        span = self._t_max - self._t_min  # type: ignore[operator]
        if span <= 0:
            return 0
        i = int((t - self._t_min) / span * self.num_bins)  # type: ignore[operator]
        return min(max(i, 0), self.num_bins - 1)

    def _mean_density(self) -> float:
        known = [d for d in self._density if d is not None]
        return sum(known) / len(known) if known else 1.0

    def _density_of(self, t: float) -> float:
        d = self._density[self._bin_of(t)]
        return d if d is not None else self._mean_density()

    # ------------------------------------------------------------------
    # Observe
    # ------------------------------------------------------------------

    def observe(
        self,
        shards: Sequence,
        timings: Sequence,
        sorted_times: Sequence[float],
    ) -> None:
        """Feed one sharded run's measured per-shard timings.

        Parameters
        ----------
        shards:
            The :class:`~repro.parallel.partition.TimeShard` partition
            the run executed on (core ranges are read off it).
        timings:
            Matching :class:`~repro.utils.timing.ShardTiming` entries
            (a :class:`~repro.utils.timing.ShardTimingReport`'s
            ``shards`` list, or the report itself).
        sorted_times:
            The engine's flattened sorted event timeline — used to count
            each core's anchored events; the same list the cuts are
            later drawn from.
        """
        if not sorted_times:
            return
        entries = getattr(timings, "shards", timings)
        if self._t_min is None:
            self._t_min = sorted_times[0]
            self._t_max = sorted_times[-1]
        elif (
            self._t_min != sorted_times[0] or self._t_max != sorted_times[-1]
        ):
            # A different timeline (new graph) invalidates everything.
            self._t_min, self._t_max = sorted_times[0], sorted_times[-1]
            self._density = [None] * self.num_bins
            self._last_prediction = None
        by_index = {t.shard_index: t for t in entries}
        actuals: List[float] = []
        for shard in shards:
            timing = by_index.get(shard.index)
            if timing is None:
                continue
            lo = bisect_left(sorted_times, shard.core_start)
            hi = bisect_left(sorted_times, shard.core_end)
            events = hi - lo
            seconds = timing.p1_seconds + timing.p2_seconds
            actuals.append(seconds)
            if events <= 0:
                continue
            observed = seconds / events
            start = max(shard.core_start, self._t_min)
            end = min(shard.core_end, self._t_max)
            if end < start:
                continue
            first, last = self._bin_of(start), self._bin_of(end)
            for i in range(first, last + 1):
                old = self._density[i]
                self._density[i] = (
                    observed
                    if old is None
                    else self.alpha * observed + (1.0 - self.alpha) * old
                )
        # Score the standing prediction against what actually happened.
        prediction = self._last_prediction
        if prediction is not None and len(prediction) == len(actuals):
            for predicted, actual in zip(prediction, actuals):
                if actual > 0:
                    self._error_sum += abs(predicted - actual) / actual
                    self._error_count += 1
            self._last_prediction = None
        self.version += 1

    # ------------------------------------------------------------------
    # Predict / cut
    # ------------------------------------------------------------------

    def predicted_costs(
        self,
        cores: Sequence[Tuple[float, float]],
        sorted_times: Sequence[float],
    ) -> List[float]:
        """Predicted seconds per core range under the current model."""
        costs: List[float] = []
        for start, end in cores:
            lo = bisect_left(sorted_times, start)
            hi = bisect_left(sorted_times, end)
            costs.append(
                sum(self._density_of(sorted_times[i]) for i in range(lo, hi))
            )
        return costs

    def cut_points(
        self, sorted_times: Sequence[float], num_shards: int
    ) -> Optional[List[float]]:
        """Cost-balanced interior cut points ``b_1 < ... < b_{k-1}``.

        Each event is weighted by its bin's learned seconds-per-event;
        cuts land at weighted quantiles so every shard carries (as
        predicted) the same cost. Returns None when the model cannot
        improve on the default partitioner (not ready, degenerate
        timeline, single shard) — callers then fall back to quantile
        cuts. As a side effect, records the per-shard cost prediction
        the next :meth:`observe` scores.
        """
        if num_shards <= 1 or not self.ready or not sorted_times:
            return None
        if self._t_min is None or self._t_max is None:
            return None
        if sorted_times[-1] <= sorted_times[0]:
            return None
        weights = [self._density_of(t) for t in sorted_times]
        total = sum(weights)
        if total <= 0:
            return None
        cuts: List[float] = []
        target_step = total / num_shards
        acc = 0.0
        next_target = target_step
        for t, w in zip(sorted_times, weights):
            if acc >= next_target and (not cuts or t > cuts[-1]):
                cuts.append(t)
                next_target += target_step
                if len(cuts) == num_shards - 1:
                    break
            acc += w
        if not cuts:
            return None
        # Record the prediction for the cores these cuts induce.
        import math

        bounds = [-math.inf] + cuts + [math.inf]
        self._last_prediction = self.predicted_costs(
            list(zip(bounds[:-1], bounds[1:])), sorted_times
        )
        return cuts
