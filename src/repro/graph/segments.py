"""Durable, crash-safe tiered segment storage for columnar graphs.

:class:`~repro.graph.columnar.ColumnStore` already has two homes: a
process-local :mod:`array` buffer and a volatile ``/dev/shm`` export. This
module adds the third tier — a **file-backed, mmap'd sealed segment** with
the same zero-copy :class:`~repro.graph.columnar.ColumnarEdgeSeries`
views, so graphs larger than RAM search without materializing and flat
buffers ship across hosts as ordinary files.

Unlike the shm tier (whose lifetime is bounded by the exporter's crash
hooks), a file outlives every process — so data at rest must *prove* its
integrity instead of assuming it:

Segment file format (version 2)
-------------------------------
::

    [ 0:24)   SEGMENT_HEADER  — magic "FMCOLSTO", version=2, meta_len
    [24:32)   <II>            — header CRC32 (of bytes 0:24),
                                meta CRC32 (of bytes 32:off0, JSON + pad)
    [32:off0) metadata JSON   — num_series/num_events/pairs/creator pid
                                + per-column CRC32s; zero-padded to 8B
    [off0:)   columns         — offsets(int64) · times(f64) · flows(f64)
                                · cum(f64), exactly tiling to EOF

Every byte of the file is covered by a checksum (or *is* a stored
checksum, or is length-checked), so flipping any single bit is detected
at open time and surfaces as a typed
:class:`~repro.resilience.shm_registry.SegmentCorruptionError` — with the
damaged file renamed to ``*.quarantine-<pid>`` — never as a crash deeper
in the stack or a silently wrong search result.

Seal protocol (atomic, torn-write-safe)
---------------------------------------
:func:`write_segment` writes to ``<path>.tmp.<pid>``, fsyncs the file,
``os.replace``-renames it over the final name, then fsyncs the directory.
A crash at *any* point leaves either no final file or a complete valid
one; the leftover ``*.tmp.<pid>`` is provably dead (its writer pid is in
the name) and reaped by :func:`fsck` or
:func:`repro.resilience.reap_orphans`.

Store layout (LSM-style)
------------------------
A :class:`SegmentStore` directory holds sealed segments plus an
append-only, per-record-checksummed :class:`SegmentManifest`
(``MANIFEST.jsonl``). Streaming appends land in a
:class:`~repro.graph.columnar.GrowableColumnStore` memtable;
:meth:`SegmentStore.seal` freezes it into a new sealed segment, and
:meth:`SegmentStore.compact` k-way-merges the sealed tier into one
segment. **A segment exists once — and only once — its manifest record is
durable**; fault-injected crash points (:func:`repro.resilience.
faultinject.crash_point`) at every protocol seam let the chaos suite
prove that a SIGKILL anywhere costs at most the unsealed memtable.
"""

from __future__ import annotations

import heapq
import json
import logging
import mmap
import os
import struct
import zlib
from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graph.columnar import ColumnStore, _align
from repro.graph.timeseries import TimeSeriesGraph
from repro.obs import metrics as _metrics
from repro.resilience.faultinject import crash_point as _crash_point
from repro.resilience.shm_registry import (
    QUARANTINE_MARKER,
    SEGMENT_FILE_VERSION,
    SEGMENT_HEADER as _HEADER,
    SEGMENT_MAGIC as _MAGIC,
    SegmentCorruptionError,
    TMP_MARKER,
    pid_alive,
)

__all__ = [
    "FsckReport",
    "SegmentColumnStore",
    "SegmentCorruptionError",
    "SegmentManifest",
    "SegmentStore",
    "fsck",
    "open_segment",
    "quarantine_segment",
    "verify_segment",
    "write_segment",
]

LOG = logging.getLogger("repro.graph.segments")

#: CRC block right after the header: (header_crc, meta_crc), both CRC32.
_CRC_STRUCT = struct.Struct("<II")
_CRC_OFFSET = _HEADER.size
_META_OFFSET = _CRC_OFFSET + _CRC_STRUCT.size

#: Column names in file order; meta["crc"] carries one CRC32 per entry.
_COLUMNS = ("offsets", "times", "flows", "cum")

MANIFEST_NAME = "MANIFEST.jsonl"
SEGMENT_SUFFIX = ".seg"


def _counter(name: str, amount: int = 1) -> None:
    registry = _metrics.active()
    if registry is not None and amount:
        registry.counter(name).inc(amount)


def _layout_file(
    meta_len: int, num_series: int, num_events: int
) -> Tuple[int, int, int, int, int]:
    """Byte offsets of (offsets, times, flows, cum) plus total file size."""
    off0 = _align(_META_OFFSET + meta_len)
    off1 = off0 + 8 * (num_series + 1)
    off2 = off1 + 8 * num_events
    off3 = off2 + 8 * num_events
    total = off3 + 8 * (num_events + num_series)
    return off0, off1, off2, off3, total


def _column_ranges(
    meta_len: int, num_series: int, num_events: int
) -> Dict[str, Tuple[int, int]]:
    off0, off1, off2, off3, total = _layout_file(
        meta_len, num_series, num_events
    )
    return {
        "offsets": (off0, off1),
        "times": (off1, off2),
        "flows": (off2, off3),
        "cum": (off3, total),
    }


# ----------------------------------------------------------------------
# Sealing (write side)
# ----------------------------------------------------------------------


def _fsync_dir(path: str) -> None:
    """Make a rename in ``path`` durable (POSIX requires the dir fsync)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


def write_segment(store: ColumnStore, path: str) -> Dict[str, object]:
    """Seal one :class:`ColumnStore` into a durable segment file.

    Atomic against crashes: the bytes go to ``<path>.tmp.<pid>`` first,
    are fsynced, renamed over ``path`` with ``os.replace``, and the
    directory is fsynced — a reader never observes a partial segment
    under the final name. Returns the segment metadata dict (including
    the per-column CRCs), which the caller typically records in a
    :class:`SegmentManifest`.
    """
    columns = {
        "offsets": memoryview(store.offsets).cast("B"),
        "times": memoryview(store.times).cast("B"),
        "flows": memoryview(store.flows).cast("B"),
        "cum": memoryview(store.cum).cast("B"),
    }
    meta = {
        "num_series": store.num_series,
        "num_events": store.num_events,
        "pid": os.getpid(),
        "pairs": [[src, dst] for src, dst in store.pairs],
        "crc": {name: zlib.crc32(columns[name]) for name in _COLUMNS},
    }
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    off0 = _align(_META_OFFSET + len(meta_bytes))
    pad = b"\x00" * (off0 - _META_OFFSET - len(meta_bytes))
    header = _HEADER.pack(_MAGIC, SEGMENT_FILE_VERSION, len(meta_bytes))
    crc_block = _CRC_STRUCT.pack(
        zlib.crc32(header), zlib.crc32(meta_bytes + pad)
    )

    tmp = f"{path}{TMP_MARKER}{os.getpid()}"
    _crash_point("segments.seal.before_write")
    with open(tmp, "wb") as fh:
        fh.write(header)
        fh.write(crc_block)
        fh.write(meta_bytes)
        fh.write(pad)
        for name in _COLUMNS:
            fh.write(columns[name])
        fh.flush()
        _crash_point("segments.seal.before_fsync")
        os.fsync(fh.fileno())
    _crash_point("segments.seal.after_fsync")
    os.replace(tmp, path)
    _crash_point("segments.seal.after_rename")
    _fsync_dir(os.path.dirname(os.path.abspath(path)))
    _counter("segments.sealed")
    return meta


# ----------------------------------------------------------------------
# Opening (read side, validated)
# ----------------------------------------------------------------------


class _MappedSegmentFile:
    """``SharedMemory``-shaped handle over one mmap'd segment file.

    Provides the ``name``/``buf``/``close()`` surface
    :class:`ColumnStore` manages, so the mapped store plugs into the
    existing close/lifetime machinery (no ``unlink`` attribute: closing
    a mapping never deletes the file).
    """

    def __init__(self, path: str) -> None:
        self.name = path
        fd = os.open(path, os.O_RDONLY)
        try:
            size = os.fstat(fd).st_size
            if size == 0:
                raise SegmentCorruptionError(f"segment {path!r} is empty")
            self._mmap = mmap.mmap(fd, size, access=mmap.ACCESS_READ)
        finally:
            os.close(fd)
        self.buf: Optional[memoryview] = memoryview(self._mmap)

    def close(self) -> None:
        if self.buf is not None:
            self.buf.release()
            self.buf = None
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None


class SegmentColumnStore(ColumnStore):
    """A :class:`ColumnStore` whose buffers are an mmap of a sealed file.

    Identical query surface — :meth:`~ColumnStore.series_view` returns
    the same zero-copy :class:`~repro.graph.columnar.ColumnarEdgeSeries`
    — but the backing pages are demand-loaded by the OS, so a store much
    larger than RAM opens instantly and only the touched ranges occupy
    memory. The parallel engine recognizes the :attr:`path` attribute
    and ships workers ``(path, shard bounds)`` envelopes; each worker
    maps the file itself (see :mod:`repro.parallel.worker`).
    """

    def __init__(self, pairs, times, flows, cum, offsets, block, path):
        super().__init__(
            pairs, times, flows, cum, offsets, shm=block, owns_shm=False
        )
        #: Filesystem path of the sealed segment backing this store.
        self.path = path

    @property
    def shm_name(self) -> Optional[str]:
        """Always None: the backing is a file, not shared memory."""
        return None


def _validate_buffer(
    path: str, buf: memoryview, check_crc: bool = True
) -> dict:
    """Check every checksum of a mapped/loaded segment; returns metadata.

    Raises :class:`SegmentCorruptionError` describing the first failure:
    short file, bad magic, wrong version, header/meta CRC mismatch, size
    mismatch, or a per-column CRC mismatch. Every byte of the file is
    covered, so any single flipped bit trips exactly one of these.
    """
    if len(buf) < _META_OFFSET:
        raise SegmentCorruptionError(
            f"segment {path!r} is truncated: {len(buf)} bytes is shorter "
            f"than the {_META_OFFSET}-byte header"
        )
    header = bytes(buf[: _HEADER.size])
    magic, version, meta_len = _HEADER.unpack(header)
    stored_header_crc, stored_meta_crc = _CRC_STRUCT.unpack_from(
        buf, _CRC_OFFSET
    )
    if magic != _MAGIC:
        raise SegmentCorruptionError(
            f"segment {path!r} has bad magic {magic!r}: not a sealed "
            "ColumnStore segment (or its header is corrupt)"
        )
    if zlib.crc32(header) != stored_header_crc:
        raise SegmentCorruptionError(
            f"segment {path!r} header CRC mismatch: the header is corrupt"
        )
    if version != SEGMENT_FILE_VERSION:
        raise SegmentCorruptionError(
            f"segment {path!r} has format version {version}; this build "
            f"reads version {SEGMENT_FILE_VERSION}"
        )
    if _META_OFFSET + meta_len > len(buf):
        raise SegmentCorruptionError(
            f"segment {path!r} metadata ({meta_len} bytes) overruns the "
            f"{len(buf)}-byte file"
        )
    off0 = _align(_META_OFFSET + meta_len)
    if zlib.crc32(buf[_META_OFFSET:off0]) != stored_meta_crc:
        raise SegmentCorruptionError(
            f"segment {path!r} metadata CRC mismatch: the metadata block "
            "is corrupt"
        )
    try:
        meta = json.loads(bytes(buf[_META_OFFSET : _META_OFFSET + meta_len]))
        num_series = int(meta["num_series"])
        num_events = int(meta["num_events"])
        crcs = meta["crc"]
        if not isinstance(crcs, dict):
            raise ValueError("column CRC table is not an object")
        pairs = [(src, dst) for src, dst in meta["pairs"]]
    except (ValueError, KeyError, TypeError) as exc:
        # The CRC matched, so this is a writer bug rather than rot — but
        # the segment is equally unreadable either way.
        raise SegmentCorruptionError(
            f"segment {path!r} metadata does not decode: {exc}"
        ) from exc
    if len(pairs) != num_series:
        raise SegmentCorruptionError(
            f"segment {path!r} metadata is inconsistent: {len(pairs)} "
            f"pairs for {num_series} series"
        )
    ranges = _column_ranges(meta_len, num_series, num_events)
    total = ranges["cum"][1]
    if len(buf) != total:
        raise SegmentCorruptionError(
            f"segment {path!r} is {len(buf)} bytes; its header promises "
            f"{total} — truncated or padded file"
        )
    if check_crc:
        for name in _COLUMNS:
            lo, hi = ranges[name]
            if zlib.crc32(buf[lo:hi]) != crcs.get(name):
                raise SegmentCorruptionError(
                    f"segment {path!r} column {name!r} CRC mismatch: the "
                    "column data is corrupt"
                )
    meta["pairs"] = pairs
    meta["meta_len"] = meta_len
    return meta


def quarantine_segment(path: str) -> str:
    """Set a damaged segment aside as ``<path>.quarantine-<pid>``.

    Returns the quarantine path. The pid suffix lets
    :func:`repro.resilience.reap_orphans` prove, later, that the
    operator's process is gone and the evidence can be reclaimed.
    """
    target = f"{path}{QUARANTINE_MARKER}{os.getpid()}"
    os.replace(path, target)
    _counter("segments.quarantined")
    LOG.warning("quarantined corrupt segment %r -> %r", path, target)
    return target


def verify_segment(path: str) -> dict:
    """Validate every checksum of a sealed segment; returns its metadata.

    Pure check — never renames or repairs. Raises
    :class:`SegmentCorruptionError` on any damage,
    ``FileNotFoundError``/``OSError`` when the file cannot be read.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    try:
        meta = _validate_buffer(path, memoryview(data))
    except SegmentCorruptionError:
        _counter("segments.crc_failures")
        raise
    _counter("segments.validated")
    return meta


def open_segment(
    path: str, validate: bool = True, quarantine: bool = True
) -> SegmentColumnStore:
    """Map a sealed segment as a zero-copy :class:`SegmentColumnStore`.

    ``validate=True`` (default) checks every CRC before any view is
    handed out; a corrupt file raises :class:`SegmentCorruptionError`
    and — with ``quarantine=True`` — is renamed to
    ``*.quarantine-<pid>`` so it cannot be served again by a caller that
    skips validation. The returned store holds the mapping open; call
    ``close()`` (or drop every graph built from it) to release it.
    """
    try:
        block = _MappedSegmentFile(path)
    except SegmentCorruptionError:
        _counter("segments.crc_failures")
        if quarantine:
            quarantine_segment(path)
        raise
    try:
        try:
            meta = _validate_buffer(path, block.buf, check_crc=validate)
        except SegmentCorruptionError:
            _counter("segments.crc_failures")
            block.close()
            if quarantine:
                quarantine_segment(path)
            raise
    except Exception:
        if block.buf is not None:
            block.close()
        raise
    if validate:
        _counter("segments.validated")
    meta_len = meta["meta_len"]
    num_series, num_events = meta["num_series"], meta["num_events"]
    ranges = _column_ranges(meta_len, num_series, num_events)
    buf = block.buf
    views = {
        name: buf[lo:hi].cast("q" if name == "offsets" else "d")
        for name, (lo, hi) in ranges.items()
    }
    store = SegmentColumnStore(
        meta["pairs"],
        views["times"],
        views["flows"],
        views["cum"],
        views["offsets"],
        block,
        path,
    )
    creator = meta.get("pid")
    store.creator_pid = creator if isinstance(creator, int) else None
    return store


# ----------------------------------------------------------------------
# Manifest (append-only, per-record checksummed)
# ----------------------------------------------------------------------


def _record_crc(record: Dict[str, object]) -> int:
    """CRC32 of a manifest record's canonical JSON, minus its crc field."""
    body = {k: v for k, v in record.items() if k != "crc"}
    return zlib.crc32(
        json.dumps(body, sort_keys=True, separators=(",", ":")).encode()
    )


class SegmentManifest:
    """Append-only JSONL ledger of sealed segments in one store directory.

    Each line is one JSON record carrying its own CRC32; appends are
    fsynced, so **a segment is durable exactly when its record is**. On
    load, a partial or corrupt *final* line is treated as a torn write
    (the crash window between ``write`` and ``fsync``) and ignored; a
    corrupt record anywhere earlier means the ledger itself rotted and
    raises :class:`SegmentCorruptionError` — fsck refuses to guess.
    """

    def __init__(self, path: str) -> None:
        self.path = path

    # -- append side ---------------------------------------------------

    def append(self, record: Dict[str, object]) -> None:
        record = dict(record)
        record["crc"] = _record_crc(record)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            _crash_point("segments.manifest.before_fsync")
            os.fsync(fh.fileno())
        _fsync_dir(os.path.dirname(os.path.abspath(self.path)))

    # -- load side -----------------------------------------------------

    def load(self) -> Tuple[List[Dict[str, object]], bool]:
        """All valid records, plus whether a torn tail was dropped."""
        try:
            with open(self.path, "r", encoding="utf-8", errors="replace") as fh:
                lines = fh.read().split("\n")
        except FileNotFoundError:
            return [], False
        if lines and lines[-1] == "":
            lines.pop()
        records: List[Dict[str, object]] = []
        torn = False
        for index, line in enumerate(lines):
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("manifest record is not an object")
                if record.get("crc") != _record_crc(record):
                    raise ValueError("manifest record CRC mismatch")
            except ValueError as exc:
                if index == len(lines) - 1:
                    torn = True  # torn final write: pre-crash tail
                    break
                raise SegmentCorruptionError(
                    f"manifest {self.path!r} line {index + 1} is corrupt "
                    f"({exc}) and is not the final line — the ledger "
                    "itself is damaged"
                ) from exc
            records.append(record)
        return records, torn

    def truncate_torn_tail(self) -> bool:
        """Rewrite the manifest keeping only its valid records.

        Returns True when a torn tail was actually removed. Uses the
        same tmp-fsync-rename discipline as segment sealing.
        """
        records, torn = self.load()
        if not torn:
            return False
        tmp = f"{self.path}{TMP_MARKER}{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(
                    json.dumps(record, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        _fsync_dir(os.path.dirname(os.path.abspath(self.path)))
        return True

    def replay(self) -> Tuple[List[str], List[str], bool]:
        """Fold the ledger: (live segment names, superseded names, torn).

        ``op="seal"`` adds a segment; ``op="compact"`` adds its output
        and retires every name in ``replaces``.
        """
        records, torn = self.load()
        live: Dict[str, None] = {}
        superseded: List[str] = []
        for record in records:
            op = record.get("op")
            name = record.get("name")
            if op == "seal" and isinstance(name, str):
                live[name] = None
            elif op == "compact" and isinstance(name, str):
                for old in record.get("replaces", ()):
                    if old in live:
                        live.pop(old)
                        superseded.append(old)
                live[name] = None
            else:
                raise SegmentCorruptionError(
                    f"manifest {self.path!r} carries unknown record "
                    f"op={op!r}"
                )
        return list(live), superseded, torn


# ----------------------------------------------------------------------
# The tiered store
# ----------------------------------------------------------------------


def _merge_stores(stores: Sequence[ColumnStore]) -> ColumnStore:
    """K-way-merge several stores into one (per-pair time-sorted).

    Pairs keep first-seen order across the input stores; within a pair,
    events merge by timestamp with ties broken by input order
    (``heapq.merge`` is stable), so compacting segments sealed from a
    time-ordered stream reproduces exactly the store a single seal of
    the whole stream would have produced.
    """
    order: List[Tuple] = []
    sources: Dict[Tuple, List[Tuple[memoryview, memoryview]]] = {}
    for store in stores:
        for slot, pair in enumerate(store.pairs):
            if pair not in sources:
                sources[pair] = []
                order.append(pair)
            view = store.series_view(slot)
            sources[pair].append((view.times, view.flows))
    times = array("d")
    flows = array("d")
    cum = array("d")
    offsets = array("q", [0])
    for pair in order:
        streams = [zip(t, f) for t, f in sources[pair]]
        cum.append(0.0)
        running = 0.0
        for t, f in heapq.merge(*streams, key=lambda event: event[0]):
            times.append(t)
            flows.append(f)
            running += f
            cum.append(running)
        offsets.append(len(times))
    return ColumnStore(
        order,
        memoryview(times),
        memoryview(flows),
        memoryview(cum),
        memoryview(offsets),
    )


class SegmentStore:
    """An LSM-style tiered store directory: memtable + sealed segments.

    * :meth:`append`/:meth:`extend` land interactions in a
      :class:`~repro.graph.columnar.GrowableColumnStore` memtable
      (volatile — the crash-loss budget).
    * :meth:`seal` freezes the memtable into a durable sealed segment
      and records it in the manifest; from that fsync on, the data
      survives anything.
    * :meth:`compact` merges every live sealed segment into one, so
      reads stay zero-copy over a single mmap.
    * :meth:`search_graph` produces the :class:`TimeSeriesGraph` over
      everything sealed (plus, optionally, the memtable).

    Thread-compatibility matches the rest of the library: one writer.
    """

    def __init__(self, root: str, create: bool = True) -> None:
        self.root = root
        if create:
            os.makedirs(root, exist_ok=True)
        elif not os.path.isdir(root):
            raise FileNotFoundError(f"segment store {root!r} does not exist")
        self.manifest = SegmentManifest(os.path.join(root, MANIFEST_NAME))
        from repro.graph.columnar import GrowableColumnStore

        self._memtable = GrowableColumnStore()

    # -- ingestion -----------------------------------------------------

    def append(self, src, dst, time: float, flow: float) -> bool:
        """Ingest one interaction into the (volatile) memtable."""
        return self._memtable.append(src, dst, time, flow)

    def extend(self, interactions: Iterable) -> int:
        return self._memtable.extend(interactions)

    @property
    def memtable_events(self) -> int:
        """Events ingested but not yet sealed — the crash-loss budget."""
        return self._memtable.num_events

    # -- naming --------------------------------------------------------

    def _next_name(self) -> str:
        live, superseded, _torn = self.manifest.replay()
        used = set(live) | set(superseded)
        seq = 0
        while f"seg-{seq:06d}{SEGMENT_SUFFIX}" in used:
            seq += 1
        return f"seg-{seq:06d}{SEGMENT_SUFFIX}"

    def segment_path(self, name: str) -> str:
        return os.path.join(self.root, name)

    def live_segments(self) -> List[str]:
        """Names of the sealed segments the manifest declares live."""
        return self.manifest.replay()[0]

    # -- sealing & compaction ------------------------------------------

    def seal(self) -> Optional[str]:
        """Freeze the memtable into a durable sealed segment.

        Returns the new segment's name, or None when the memtable is
        empty. Crash-safe: until the manifest record is fsynced the
        segment does not exist (fsck quarantines the dangling file), and
        afterwards it can never be lost.
        """
        if self._memtable.num_events == 0:
            return None
        snapshot = self._memtable.snapshot()
        name = self._next_name()
        meta = write_segment(snapshot, self.segment_path(name))
        self.manifest.append(
            {
                "op": "seal",
                "name": name,
                "num_series": meta["num_series"],
                "num_events": meta["num_events"],
                "column_crc": meta["crc"],
            }
        )
        from repro.graph.columnar import GrowableColumnStore

        self._memtable = GrowableColumnStore()
        return name

    def compact(self) -> Optional[str]:
        """Merge every live sealed segment into one new segment.

        Returns the new segment's name (None with fewer than two live
        segments — nothing to merge). The memtable is untouched: sealing
        and compaction compose but never race each other's data. Crash
        protocol: the merged segment is written and renamed first, the
        manifest ``compact`` record makes it authoritative, and only
        then are the superseded files deleted — a crash leaves either
        the old live set (plus a dangling file fsck quarantines) or the
        new one (plus superseded files fsck reaps).
        """
        live = self.live_segments()
        if len(live) < 2:
            return None
        _crash_point("segments.compact.before_seal")
        opened = [open_segment(self.segment_path(name)) for name in live]
        try:
            merged = _merge_stores(opened)
            name = self._next_name()
            meta = write_segment(merged, self.segment_path(name))
        finally:
            for store in opened:
                store.close()
        _counter("segments.compaction_bytes", int(meta["num_events"]) * 24)
        _crash_point("segments.compact.after_seal")
        self.manifest.append(
            {
                "op": "compact",
                "name": name,
                "replaces": live,
                "num_series": meta["num_series"],
                "num_events": meta["num_events"],
                "column_crc": meta["crc"],
            }
        )
        _crash_point("segments.compact.before_reap")
        for old in live:
            try:
                os.remove(self.segment_path(old))
            except FileNotFoundError:
                pass
        return name

    # -- reading -------------------------------------------------------

    def open_segment(self, name: str) -> SegmentColumnStore:
        """Open (validated, mmap'd) one live segment by name."""
        return open_segment(self.segment_path(name))

    def search_graph(self, include_memtable: bool = False) -> TimeSeriesGraph:
        """The queryable graph over the sealed tier.

        With exactly one live segment (the steady state after
        :meth:`compact`) and no requested memtable, the graph is a pure
        zero-copy view over the segment's mmap — the parallel engine
        then fans workers out with ``(path, bounds)`` envelopes and no
        event ever crosses a process boundary. Multiple live segments
        (or ``include_memtable=True``) fall back to a materialized
        k-way merge; compact first to stay zero-copy.
        """
        live = self.live_segments()
        memtable_busy = include_memtable and self._memtable.num_events > 0
        if len(live) == 1 and not memtable_busy:
            return self.open_segment(live[0]).to_graph()
        stores: List[ColumnStore] = [
            self.open_segment(name) for name in live
        ]
        try:
            if memtable_busy:
                stores.append(self._memtable.snapshot())
            if not stores:
                return TimeSeriesGraph([])
            LOG.info(
                "materializing %d-way merge for search (compact the store "
                "to keep reads zero-copy)",
                len(stores),
            )
            return _merge_stores(stores).to_graph()
        finally:
            for store in stores:
                if isinstance(store, SegmentColumnStore):
                    store.close()

    @property
    def num_sealed_events(self) -> int:
        records, _torn = self.manifest.load()
        live = set(self.live_segments())
        return sum(
            int(r.get("num_events", 0))
            for r in records
            if r.get("name") in live
        )


# ----------------------------------------------------------------------
# fsck
# ----------------------------------------------------------------------


@dataclass
class FsckReport:
    """What :func:`fsck` found (and, unless dry-run, repaired)."""

    root: str
    checked: int = 0
    valid: int = 0
    #: (segment name, reason) for every live segment failing validation.
    corrupted: List[Tuple[str, str]] = field(default_factory=list)
    #: Quarantine paths created for corrupt segments.
    quarantined: List[str] = field(default_factory=list)
    #: Live manifest entries with no file on disk — unrecoverable here.
    missing: List[str] = field(default_factory=list)
    #: ``*.tmp.<pid>`` seal leftovers removed (dead writer).
    tmp_reaped: List[str] = field(default_factory=list)
    #: Superseded-by-compaction files removed.
    superseded_reaped: List[str] = field(default_factory=list)
    #: ``.seg`` files present on disk but absent from the manifest —
    #: seals whose crash landed between rename and the manifest fsync.
    unmanifested: List[str] = field(default_factory=list)
    #: Whether a torn trailing manifest record was found (and dropped).
    manifest_torn: bool = False

    @property
    def ok(self) -> bool:
        """True when every sealed segment is present and valid."""
        return not self.corrupted and not self.missing

    def summary(self) -> str:
        parts = [
            f"{self.valid}/{self.checked} segments valid",
        ]
        if self.corrupted:
            parts.append(f"{len(self.corrupted)} corrupt")
        if self.missing:
            parts.append(f"{len(self.missing)} missing")
        if self.unmanifested:
            parts.append(f"{len(self.unmanifested)} unmanifested")
        if self.tmp_reaped:
            parts.append(f"{len(self.tmp_reaped)} stale tmp reaped")
        if self.superseded_reaped:
            parts.append(
                f"{len(self.superseded_reaped)} superseded reaped"
            )
        if self.manifest_torn:
            parts.append("torn manifest tail")
        status = "clean" if self.ok else "DAMAGED"
        return f"fsck {self.root}: {status} ({', '.join(parts)})"


def fsck(root: str, repair: bool = True) -> FsckReport:
    """Scan a :class:`SegmentStore` directory and verify every guarantee.

    * validates every live segment's checksums (corrupt → quarantined
      under ``repair``);
    * reaps ``*.tmp.<pid>`` seal leftovers whose writer pid is dead, and
      files a compaction finished superseding;
    * quarantines ``.seg`` files the manifest never admitted (a seal
      that crashed before its manifest fsync — unsealed by definition);
    * drops a torn trailing manifest record (under ``repair``).

    ``repair=False`` only reports. Raises
    :class:`SegmentCorruptionError` when the manifest itself is rotten
    (a corrupt non-final record) — that store needs a human.
    """
    report = FsckReport(root=root)
    manifest = SegmentManifest(os.path.join(root, MANIFEST_NAME))
    live, superseded, torn = manifest.replay()
    report.manifest_torn = torn
    if torn and repair:
        manifest.truncate_torn_tail()

    live_set = set(live)
    superseded_set = set(superseded)
    for name in live:
        path = os.path.join(root, name)
        report.checked += 1
        try:
            verify_segment(path)
        except FileNotFoundError:
            report.missing.append(name)
            continue
        except SegmentCorruptionError as exc:
            report.corrupted.append((name, str(exc)))
            if repair:
                report.quarantined.append(quarantine_segment(path))
            continue
        report.valid += 1

    if os.path.isdir(root):
        for entry in sorted(os.listdir(root)):
            path = os.path.join(root, entry)
            if not os.path.isfile(path) or entry == MANIFEST_NAME:
                continue
            pid_idx = entry.rfind(TMP_MARKER)
            if pid_idx >= 0:
                suffix = entry[pid_idx + len(TMP_MARKER):]
                if suffix.isdigit() and pid_alive(int(suffix)):
                    continue  # a live writer is mid-seal: hands off
                report.tmp_reaped.append(entry)
                if repair:
                    os.remove(path)
                continue
            if QUARANTINE_MARKER in entry:
                continue  # operator evidence; reap_orphans handles aging
            if not entry.endswith(SEGMENT_SUFFIX):
                continue
            if entry in superseded_set and entry not in live_set:
                report.superseded_reaped.append(entry)
                if repair:
                    os.remove(path)
            elif entry not in live_set:
                report.unmanifested.append(entry)
                if repair:
                    report.quarantined.append(quarantine_segment(path))
    _counter("segments.fsck_corrupt", len(report.corrupted))
    if not report.ok:
        LOG.warning("%s", report.summary())
    return report
