"""Interaction-network substrate.

The paper's input is a directed temporal multigraph ``G(V, E)`` whose edges
carry a timestamp and a positive flow (Section 3 of the paper). Algorithms
operate on the equivalent *time-series graph* ``G_T(V, E_T)`` where all
parallel edges between a vertex pair are merged into a single edge holding an
interaction time series ``R(u, v)`` (Figure 5 of the paper).

* :class:`~repro.graph.events.Interaction` — one timestamped flow transfer.
* :class:`~repro.graph.interaction.InteractionGraph` — the input multigraph.
* :class:`~repro.graph.timeseries.TimeSeriesGraph` — the merged view ``G_T``.
* :class:`~repro.graph.timeseries.EdgeSeries` — one series ``R(u, v)``.
* :class:`~repro.graph.columnar.ColumnStore` — flat columnar storage of all
  series with zero-copy views and shared-memory export/attach.
* :class:`~repro.graph.segments.SegmentStore` — durable tier: checksummed
  mmap'd sealed segment files with an append-only manifest, LSM-style
  seal/compact lifecycle, and fsck recovery.
"""

from repro.graph.columnar import (
    ColumnarEdgeSeries,
    ColumnStore,
    GrowableColumnStore,
    columnarize,
)
from repro.graph.segments import (
    FsckReport,
    SegmentColumnStore,
    SegmentCorruptionError,
    SegmentManifest,
    SegmentStore,
    fsck,
    open_segment,
    verify_segment,
    write_segment,
)
from repro.graph.events import Interaction
from repro.graph.interaction import InteractionGraph
from repro.graph.timeseries import (
    EdgeSeries,
    GrowableTimeSeriesGraph,
    TimeSeriesGraph,
)

__all__ = [
    "Interaction",
    "InteractionGraph",
    "EdgeSeries",
    "TimeSeriesGraph",
    "GrowableTimeSeriesGraph",
    "ColumnStore",
    "ColumnarEdgeSeries",
    "GrowableColumnStore",
    "columnarize",
    "FsckReport",
    "SegmentColumnStore",
    "SegmentCorruptionError",
    "SegmentManifest",
    "SegmentStore",
    "fsck",
    "open_segment",
    "verify_segment",
    "write_segment",
]
