"""Descriptive statistics of interaction networks (Table 3 of the paper).

:func:`dataset_statistics` returns the four Table 3 columns plus derived
quantities the paper discusses in prose (average parallel edges per
connected pair, density, time span).
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict, List, Tuple

from repro.graph.events import Node
from repro.graph.interaction import InteractionGraph


@dataclass(frozen=True)
class DatasetStatistics:
    """One row of Table 3, with extra derived columns.

    Attributes
    ----------
    num_nodes:
        ``|V|`` — distinct vertices.
    num_connected_pairs:
        Ordered pairs with at least one interaction (``|E_T|``).
    num_edges:
        Interactions in the multigraph (``|E|``).
    average_flow:
        Mean flow per interaction (Table 3's last column).
    edges_per_pair:
        ``|E| / |E_T|`` — average parallel-edge multiplicity; the paper
        notes ~4 for Facebook and ~3 for Passenger.
    density:
        ``|E_T| / (|V| * (|V| - 1))`` — fraction of possible ordered pairs
        connected; the paper calls Passenger "dense".
    time_span:
        ``t_max - t_min``.
    """

    num_nodes: int
    num_connected_pairs: int
    num_edges: int
    average_flow: float
    edges_per_pair: float
    density: float
    time_span: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form, used for JSON reports."""
        return asdict(self)


def dataset_statistics(graph: InteractionGraph) -> DatasetStatistics:
    """Compute the Table 3 row for ``graph``.

    Raises
    ------
    ValueError
        If the graph has no interactions.
    """
    if graph.num_edges == 0:
        raise ValueError("cannot compute statistics of an empty graph")
    n = graph.num_nodes
    pairs = graph.num_connected_pairs
    t_min, t_max = graph.time_span
    possible = n * (n - 1)
    return DatasetStatistics(
        num_nodes=n,
        num_connected_pairs=pairs,
        num_edges=graph.num_edges,
        average_flow=graph.average_flow,
        edges_per_pair=graph.num_edges / pairs,
        density=(pairs / possible) if possible else 0.0,
        time_span=t_max - t_min,
    )


def degree_distribution(graph: InteractionGraph) -> Dict[Node, Tuple[int, int]]:
    """Per-node (out_degree, in_degree) counted over connected pairs."""
    out_deg: Dict[Node, int] = {}
    in_deg: Dict[Node, int] = {}
    for src, dst in graph.connected_pairs:
        out_deg[src] = out_deg.get(src, 0) + 1
        in_deg[dst] = in_deg.get(dst, 0) + 1
    return {
        node: (out_deg.get(node, 0), in_deg.get(node, 0)) for node in graph.nodes
    }


def flow_distribution_quantiles(
    graph: InteractionGraph, quantiles: Tuple[float, ...] = (0.5, 0.9, 0.99)
) -> Dict[float, float]:
    """Empirical quantiles of the edge-flow distribution.

    Used by the dataset generators' self-checks: Bitcoin-like flows must be
    heavy-tailed (p99 far above the median), Passenger-like must not.
    """
    flows = sorted(it.flow for it in graph.interactions())
    if not flows:
        raise ValueError("cannot compute quantiles of an empty graph")
    result = {}
    for q in quantiles:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        index = min(len(flows) - 1, int(q * len(flows)))
        result[q] = flows[index]
    return result


def inter_event_times(graph: InteractionGraph) -> List[float]:
    """Sorted gaps between consecutive events on each connected pair.

    A proxy for how many events a δ-window captures; generators use it to
    calibrate event density against the paper's default windows.
    """
    ts = graph.to_time_series()
    gaps: List[float] = []
    for series in ts.all_series():
        times = series.times
        gaps.extend(times[i + 1] - times[i] for i in range(len(times) - 1))
    gaps.sort()
    return gaps
