"""Reading and writing interaction networks.

The paper's datasets are edge lists: one interaction per record with source,
target, timestamp and flow. We support three interchange formats:

* **CSV/TSV** — columns ``src,dst,time,flow`` with an optional header row;
  the delimiter is sniffed from the first line unless given.
* **JSON Lines** — one ``{"src":…, "dst":…, "time":…, "flow":…}`` per line.

Paths ending in ``.gz`` (``edges.csv.gz``, ``edges.jsonl.gz``) are
compressed/decompressed transparently by every reader and writer — real
interaction datasets ship gzipped, and the edge lists compress an order of
magnitude.

Malformed rows raise :class:`InteractionFormatError` carrying the line
number, unless ``on_error="skip"`` is passed.
"""

from __future__ import annotations

import gzip
import json
import os
from typing import Callable, Iterator, Optional, TextIO, Union

from repro.graph.events import Interaction
from repro.graph.interaction import InteractionGraph

PathOrFile = Union[str, "os.PathLike[str]", TextIO]

_HEADER_NAMES = {"src", "source", "from", "u"}


class InteractionFormatError(ValueError):
    """Raised when a record in an interaction file cannot be parsed."""

    def __init__(self, message: str, line_number: int) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def _open_maybe(path_or_file: PathOrFile, mode: str):
    """Return (file, needs_close) for a path or an already-open file.

    Paths with a ``.gz`` suffix are opened through :mod:`gzip` in text
    mode, so callers read/write plain lines either way.
    """
    if hasattr(path_or_file, "read") or hasattr(path_or_file, "write"):
        return path_or_file, False
    if str(os.fspath(path_or_file)).endswith(".gz"):
        return gzip.open(path_or_file, mode + "t", encoding="utf-8"), True
    return open(path_or_file, mode, encoding="utf-8"), True


def _parse_node(token: str):
    """Interpret a node token: integer if it looks like one, else string."""
    token = token.strip()
    if token and (token.isdigit() or (token[0] == "-" and token[1:].isdigit())):
        return int(token)
    return token


def _sniff_delimiter(line: str) -> str:
    for candidate in ("\t", ",", ";", " "):
        if candidate in line:
            return candidate
    raise InteractionFormatError(
        f"cannot detect delimiter in {line!r}", line_number=1
    )


def iter_csv_interactions(
    path_or_file: PathOrFile,
    delimiter: Optional[str] = None,
    on_error: str = "raise",
    error_sink: Optional[Callable[[int, str, str], None]] = None,
) -> Iterator[Interaction]:
    """Yield interactions from a delimited text file.

    Parameters
    ----------
    path_or_file:
        File path or open text file with ``src<sep>dst<sep>time<sep>flow``
        records.
    delimiter:
        Field separator; sniffed from the first line when omitted.
    on_error:
        ``"raise"`` (default) aborts on the first malformed record;
        ``"skip"`` drops malformed records (quarantine).
    error_sink:
        Optional ``(line_number, message, raw_line)`` callback invoked for
        every record dropped by ``on_error="skip"`` — the CLI uses it to
        count and report quarantined lines instead of dropping them
        silently.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    handle, needs_close = _open_maybe(path_or_file, "r")
    try:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if delimiter is None:
                try:
                    delimiter = _sniff_delimiter(line)
                except InteractionFormatError as exc:
                    if on_error == "skip":
                        # A one-field garbage line must not abort the
                        # stream before the delimiter is even known.
                        if error_sink is not None:
                            error_sink(line_number, str(exc), line)
                        continue
                    raise
            fields = [f for f in line.split(delimiter) if f != ""]
            if line_number == 1 and fields and fields[0].lower() in _HEADER_NAMES:
                continue  # header row
            try:
                if len(fields) != 4:
                    raise ValueError(
                        f"expected 4 fields, got {len(fields)} in {line!r}"
                    )
                src, dst = _parse_node(fields[0]), _parse_node(fields[1])
                interaction = Interaction(
                    src, dst, float(fields[2]), float(fields[3])
                ).validate()
            except ValueError as exc:
                if on_error == "skip":
                    if error_sink is not None:
                        error_sink(line_number, str(exc), line)
                    continue
                raise InteractionFormatError(str(exc), line_number) from exc
            yield interaction
    finally:
        if needs_close:
            handle.close()


def read_csv(
    path_or_file: PathOrFile,
    delimiter: Optional[str] = None,
    on_error: str = "raise",
) -> InteractionGraph:
    """Load a whole delimited file into an :class:`InteractionGraph`."""
    return InteractionGraph(
        iter_csv_interactions(path_or_file, delimiter=delimiter, on_error=on_error)
    )


def write_csv(
    graph: InteractionGraph,
    path_or_file: PathOrFile,
    delimiter: str = ",",
    header: bool = True,
) -> None:
    """Write the multigraph as a delimited edge list (sorted by time)."""
    handle, needs_close = _open_maybe(path_or_file, "w")
    try:
        if header:
            handle.write(delimiter.join(("src", "dst", "time", "flow")) + "\n")
        for it in graph.interactions_sorted():
            handle.write(
                delimiter.join(
                    (str(it.src), str(it.dst), repr(float(it.time)), repr(float(it.flow)))
                )
                + "\n"
            )
    finally:
        if needs_close:
            handle.close()


def iter_jsonl_interactions(
    path_or_file: PathOrFile,
    on_error: str = "raise",
    error_sink: Optional[Callable[[int, str, str], None]] = None,
) -> Iterator[Interaction]:
    """Yield interactions from a JSON-lines file.

    ``error_sink`` mirrors :func:`iter_csv_interactions`: called with
    ``(line_number, message, raw_line)`` for records dropped by
    ``on_error="skip"``.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    handle, needs_close = _open_maybe(path_or_file, "r")
    try:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                interaction = Interaction(
                    record["src"],
                    record["dst"],
                    float(record["time"]),
                    float(record["flow"]),
                ).validate()
            except (ValueError, KeyError, TypeError) as exc:
                if on_error == "skip":
                    if error_sink is not None:
                        error_sink(line_number, str(exc), line)
                    continue
                raise InteractionFormatError(str(exc), line_number) from exc
            yield interaction
    finally:
        if needs_close:
            handle.close()


def read_jsonl(path_or_file: PathOrFile, on_error: str = "raise") -> InteractionGraph:
    """Load a JSON-lines edge list into an :class:`InteractionGraph`."""
    return InteractionGraph(iter_jsonl_interactions(path_or_file, on_error=on_error))


def write_jsonl(graph: InteractionGraph, path_or_file: PathOrFile) -> None:
    """Write the multigraph as JSON lines (sorted by time)."""
    handle, needs_close = _open_maybe(path_or_file, "w")
    try:
        for it in graph.interactions_sorted():
            handle.write(
                json.dumps(
                    {"src": it.src, "dst": it.dst, "time": it.time, "flow": it.flow}
                )
                + "\n"
            )
    finally:
        if needs_close:
            handle.close()
