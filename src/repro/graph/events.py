"""The atomic record of an interaction network: one timestamped flow transfer."""

from __future__ import annotations

import math
from typing import NamedTuple, Union

Node = Union[int, str]


class Interaction(NamedTuple):
    """A single edge of the interaction multigraph ``G(V, E)``.

    Matches the paper's edge annotation ``(t, f)``: ``src`` sent ``flow``
    units to ``dst`` at time ``time``. Timestamps live in a continuous
    domain; flows are positive reals (Definition in Section 3).
    """

    src: Node
    dst: Node
    time: float
    flow: float

    def validate(self) -> "Interaction":
        """Return ``self`` after checking the Section 3 requirements.

        Raises
        ------
        ValueError
            If the flow is not strictly positive, or time/flow are not
            finite numbers.
        """
        time, flow = self.time, self.flow
        if isinstance(time, bool) or not isinstance(time, (int, float)):
            raise ValueError(f"interaction time must be a number, got {time!r}")
        if isinstance(flow, bool) or not isinstance(flow, (int, float)):
            raise ValueError(f"interaction flow must be a number, got {flow!r}")
        if math.isnan(time) or math.isinf(time):
            raise ValueError(f"interaction time must be finite, got {time!r}")
        if math.isnan(flow) or math.isinf(flow):
            raise ValueError(f"interaction flow must be finite, got {flow!r}")
        if flow <= 0:
            raise ValueError(
                f"interaction flow must be positive, got {flow!r} "
                f"({self.src}->{self.dst} at t={time})"
            )
        return self
