"""Columnar zero-copy storage for :class:`~repro.graph.timeseries.TimeSeriesGraph`.

The list-backed :class:`~repro.graph.timeseries.EdgeSeries` keeps three
Python lists per connected pair. That representation is flexible but costly
at scale: every process-pool dispatch pickles entire event lists, and every
slice copies. :class:`ColumnStore` flattens *all* series of a graph into
four contiguous typed buffers (stdlib :mod:`array` — no new dependency):

``times``   float64, all timestamps, series-concatenated in slot order
``flows``   float64, all flows, same layout
``cum``     float64, per-series prefix sums (``len(series) + 1`` entries
            each, so slot ``i``'s block starts at ``offsets[i] + i``)
``offsets`` int64, ``num_series + 1`` event offsets; slot ``i``'s events
            live in ``times[offsets[i]:offsets[i+1]]``

Slots are assigned in the graph's deterministic ``all_series()`` order and
indexed by ``(src, dst)`` pair. :class:`ColumnarEdgeSeries` is an
:class:`EdgeSeries` whose backing containers are memoryview slices of these
buffers — a zero-copy *view* that keeps the exact public API, so everything
in :mod:`repro.core`, :mod:`repro.baselines` and :mod:`repro.experiments`
works unchanged on a columnar graph.

Shared-memory lifecycle
-----------------------
``store.to_shared()`` serializes the whole store into **one**
``multiprocessing.shared_memory`` block (header + JSON pair table + the
four buffers); ``ColumnStore.attach(name)`` maps it back in another process
without copying a byte. The creator calls ``close(unlink=True)`` when every
worker is done; attachers either call ``close()`` or simply exit (the
segment is reference-counted by the OS, not the interpreter). The parallel
engine (:mod:`repro.parallel.engine`) uses exactly this path so process
workers receive only ``(shm_name, shard bounds)`` instead of pickled event
lists.
"""

from __future__ import annotations

import json
import logging
import os
from array import array
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.graph.events import Node
from repro.graph.timeseries import EdgeSeries, TimeSeriesGraph
from repro.resilience import shm_registry as _shm_registry
from repro.resilience.shm_registry import (
    SEGMENT_HEADER as _HEADER,
    SEGMENT_MAGIC as _MAGIC,
    SHM_FORMAT_VERSION as _SHM_VERSION,
    SegmentCorruptionError,
)

__all__ = [
    "ColumnarEdgeSeries",
    "ColumnStore",
    "GrowableColumnStore",
    "columnarize",
    "supports_columnar",
]

LOG = logging.getLogger("repro.graph.columnar")

#: Shared-memory header layout (magic, format version, JSON metadata byte
#: length) is canonically defined in :mod:`repro.resilience.shm_registry`
#: so the orphan scanner can recognize segments without importing this
#: module; imported above as ``_MAGIC``/``_HEADER``.
_ALIGN = 8


class ColumnarEdgeSeries(EdgeSeries):
    """A zero-copy :class:`EdgeSeries` view over :class:`ColumnStore` buffers.

    ``times``, ``flows`` and ``_cum`` are memoryview slices of the store's
    flat arrays; construction neither sorts nor copies (the store flattened
    already-sorted series). ``slot`` is the series' position in the store.
    """

    __slots__ = ("slot",)

    def __init__(
        self,
        src: Node,
        dst: Node,
        times: memoryview,
        flows: memoryview,
        cum: memoryview,
        slot: int,
    ) -> None:
        # Deliberately does not call EdgeSeries.__init__: the buffers are
        # pre-sorted, pre-validated and must not be copied into lists.
        self.src = src
        self.dst = dst
        self.times = times
        self.flows = flows
        self._cum = cum
        self.slot = slot

    def slice(self, lo: int, hi: int) -> "ColumnarEdgeSeries":
        """Zero-copy sub-series of the elements with index in ``[lo, hi]``.

        The ``_cum`` slice keeps one extra leading entry; ``total_flow``
        and ``flow_between`` are prefix-sum *differences*, so the nonzero
        base cancels out.
        """
        return ColumnarEdgeSeries(
            self.src,
            self.dst,
            self.times[lo : hi + 1],
            self.flows[lo : hi + 1],
            self._cum[lo : hi + 2],
            self.slot,
        )

    def append(self, time: float, flow: float) -> None:
        """Columnar views are immutable snapshots — appending is an error.

        Streams should grow a list-backed :class:`EdgeSeries` (see
        :meth:`EdgeSeries.append`) or a :class:`GrowableColumnStore` and
        snapshot into flat columns when a batch completes.
        """
        raise TypeError(
            f"cannot append to the zero-copy columnar view "
            f"{self.src!r}->{self.dst!r}; grow a list-backed EdgeSeries or "
            "a GrowableColumnStore instead"
        )


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def _check_node(node: Node) -> Node:
    if not isinstance(node, (int, str)) or isinstance(node, bool):
        raise TypeError(
            "columnar storage requires int or str node ids, "
            f"got {type(node).__name__} ({node!r})"
        )
    return node


def _lossless_float64(value) -> bool:
    """Whether a timestamp/flow survives the float64 columns bit-exactly.

    Python floats already are float64. int values are exact up to 2^53
    (and must not overflow). Anything else (Fraction, Decimal, ...) is
    rejected outright — float() would round it silently.
    """
    if isinstance(value, float):
        return True
    if isinstance(value, int) and not isinstance(value, bool):
        try:
            return int(float(value)) == value
        except OverflowError:
            return False
    return False


def supports_columnar(graph: TimeSeriesGraph) -> bool:
    """Whether a graph can live in a :class:`ColumnStore` bit-exactly.

    Two requirements: node ids must be ``int`` or ``str`` (the
    shared-memory pair table is JSON), and every timestamp/flow must be
    exactly representable as float64 (int values past 2^53 and non-float
    numeric types like ``Fraction`` are not). :meth:`ColumnStore.
    from_graph` enforces the same rules by raising; this predicate lets
    callers (e.g. the parallel engine's automatic fallback) ask first.
    """
    if not all(
        isinstance(node, (int, str)) and not isinstance(node, bool)
        for node in graph.nodes
    ):
        return False
    return all(
        _lossless_float64(t) and _lossless_float64(f)
        for series in graph.all_series()
        for t, f in zip(series.times, series.flows)
    )


class ColumnStore:
    """Flat columnar layout of every :class:`EdgeSeries` in one graph.

    Build with :meth:`from_graph`, map a shared copy with :meth:`attach`.
    ``times``/``flows``/``cum``/``offsets`` are memoryviews over either
    process-local :mod:`array` buffers or a shared-memory block; all view
    construction is zero-copy either way.
    """

    def __init__(
        self,
        pairs: List[Tuple[Node, Node]],
        times: memoryview,
        flows: memoryview,
        cum: memoryview,
        offsets: memoryview,
        shm=None,
        owns_shm: bool = False,
    ) -> None:
        self.pairs = pairs
        self.times = times
        self.flows = flows
        self.cum = cum
        self.offsets = offsets
        self._slot_by_pair: Dict[Tuple[Node, Node], int] = {
            pair: slot for slot, pair in enumerate(pairs)
        }
        self._shm = shm
        self._owns_shm = owns_shm
        #: Pid of the exporting process (set on attach; None otherwise).
        self.creator_pid: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(
        cls, graph: Union[TimeSeriesGraph, "object"]
    ) -> "ColumnStore":
        """Flatten a graph's series into contiguous typed arrays.

        Accepts a :class:`TimeSeriesGraph` or anything with a
        ``to_time_series()`` method (e.g. ``InteractionGraph``).
        """
        if not isinstance(graph, TimeSeriesGraph):
            to_ts = getattr(graph, "to_time_series", None)
            if to_ts is None:
                raise TypeError(
                    "graph must be a TimeSeriesGraph or provide "
                    f"to_time_series(), got {type(graph).__name__}"
                )
            graph = to_ts()
        series_list = graph.all_series()
        pairs: List[Tuple[Node, Node]] = []
        times = array("d")
        flows = array("d")
        cum = array("d")
        offsets = array("q", [0])
        for series in series_list:
            pairs.append((_check_node(series.src), _check_node(series.dst)))
            for value in series.times:
                if not _lossless_float64(value):
                    raise ValueError(
                        f"timestamp {value!r} on {series.src}->{series.dst} "
                        "is not exactly representable as float64; columnar "
                        "storage would silently alter it"
                    )
            for value in series.flows:
                if not _lossless_float64(value):
                    raise ValueError(
                        f"flow {value!r} on {series.src}->{series.dst} "
                        "is not exactly representable as float64; columnar "
                        "storage would silently alter it"
                    )
            times.extend(series.times)
            flows.extend(series.flows)
            cum.extend(series._cum)
            offsets.append(len(times))
        return cls(
            pairs,
            memoryview(times),
            memoryview(flows),
            memoryview(cum),
            memoryview(offsets),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_series(self) -> int:
        """Number of stored series (``|E_T|``)."""
        return len(self.pairs)

    @property
    def num_events(self) -> int:
        """Total number of stored interactions (``|E|``)."""
        return len(self.times)

    @property
    def nbytes(self) -> int:
        """Bytes held by the four flat buffers."""
        return sum(
            v.nbytes for v in (self.times, self.flows, self.cum, self.offsets)
        )

    @property
    def shm_name(self) -> Optional[str]:
        """Name of the backing shared-memory block (None when local)."""
        return self._shm.name if self._shm is not None else None

    def slot(self, src: Node, dst: Node) -> Optional[int]:
        """The slot of pair ``(src, dst)``, or None when absent."""
        return self._slot_by_pair.get((src, dst))

    def __repr__(self) -> str:
        backing = (
            f"shm={self._shm.name!r}" if self._shm is not None else "local"
        )
        return (
            f"ColumnStore({self.num_series} series, "
            f"{self.num_events} events, {self.nbytes} bytes, {backing})"
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def series_view(self, slot: int) -> ColumnarEdgeSeries:
        """The zero-copy :class:`ColumnarEdgeSeries` for one slot."""
        src, dst = self.pairs[slot]
        lo = self.offsets[slot]
        hi = self.offsets[slot + 1]
        # Slot i's cum block carries one extra leading element per
        # preceding series, hence the +slot shift.
        return ColumnarEdgeSeries(
            src,
            dst,
            self.times[lo:hi],
            self.flows[lo:hi],
            self.cum[lo + slot : hi + slot + 1],
            slot,
        )

    def iter_series(self) -> Iterable[ColumnarEdgeSeries]:
        """All series views in slot order."""
        return (self.series_view(slot) for slot in range(self.num_series))

    def to_graph(self) -> TimeSeriesGraph:
        """A :class:`TimeSeriesGraph` whose series are zero-copy views.

        The returned graph keeps a reference to this store (and therefore
        to its shared-memory mapping, when present) alive for its lifetime.
        """
        graph = TimeSeriesGraph(self.iter_series())
        graph._column_store = self  # keep the backing buffers alive
        return graph

    # ------------------------------------------------------------------
    # Shared-memory export / attach
    # ------------------------------------------------------------------

    def _metadata_bytes(self) -> bytes:
        meta = {
            "num_series": self.num_series,
            "num_events": self.num_events,
            # Creator pid: lets attachers and the orphan scanner detect
            # segments whose exporting process died without unlinking.
            "pid": os.getpid(),
            "pairs": [[src, dst] for src, dst in self.pairs],
        }
        return json.dumps(meta, separators=(",", ":")).encode("utf-8")

    def to_shared(self, name: Optional[str] = None) -> "ColumnStore":
        """Copy this store into one new shared-memory block.

        Returns a new :class:`ColumnStore` whose buffers are views of the
        block; the returned store *owns* the block (``close(unlink=True)``
        removes it). The single copy happens here — every later
        :meth:`attach` and every view built on top is zero-copy.
        """
        from multiprocessing import shared_memory

        meta = self._metadata_bytes()
        total = _layout(len(meta), self.num_series, self.num_events)[-1]
        shm = shared_memory.SharedMemory(
            create=True, size=max(total, 1), name=name
        )
        buf = shm.buf
        _HEADER.pack_into(buf, 0, _MAGIC, _SHM_VERSION, len(meta))
        buf[_HEADER.size : _HEADER.size + len(meta)] = meta
        offsets_v, times_v, flows_v, cum_v = _carve(
            buf, len(meta), self.num_series, self.num_events
        )
        offsets_v[:] = self.offsets
        times_v[:] = self.times
        flows_v[:] = self.flows
        cum_v[:] = self.cum
        store = ColumnStore(
            list(self.pairs), times_v, flows_v, cum_v, offsets_v,
            shm=shm, owns_shm=True,
        )
        # Crash-safe lifecycle: the registry's atexit/SIGTERM hooks unlink
        # this segment if the process dies before close(unlink=True).
        _shm_registry.register(store)
        return store

    @classmethod
    def attach(cls, name: str) -> "ColumnStore":
        """Map an exported store by shared-memory name, without copying.

        The attached store does not own the block: ``close()`` releases
        the local mapping only; the exporter is responsible for
        ``unlink``-ing.

        A block that is not a ColumnStore export — too short for the
        header, wrong magic, unsupported format version, or metadata
        that does not decode — raises a typed
        :class:`~repro.resilience.SegmentCorruptionError` instead of
        misreading foreign bytes as graph data.
        """
        shm = _open_shared_memory(name)
        buf = shm.buf
        size = len(buf)  # close() releases buf: snapshot before erroring
        if size < _HEADER.size:
            shm.close()
            raise SegmentCorruptionError(
                f"shared memory block {name!r} is {size} bytes — too "
                "short to hold a ColumnStore header; not ours"
            )
        magic, version, meta_len = _HEADER.unpack_from(buf, 0)
        if magic != _MAGIC:
            shm.close()
            raise SegmentCorruptionError(
                f"shared memory block {name!r} is not a ColumnStore "
                f"export (magic {magic!r})"
            )
        if version != _SHM_VERSION:
            shm.close()
            raise SegmentCorruptionError(
                f"shared memory block {name!r} has ColumnStore format "
                f"version {version}; this build attaches version "
                f"{_SHM_VERSION}"
            )
        if _HEADER.size + meta_len > size:
            shm.close()
            raise SegmentCorruptionError(
                f"shared memory block {name!r} metadata ({meta_len} "
                f"bytes) overruns the {size}-byte block"
            )
        try:
            meta = json.loads(
                bytes(buf[_HEADER.size : _HEADER.size + meta_len]).decode(
                    "utf-8"
                )
            )
            pairs = [(src, dst) for src, dst in meta["pairs"]]
            num_series, num_events = (
                int(meta["num_series"]),
                int(meta["num_events"]),
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            shm.close()
            raise SegmentCorruptionError(
                f"shared memory block {name!r} carries a ColumnStore "
                f"header but its metadata does not decode: {exc}"
            ) from exc
        if _layout(meta_len, num_series, num_events)[-1] > size:
            shm.close()
            raise SegmentCorruptionError(
                f"shared memory block {name!r} is smaller than the "
                "column layout its metadata promises"
            )
        offsets_v, times_v, flows_v, cum_v = _carve(
            buf, meta_len, num_series, num_events
        )
        store = cls(
            pairs, times_v, flows_v, cum_v, offsets_v, shm=shm, owns_shm=False
        )
        creator_pid = meta.get("pid")
        store.creator_pid = (
            creator_pid if isinstance(creator_pid, int) else None
        )
        if store.creator_pid is not None and not _shm_registry.pid_alive(
            store.creator_pid
        ):
            # Orphan: the exporter died without unlinking. The data is
            # still perfectly readable (attach proceeds), but nobody will
            # clean the segment up — flag it so operators can
            # reap_orphans() instead of leaking /dev/shm until reboot.
            LOG.warning(
                "attached orphaned shm segment %r: creator pid %d is dead; "
                "repro.resilience.reap_orphans() can reclaim it",
                name,
                store.creator_pid,
            )
        return store

    def close(self, unlink: bool = False) -> None:
        """Release buffer views and the shared-memory mapping.

        ``unlink=True`` (owner side) also removes the block from the
        system; plain ``close()`` only drops this process's mapping, so
        other attachments keep working. Safe to call twice. Must not be
        called while graph views built from this store are still alive —
        their memoryviews pin the mapping (``BufferError``); a requested
        unlink happens first regardless, so the block is removed even
        when the local mapping cannot be closed yet.
        """
        for attr in ("times", "flows", "cum", "offsets"):
            view = getattr(self, attr, None)
            if isinstance(view, memoryview):
                view.release()
            setattr(self, attr, None)
        if self._shm is not None:
            shm, self._shm = self._shm, None
            if self._owns_shm:
                # Deliberate close: the crash-cleanup registry must not
                # unlink this name again (it could have been reused).
                _shm_registry.unregister(shm.name)
            if unlink and hasattr(shm, "unlink"):
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
            shm.close()

    def unlink(self) -> None:
        """Remove the backing shared-memory block (owner-side cleanup)."""
        self.close(unlink=True)


def _layout(
    meta_len: int, num_series: int, num_events: int
) -> Tuple[int, int, int, int, int]:
    """Byte offsets of (offsets, times, flows, cum) plus total size.

    The single source of truth for the shared-block format — both
    :meth:`ColumnStore.to_shared` and :meth:`ColumnStore.attach` carve
    with it.
    """
    off0 = _align(_HEADER.size + meta_len)
    off1 = off0 + 8 * (num_series + 1)  # offsets: int64
    off2 = off1 + 8 * num_events  # times: float64
    off3 = off2 + 8 * num_events  # flows: float64
    total = off3 + 8 * (num_events + num_series)  # cum: float64
    return off0, off1, off2, off3, total


def _carve(
    buf: memoryview, meta_len: int, num_series: int, num_events: int
) -> Tuple[memoryview, memoryview, memoryview, memoryview]:
    """Cast the four column regions of a shared buffer to typed views."""
    off0, off1, off2, off3, end = _layout(meta_len, num_series, num_events)
    offsets_v = buf[off0:off1].cast("q")
    times_v = buf[off1:off2].cast("d")
    flows_v = buf[off2:off3].cast("d")
    cum_v = buf[off3:end].cast("d")
    return offsets_v, times_v, flows_v, cum_v


class _AttachedBlock:
    """Minimal stand-in for ``SharedMemory`` on attach-only mappings.

    Provides the ``name``/``buf``/``close()`` surface :class:`ColumnStore`
    uses, backed by a direct ``shm_open`` + ``mmap`` pair. Exists because
    Python < 3.13 registers even attach-only ``SharedMemory`` objects with
    the multiprocessing resource tracker, which then either unlinks the
    exporter's block when an attaching process exits (spawn) or corrupts
    the shared registry (fork). Attachers never unlink, so no tracking is
    wanted.
    """

    def __init__(self, name: str, mm) -> None:
        self.name = name
        self._mmap = mm
        self.buf: Optional[memoryview] = memoryview(mm)

    def close(self) -> None:
        if self.buf is not None:
            self.buf.release()
            self.buf = None
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None


def _open_shared_memory(name: str):
    """Attach to an existing block without resource-tracker side effects."""
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    try:
        import _posixshmem
        import mmap
        import os
    except ImportError:  # non-POSIX: tracker is not involved anyway
        return shared_memory.SharedMemory(name=name, create=False)
    fd = _posixshmem.shm_open(
        name if name.startswith("/") else "/" + name, os.O_RDWR, mode=0o600
    )
    try:
        mm = mmap.mmap(fd, os.fstat(fd).st_size)
    finally:
        os.close(fd)
    return _AttachedBlock(name, mm)


class GrowableColumnStore:
    """Append-friendly typed ingestion buffer for streaming workloads.

    :class:`ColumnStore` is frozen by design — its series-concatenated
    layout cannot absorb a new event in the middle of the ``times`` column
    without shifting everything behind it. This variant keeps the columns
    in **arrival order** (``times``/``flows`` plus an int64 pair-slot
    column), so :meth:`append` is O(1) amortized with the same compact
    typed-array footprint, and :meth:`snapshot` produces a frozen
    :class:`ColumnStore` in one O(|E|) stable counting pass when a batch
    completes (per-pair arrival order is enforced non-decreasing at
    append time, exactly like
    :meth:`~repro.graph.timeseries.GrowableTimeSeriesGraph.append`, so
    the snapshot never sorts).

    Typical cycle: feed a micro-batch, ``snapshot().to_shared()`` for the
    parallel workers, keep appending.
    """

    def __init__(self) -> None:
        self._times = array("d")
        self._flows = array("d")
        self._slots = array("q")
        self._pairs: List[Tuple[Node, Node]] = []
        self._slot_by_pair: Dict[Tuple[Node, Node], int] = {}
        self._tail_time = array("d")  # last timestamp per pair slot

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------

    def append(self, src: Node, dst: Node, time: float, flow: float) -> bool:
        """Ingest one interaction; returns True when ``(src, dst)`` is new.

        Validates what :meth:`ColumnStore.from_graph` would: int/str node
        ids, float64-lossless values, positive flow, and per-pair
        non-decreasing timestamps.
        """
        if not _lossless_float64(time):
            raise ValueError(
                f"timestamp {time!r} on {src}->{dst} is not exactly "
                "representable as float64"
            )
        if not _lossless_float64(flow):
            raise ValueError(
                f"flow {flow!r} on {src}->{dst} is not exactly "
                "representable as float64"
            )
        if flow <= 0:
            raise ValueError(
                f"flows must be positive, got {flow!r} on {src}->{dst}"
            )
        key = (_check_node(src), _check_node(dst))
        slot = self._slot_by_pair.get(key)
        is_new = slot is None
        if is_new:
            slot = len(self._pairs)
            self._slot_by_pair[key] = slot
            self._pairs.append(key)
            self._tail_time.append(time)
        else:
            if time < self._tail_time[slot]:
                raise ValueError(
                    f"append out of order on {src}->{dst}: t={time!r} "
                    f"precedes the series tail t={self._tail_time[slot]!r}"
                )
            self._tail_time[slot] = time
        self._times.append(time)
        self._flows.append(flow)
        self._slots.append(slot)
        return is_new

    def extend(self, interactions: Iterable) -> int:
        """Append many ``(src, dst, time, flow)`` tuples; returns count."""
        n = 0
        for src, dst, time, flow in interactions:
            self.append(src, dst, time, flow)
            n += 1
        return n

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_events(self) -> int:
        return len(self._times)

    @property
    def num_series(self) -> int:
        return len(self._pairs)

    @property
    def nbytes(self) -> int:
        return (
            self._times.itemsize * len(self._times)
            + self._flows.itemsize * len(self._flows)
            + self._slots.itemsize * len(self._slots)
        )

    def __repr__(self) -> str:
        return (
            f"GrowableColumnStore({self.num_series} series, "
            f"{self.num_events} events, {self.nbytes} bytes)"
        )

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------

    def snapshot(self) -> ColumnStore:
        """Freeze the current contents into a :class:`ColumnStore`.

        One stable counting pass regroups the arrival-order columns into
        the store's series-concatenated layout; per-pair time order was
        enforced at append time, so no sorting happens. The snapshot is
        independent of this buffer — appending afterwards never mutates
        earlier snapshots.
        """
        num_series = len(self._pairs)
        n = len(self._times)
        counts = [0] * num_series
        for slot in self._slots:
            counts[slot] += 1
        offsets = array("q", bytes(8 * (num_series + 1)))
        for i, c in enumerate(counts):
            offsets[i + 1] = offsets[i] + c
        times = array("d", bytes(8 * n))
        flows = array("d", bytes(8 * n))
        position = list(offsets[:num_series])
        src_times, src_flows, src_slots = self._times, self._flows, self._slots
        for k in range(n):
            slot = src_slots[k]
            at = position[slot]
            times[at] = src_times[k]
            flows[at] = src_flows[k]
            position[slot] = at + 1
        cum = array("d", bytes(8 * (n + num_series)))
        at = 0
        for slot in range(num_series):
            cum[at] = 0.0
            running = 0.0
            base = at + 1
            for i in range(offsets[slot], offsets[slot + 1]):
                running += flows[i]
                cum[base + i - offsets[slot]] = running
            at = base + counts[slot]
        return ColumnStore(
            list(self._pairs),
            memoryview(times),
            memoryview(flows),
            memoryview(cum),
            memoryview(offsets),
        )

    def to_graph(self) -> TimeSeriesGraph:
        """Shorthand for ``snapshot().to_graph()``."""
        return self.snapshot().to_graph()

    def seal_to(self, path: str) -> dict:
        """Freeze the buffer and seal it into a durable segment file.

        ``seal_to(path)`` is ``snapshot()`` plus
        :func:`repro.graph.segments.write_segment`: the atomic
        tmp-fsync-rename protocol with per-column CRCs, so the ingested
        events survive any crash from the rename on. Returns the
        segment metadata (including the column CRCs). The buffer itself
        is left untouched — callers managing an LSM lifecycle should
        use :class:`~repro.graph.segments.SegmentStore`, which also
        resets the memtable and records the seal in its manifest.
        """
        from repro.graph.segments import write_segment

        return write_segment(self.snapshot(), path)


def columnarize(
    graph: Union[TimeSeriesGraph, "object"]
) -> TimeSeriesGraph:
    """Convenience: rebuild a graph on columnar zero-copy storage.

    ``columnarize(g)`` is equivalent to
    ``ColumnStore.from_graph(g).to_graph()``; the result behaves exactly
    like ``g`` (equal series, same search output) but is backed by flat
    contiguous buffers.
    """
    return ColumnStore.from_graph(graph).to_graph()
