"""Dataset transformations used by the paper's preprocessing and experiments.

* :func:`bucket_interactions` — the Facebook preprocessing (Section 6.1):
  interactions of each ordered pair are aggregated into fixed-length time
  buckets; the bucket start becomes the timestamp, the summed count/flow the
  edge flow.
* :func:`filter_min_flow` — the Bitcoin "dust" filter (drop interactions
  below 0.0001 BTC in the paper).
* :func:`time_prefix` / :func:`time_prefix_samples` — the scalability
  samples of Section 6.2.4 (B1..B5, F1..F5, T1..T4 are prefixes of the
  covered time period).
* :func:`induced_subgraph`, :func:`relabel_nodes` — generic utilities.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Sequence, Set, Tuple

from repro.graph.events import Interaction, Node
from repro.graph.interaction import InteractionGraph


def bucket_interactions(
    graph: InteractionGraph,
    bucket_seconds: float,
    origin: float = 0.0,
) -> InteractionGraph:
    """Aggregate per-pair interactions into fixed-width time buckets.

    For every ordered pair ``(u, v)`` and every bucket ``[ts, ts + w)``, all
    interactions of the pair inside the bucket are merged into a single edge
    timestamped at the bucket start ``ts`` whose flow is the sum of the
    merged flows — exactly the paper's 30-second Facebook aggregation.

    Parameters
    ----------
    graph:
        The raw interaction multigraph.
    bucket_seconds:
        Bucket width ``w`` (must be positive).
    origin:
        Bucket grid origin; bucket k covers ``[origin + k*w, origin + (k+1)*w)``.
    """
    if bucket_seconds <= 0:
        raise ValueError(f"bucket_seconds must be positive, got {bucket_seconds!r}")
    merged: Dict[Tuple[Node, Node, int], float] = {}
    for it in graph.interactions():
        bucket = math.floor((it.time - origin) / bucket_seconds)
        key = (it.src, it.dst, bucket)
        merged[key] = merged.get(key, 0.0) + it.flow
    out = InteractionGraph()
    for (src, dst, bucket), flow in sorted(merged.items(), key=lambda kv: repr(kv[0])):
        out.add_interaction(src, dst, origin + bucket * bucket_seconds, flow)
    return out


def filter_min_flow(graph: InteractionGraph, min_flow: float) -> InteractionGraph:
    """Drop interactions with flow strictly below ``min_flow``.

    The paper applies this to Bitcoin with ``min_flow = 0.0001`` BTC to
    remove insignificant transactions.
    """
    out = InteractionGraph()
    for it in graph.interactions():
        if it.flow >= min_flow:
            out.add(it)
    return out


def filter_interactions(
    graph: InteractionGraph, predicate: Callable[[Interaction], bool]
) -> InteractionGraph:
    """Keep only interactions satisfying ``predicate``."""
    out = InteractionGraph()
    for it in graph.interactions():
        if predicate(it):
            out.add(it)
    return out


def time_prefix(graph: InteractionGraph, fraction: float) -> InteractionGraph:
    """The sub-multigraph of interactions in the first ``fraction`` of the
    covered time period.

    ``fraction = 0.5`` keeps every interaction with
    ``t <= t_min + 0.5 * (t_max - t_min)``. Section 6.2.4 builds its samples
    this way (e.g. B1 is the first month out of nine).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")
    t_min, t_max = graph.time_span
    cutoff = t_min + fraction * (t_max - t_min)
    return filter_interactions(graph, lambda it: it.time <= cutoff)


def time_prefix_samples(
    graph: InteractionGraph,
    fractions: Sequence[float],
    names: Sequence[str],
) -> List[Tuple[str, InteractionGraph]]:
    """Named time-prefix samples, e.g. B1..B5 with fractions (1/9, 2/9, ...).

    Returns ``[(name, subgraph), ...]`` in the given order.
    """
    if len(fractions) != len(names):
        raise ValueError("fractions and names must have equal length")
    return [(name, time_prefix(graph, f)) for name, f in zip(names, fractions)]


def induced_subgraph(graph: InteractionGraph, nodes: Iterable[Node]) -> InteractionGraph:
    """Keep only interactions whose both endpoints are in ``nodes``."""
    keep: Set[Node] = set(nodes)
    return filter_interactions(
        graph, lambda it: it.src in keep and it.dst in keep
    )


def relabel_nodes(
    graph: InteractionGraph, mapping: Dict[Node, Node]
) -> InteractionGraph:
    """Rename vertices; identities not in ``mapping`` are kept as-is.

    This is how the Bitcoin address-merge heuristic is expressed: a mapping
    from address to user collapses several addresses onto one node (parallel
    edges produced by the merge are preserved, as in the paper).
    """
    out = InteractionGraph()
    for it in graph.interactions():
        out.add_interaction(
            mapping.get(it.src, it.src),
            mapping.get(it.dst, it.dst),
            it.time,
            it.flow,
        )
    return out


def merge_addresses(
    graph: InteractionGraph, co_input_groups: Iterable[Iterable[Node]]
) -> InteractionGraph:
    """Apply the paper's Bitcoin address-merge heuristic.

    Addresses that appear together as inputs of one transaction are assumed
    to belong to one user. ``co_input_groups`` lists such groups; they are
    unioned transitively (union-find) and every address is relabelled to its
    group representative.
    """
    parent: Dict[Node, Node] = {}

    def find(x: Node) -> Node:
        root = x
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(x, x) != x:
            parent[x], x = root, parent[x]
        return root

    for group in co_input_groups:
        members = list(group)
        if not members:
            continue
        head = find(members[0])
        for member in members[1:]:
            parent[find(member)] = head

    mapping = {node: find(node) for node in graph.nodes if find(node) != node}
    return relabel_nodes(graph, mapping)
