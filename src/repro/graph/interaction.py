"""The input interaction multigraph ``G(V, E)``.

This is the user-facing container: interactions are appended in any order,
validated eagerly, and converted on demand to the
:class:`~repro.graph.timeseries.TimeSeriesGraph` view that the motif-search
algorithms consume (the conversion the paper describes in Section 4 and
Figure 5).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.graph.events import Interaction, Node
from repro.graph.timeseries import TimeSeriesGraph


class InteractionGraph:
    """A directed temporal multigraph with flow-annotated edges.

    Any number of parallel edges may connect the same ordered vertex pair;
    each edge is an :class:`~repro.graph.events.Interaction` ``(src, dst,
    time, flow)`` with positive flow. The container preserves insertion
    until converted; the time-series view sorts per pair by timestamp.

    Example
    -------
    >>> g = InteractionGraph()
    >>> g.add_interaction("u1", "u2", time=13, flow=5)
    >>> g.add_interaction("u1", "u2", time=15, flow=7)
    >>> g.num_edges
    2
    >>> g.num_connected_pairs
    1
    """

    def __init__(self, interactions: Optional[Iterable[Interaction]] = None) -> None:
        self._interactions: List[Interaction] = []
        self._nodes: Set[Node] = set()
        self._pairs: Set[Tuple[Node, Node]] = set()
        self._ts_cache: Optional[TimeSeriesGraph] = None
        if interactions is not None:
            for it in interactions:
                self.add(it)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add(self, interaction: Interaction) -> None:
        """Append one validated interaction edge."""
        interaction = Interaction(*interaction).validate()
        self._interactions.append(interaction)
        self._nodes.add(interaction.src)
        self._nodes.add(interaction.dst)
        self._pairs.add((interaction.src, interaction.dst))
        self._ts_cache = None

    def add_interaction(self, src: Node, dst: Node, time: float, flow: float) -> None:
        """Append one edge given its components (convenience wrapper)."""
        self.add(Interaction(src, dst, time, flow))

    @classmethod
    def from_tuples(
        cls, tuples: Iterable[Tuple[Node, Node, float, float]]
    ) -> "InteractionGraph":
        """Build from ``(src, dst, time, flow)`` tuples."""
        graph = cls()
        for src, dst, time, flow in tuples:
            graph.add_interaction(src, dst, time, flow)
        return graph

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> Set[Node]:
        """The vertex set."""
        return self._nodes

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of interactions, i.e. ``|E|`` of the multigraph."""
        return len(self._interactions)

    @property
    def num_connected_pairs(self) -> int:
        """Distinct ordered pairs with at least one edge (``|E_T|``)."""
        return len(self._pairs)

    @property
    def connected_pairs(self) -> Set[Tuple[Node, Node]]:
        """The set of connected ordered vertex pairs."""
        return set(self._pairs)

    def interactions(self) -> Iterator[Interaction]:
        """Iterate over interactions in insertion order."""
        return iter(self._interactions)

    def interactions_sorted(self) -> List[Interaction]:
        """All interactions sorted by (time, src, dst)."""
        return sorted(self._interactions, key=lambda it: (it.time, repr(it.src), repr(it.dst)))

    def __len__(self) -> int:
        return len(self._interactions)

    def __repr__(self) -> str:
        return (
            f"InteractionGraph({self.num_nodes} nodes, {self.num_edges} edges, "
            f"{self.num_connected_pairs} connected pairs)"
        )

    @property
    def time_span(self) -> Tuple[float, float]:
        """(earliest, latest) timestamp in the graph.

        Raises
        ------
        ValueError
            If the graph has no interactions.
        """
        if not self._interactions:
            raise ValueError("empty graph has no time span")
        times = [it.time for it in self._interactions]
        return (min(times), max(times))

    @property
    def total_flow(self) -> float:
        """Sum of all edge flows."""
        return sum(it.flow for it in self._interactions)

    @property
    def average_flow(self) -> float:
        """Average flow per edge (Table 3's last column)."""
        if not self._interactions:
            raise ValueError("empty graph has no average flow")
        return self.total_flow / len(self._interactions)

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------

    def to_time_series(self) -> TimeSeriesGraph:
        """The merged time-series view ``G_T`` (cached until next mutation)."""
        if self._ts_cache is None:
            self._ts_cache = TimeSeriesGraph.from_interactions(self._interactions)
        return self._ts_cache

    def copy(self) -> "InteractionGraph":
        """An independent copy of the multigraph."""
        return InteractionGraph(self._interactions)
