"""The time-series graph ``G_T`` and per-pair interaction series ``R(u, v)``.

Section 4 of the paper replaces the multigraph by a graph where all parallel
edges from ``u`` to ``v`` are merged into one edge annotated with the
time-ordered series ``R(u, v) = [(t1, f1), (t2, f2), ...]``. All motif-search
algorithms in :mod:`repro.core` operate on this view.

:class:`EdgeSeries` stores a series as two parallel, time-sorted arrays plus
a prefix-sum array of flows, so that

* locating window boundaries is ``O(log n)`` (binary search), and
* the aggregated flow of any contiguous run is ``O(1)``.

The backing arrays may be plain lists (this module) or zero-copy memoryview
slices over a flat :class:`~repro.graph.columnar.ColumnStore` buffer; every
accessor, as well as equality and hashing, is backend-agnostic, so the two
representations are interchangeable throughout :mod:`repro.core`.

Contiguous runs are all the algorithms ever need: a maximal motif instance
assigns to each motif edge *every* series element inside a time interval
(see :mod:`repro.core.enumeration`), which is a contiguous run of the series.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.graph.events import Interaction, Node


class EdgeSeries:
    """The interaction time series ``R(u, v)`` on one edge of ``G_T``.

    Parameters
    ----------
    src, dst:
        The vertex pair this series connects.
    times, flows:
        Parallel sequences of timestamps and positive flows. They are
        sorted by time on construction (stably, preserving the relative
        order of tied timestamps).
    """

    __slots__ = ("src", "dst", "times", "flows", "_cum")

    def __init__(
        self,
        src: Node,
        dst: Node,
        times: Sequence[float],
        flows: Sequence[float],
    ) -> None:
        if len(times) != len(flows):
            raise ValueError(
                f"times and flows must have equal length "
                f"({len(times)} != {len(flows)})"
            )
        if len(times) == 0:
            raise ValueError(f"edge series {src}->{dst} must not be empty")
        order = sorted(range(len(times)), key=lambda i: times[i])
        self.src = src
        self.dst = dst
        self.times: List[float] = [times[i] for i in order]
        self.flows: List[float] = [flows[i] for i in order]
        cum = [0.0] * (len(times) + 1)
        total = 0.0
        for i, f in enumerate(self.flows):
            if f <= 0:
                raise ValueError(
                    f"flows must be positive, got {f!r} on {src}->{dst}"
                )
            total += f
            cum[i + 1] = total
        self._cum = cum

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self.times, self.flows))

    def __repr__(self) -> str:
        return (
            f"EdgeSeries({self.src!r}->{self.dst!r}, "
            f"{len(self)} events, total_flow={self.total_flow:.4g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeSeries):
            return NotImplemented
        if (
            self.src != other.src
            or self.dst != other.dst
            or len(self.times) != len(other.times)
        ):
            return False
        if type(self.times) is list and type(other.times) is list:
            return self.times == other.times and self.flows == other.flows
        # Mixed backings: normalize, since memoryview == list is always
        # False even when the contents agree.
        return list(self.times) == list(other.times) and list(
            self.flows
        ) == list(other.flows)

    def __hash__(self) -> int:
        # tuple() normalizes the backing container, and hash(1) == hash(1.0)
        # keeps int-timed list series consistent with float columnar views.
        return hash((self.src, self.dst, tuple(self.times)))

    def time(self, index: int) -> float:
        """Timestamp of the ``index``-th element (0-based)."""
        return self.times[index]

    def flow(self, index: int) -> float:
        """Flow of the ``index``-th element (0-based)."""
        return self.flows[index]

    def item(self, index: int) -> Tuple[float, float]:
        """The ``(t, f)`` pair at ``index``."""
        return (self.times[index], self.flows[index])

    def items(self, lo: int, hi: int) -> List[Tuple[float, float]]:
        """The ``(t, f)`` pairs with index in the inclusive range [lo, hi]."""
        return list(zip(self.times[lo : hi + 1], self.flows[lo : hi + 1]))

    @property
    def total_flow(self) -> float:
        """Sum of all flows in the series.

        Computed as a prefix-sum difference so that zero-copy slices, whose
        ``_cum`` view starts at the parent's running total rather than 0,
        report the flow of the slice alone.
        """
        return self._cum[-1] - self._cum[0]

    @property
    def first_time(self) -> float:
        """Timestamp of the temporally first element."""
        return self.times[0]

    @property
    def last_time(self) -> float:
        """Timestamp of the temporally last element."""
        return self.times[-1]

    # ------------------------------------------------------------------
    # Binary-search accessors used by the window/enumeration machinery
    # ------------------------------------------------------------------

    def first_index_at_or_after(self, t: float) -> int:
        """Smallest index with ``times[i] >= t`` (== len when none)."""
        return bisect_left(self.times, t)

    def first_index_after(self, t: float) -> int:
        """Smallest index with ``times[i] > t`` (== len when none)."""
        return bisect_right(self.times, t)

    def last_index_at_or_before(self, t: float) -> int:
        """Largest index with ``times[i] <= t`` (== -1 when none)."""
        return bisect_right(self.times, t) - 1

    def flow_between(self, lo: int, hi: int) -> float:
        """Aggregated flow of elements with index in the inclusive [lo, hi].

        Returns 0.0 for an empty range (``hi < lo``). This is the paper's
        ``f(R_T(e))`` for the run of elements instantiating a motif edge.
        """
        if hi < lo:
            return 0.0
        return self._cum[hi + 1] - self._cum[lo]

    def flow_in_interval(self, start: float, end: float) -> float:
        """Aggregated flow of elements with ``start <= t <= end``."""
        lo = self.first_index_at_or_after(start)
        hi = self.last_index_at_or_before(end)
        return self.flow_between(lo, hi)

    def indices_in_interval(self, start: float, end: float) -> Tuple[int, int]:
        """Inclusive index range of elements with ``start <= t <= end``.

        Returns ``(lo, hi)`` with ``hi < lo`` when the interval is empty.
        """
        lo = self.first_index_at_or_after(start)
        hi = self.last_index_at_or_before(end)
        return lo, hi

    def slice(self, lo: int, hi: int) -> "EdgeSeries":
        """A new series holding the elements with index in ``[lo, hi]``.

        The base implementation copies; columnar views override it with a
        zero-copy memoryview slice. Both produce series that compare equal.
        """
        return EdgeSeries(
            self.src, self.dst, self.times[lo : hi + 1], self.flows[lo : hi + 1]
        )

    # ------------------------------------------------------------------
    # Streaming growth
    # ------------------------------------------------------------------

    def append(self, time: float, flow: float) -> None:
        """Append one interaction — O(1) amortized.

        Streams feed events in non-decreasing time order, so an append
        never needs to re-sort: the new timestamp must be at or after the
        current last one (raises :class:`ValueError` otherwise, as it
        would for a non-positive flow). The prefix-sum array is extended
        in place, so all binary-search and flow accessors stay valid and
        any object holding a reference to this series (e.g. a cached
        structural match) sees the new element immediately.

        Zero-copy columnar views are immutable snapshots and refuse to
        append; use the list-backed series (or a
        :class:`~repro.graph.columnar.GrowableColumnStore`) for streams.
        """
        if flow <= 0:
            raise ValueError(
                f"flows must be positive, got {flow!r} on {self.src}->{self.dst}"
            )
        if time < self.times[-1]:
            raise ValueError(
                f"append out of order on {self.src}->{self.dst}: "
                f"t={time!r} precedes the series tail t={self.times[-1]!r}"
            )
        self.times.append(time)
        self.flows.append(flow)
        self._cum.append(self._cum[-1] + flow)


class TimeSeriesGraph:
    """The time-series graph ``G_T(V, E_T)`` of Section 4.

    Vertices are those of the input multigraph; every connected ordered pair
    ``(u, v)`` carries exactly one :class:`EdgeSeries`. Provides the
    adjacency accessors required by structural matching (phase P1).
    """

    def __init__(self, series: Iterable[EdgeSeries]) -> None:
        self._by_pair: Dict[Tuple[Node, Node], EdgeSeries] = {}
        self._out: Dict[Node, List[EdgeSeries]] = {}
        self._in: Dict[Node, List[EdgeSeries]] = {}
        nodes: set = set()
        for s in series:
            key = (s.src, s.dst)
            if key in self._by_pair:
                raise ValueError(f"duplicate edge series for pair {key}")
            self._by_pair[key] = s
            nodes.add(s.src)
            nodes.add(s.dst)
            self._out.setdefault(s.src, []).append(s)
            self._in.setdefault(s.dst, []).append(s)
        # Deterministic iteration order helps seeded experiments reproduce.
        for adj in (self._out, self._in):
            for node in adj:
                adj[node].sort(key=lambda s: (repr(s.src), repr(s.dst)))
        # The graph is immutable after construction, so the aggregates the
        # hot paths ask for repeatedly are computed once here: the frozen
        # vertex set, the event count, and the (src, dst)-sorted series
        # tuple (previously re-sorted on every all_series() call).
        self._nodes: frozenset = frozenset(nodes)
        self._num_events: int = sum(len(s) for s in self._by_pair.values())
        self._all_series: Tuple[EdgeSeries, ...] = tuple(
            self._by_pair[k] for k in sorted(self._by_pair, key=repr)
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_interactions(cls, interactions: Iterable[Interaction]) -> "TimeSeriesGraph":
        """Group raw interactions by vertex pair into series (Figure 5)."""
        times: Dict[Tuple[Node, Node], List[float]] = {}
        flows: Dict[Tuple[Node, Node], List[float]] = {}
        for it in interactions:
            key = (it.src, it.dst)
            times.setdefault(key, []).append(it.time)
            flows.setdefault(key, []).append(it.flow)
        return cls(
            EdgeSeries(src, dst, times[(src, dst)], flows[(src, dst)])
            for (src, dst) in times
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> frozenset:
        """The vertex set (vertices incident to at least one interaction).

        Returned frozen: callers cannot mutate the graph's internal state.
        """
        return self._nodes

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_series(self) -> int:
        """Number of connected ordered pairs, i.e. ``|E_T|``."""
        return len(self._by_pair)

    @property
    def num_events(self) -> int:
        """Total number of interactions across all series, i.e. ``|E|``
        (cached at construction)."""
        return self._num_events

    def series(self, src: Node, dst: Node) -> Optional[EdgeSeries]:
        """The series ``R(src, dst)``, or None if the pair is not connected."""
        return self._by_pair.get((src, dst))

    def has_edge(self, src: Node, dst: Node) -> bool:
        """Whether at least one interaction goes from ``src`` to ``dst``."""
        return (src, dst) in self._by_pair

    def out_series(self, node: Node) -> List[EdgeSeries]:
        """All series leaving ``node`` (empty list for sinks/unknown nodes)."""
        return self._out.get(node, [])

    def in_series(self, node: Node) -> List[EdgeSeries]:
        """All series entering ``node``."""
        return self._in.get(node, [])

    def all_series(self) -> List[EdgeSeries]:
        """Every edge series, in deterministic (src, dst) order.

        Backed by the tuple cached at construction — per-call cost drops
        from an ``O(|E_T| log |E_T|)`` sort to a shallow copy, and mutating
        the returned list cannot corrupt the graph's internal ordering.
        """
        return list(self._all_series)

    def __repr__(self) -> str:
        return (
            f"TimeSeriesGraph({self.num_nodes} nodes, "
            f"{self.num_series} series, {self.num_events} events)"
        )


class GrowableTimeSeriesGraph(TimeSeriesGraph):
    """A :class:`TimeSeriesGraph` that accepts per-event appends.

    The base class is immutable and precomputes its aggregates once; this
    subclass maintains them incrementally so that online consumers (the
    streaming detector) can grow the graph one interaction at a time:

    * appending to an **existing** pair is O(1) amortized — the event goes
      straight onto the pair's :class:`EdgeSeries` (whose identity never
      changes, so cached references stay live) and the event counter is
      bumped;
    * appending the first event of a **new** pair creates its series and
      splices it into the adjacency lists and the deterministic
      ``all_series()`` order — O(|E_T|) for the ordered insert, but it
      happens at most once per connected pair.

    :meth:`append` returns whether the pair was new, which is exactly the
    signal the incremental structural-match index needs.
    """

    def __init__(self, series: Iterable[EdgeSeries] = ()) -> None:
        super().__init__(series)

    def append(self, src: Node, dst: Node, time: float, flow: float) -> bool:
        """Ingest one interaction; returns True when ``(src, dst)`` is new.

        Per-pair timestamps must be non-decreasing (time-ordered streams
        guarantee this globally); violations raise :class:`ValueError`.
        """
        key = (src, dst)
        series = self._by_pair.get(key)
        if series is not None:
            series.append(time, flow)
            self._num_events += 1
            return False
        series = EdgeSeries(src, dst, [time], [flow])
        self._by_pair[key] = series
        self._num_events += 1
        sort_key = (repr(src), repr(dst))
        for node, adj in ((src, self._out), (dst, self._in)):
            lst = adj.setdefault(node, [])
            at = len(lst)
            for i, existing in enumerate(lst):
                if (repr(existing.src), repr(existing.dst)) > sort_key:
                    at = i
                    break
            lst.insert(at, series)
        if src not in self._nodes or dst not in self._nodes:
            self._nodes = self._nodes | {src, dst}
        # Ordered splice (same repr-of-pair key the base class sorts by):
        # O(|E_T|) per new pair, not a full O(|E_T| log |E_T|) re-sort.
        pair_key = repr(key)
        all_series = self._all_series
        at = len(all_series)
        for i, existing in enumerate(all_series):
            if repr((existing.src, existing.dst)) > pair_key:
                at = i
                break
        self._all_series = all_series[:at] + (series,) + all_series[at:]
        return True
