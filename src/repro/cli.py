"""Command-line interface.

Regenerate any table/figure of the paper::

    flow-motifs table4
    flow-motifs fig9 --datasets Bitcoin --motifs "M(3,2)" "M(3,3)"
    flow-motifs all --scale 0.5 --out results/

Or search motifs in your own edge list (CSV/TSV with src,dst,time,flow)::

    flow-motifs find edges.csv --motif "M(3,3)" --delta 600 --phi 5 --top 10

Large edge lists can be searched in parallel over δ-overlap time shards
(``.csv.gz`` inputs are decompressed transparently)::

    flow-motifs find edges.csv.gz --motif "M(3,2)" --delta 600 --jobs 4

Or watch a live, time-ordered stream with the incremental online detector
(instances print as JSON lines the moment their window closes)::

    flow-motifs stream live.csv --follow --motif "M(3,3)" --delta 600 --phi 5
    tail -F live.csv | flow-motifs stream - --motif "M(3,2)" --delta 600
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.core.engine import FlowMotifEngine
from repro.core.motif import PAPER_MOTIF_PATHS, Motif
from repro.experiments import EXPERIMENTS
from repro.experiments.report import render, save_result
from repro.graph import io as graph_io


def _add_profile_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", action="store_true",
        help=(
            "sample the run with the built-in wall-clock profiler and "
            "print span-attributed hot frames to stderr"
        ),
    )
    parser.add_argument(
        "--profile-hz", type=float, default=97.0, dest="profile_hz",
        help="profiler sampling rate (default 97 Hz)",
    )
    parser.add_argument(
        "--profile-out", default=None, metavar="PATH", dest="profile_out",
        help=(
            "write collapsed stacks ('span;frame;... count' lines — "
            "flamegraph.pl / speedscope input) to PATH"
        ),
    )


def _add_experiment_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="dataset size multiplier (default 1.0)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="generator seed (default 0)"
    )
    parser.add_argument(
        "--datasets", nargs="+", default=None,
        choices=["Bitcoin", "Facebook", "Passenger"],
        help="restrict to these datasets",
    )
    parser.add_argument(
        "--motifs", nargs="+", default=None,
        metavar="MOTIF",
        help=f"restrict to these motifs (choices: {', '.join(PAPER_MOTIF_PATHS)})",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="also write the result JSON into this directory",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="render tables as markdown"
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="additionally render series as terminal bar charts",
    )


def _run_experiments(args: argparse.Namespace, names: List[str]) -> int:
    for name in names:
        runner = EXPERIMENTS[name]
        kwargs = {"scale": args.scale, "seed": args.seed}
        if args.datasets is not None:
            kwargs["datasets"] = args.datasets
        if name not in ("table3",) and args.motifs is not None:
            kwargs["motifs"] = args.motifs
        if name == "fig14" and args.num_random is not None:
            kwargs["num_random"] = args.num_random
        result = runner(**kwargs)
        print(render(result, markdown=args.markdown))
        if args.chart:
            from repro.utils.charts import series_chart

            for series in result.get("series", ()):
                print(series_chart(
                    series["x"], series["lines"],
                    title=series.get("title") or result["name"],
                ))
                print()
        if args.out:
            path = save_result(result, args.out)
            print(f"[saved {path}]\n")
    return 0


def _cmd_find(args: argparse.Namespace) -> int:
    if (args.edges is None) == (args.store is None):
        print(
            "error: pass exactly one input — an edge-list file or "
            "--store DIR",
            file=sys.stderr,
        )
        return 2
    if args.store is not None:
        from repro.graph.segments import SegmentCorruptionError, SegmentStore

        try:
            graph = SegmentStore(
                args.store, create=False
            ).search_graph()
        except (FileNotFoundError, SegmentCorruptionError) as exc:
            print(f"error: cannot open store: {exc}", file=sys.stderr)
            return 2
    else:
        graph = graph_io.read_csv(args.edges, on_error=args.on_error)
    try:
        motif = Motif.from_string(args.motif, args.delta, args.phi)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.jobs > 1 or args.shards:
        from repro.parallel import ParallelFlowMotifEngine

        engine = ParallelFlowMotifEngine(
            graph,
            jobs=args.jobs,
            shards=args.shards,
            backend=args.backend,
            use_shared_memory=not args.no_shm,
        )
    else:
        engine = FlowMotifEngine(graph)
    observation = None
    profiling = bool(args.profile or args.profile_out)
    if args.trace or args.metrics_out or profiling:
        from repro import obs as _obs

        observation = _obs.observe(
            trace=True, profile=profiling, profile_hz=args.profile_hz
        )
        observation.__enter__()
    try:
        if args.top:
            instances = engine.top_k(motif, args.top)
            print(f"top {len(instances)} instances of {motif.display_name}:")
        else:
            result = engine.find_instances(motif)
            instances = result.instances
            print(
                f"{result.count} instances of {motif.display_name} "
                f"({result.num_matches} structural matches, "
                f"{result.total_seconds:.3f}s)"
            )
            if result.shard_timings is not None:
                report = result.shard_timings
                print(
                    f"[{report.num_shards} shards, wall {report.wall_seconds:.3f}s, "
                    f"critical path {report.max_seconds:.3f}s, "
                    f"imbalance {report.imbalance_ratio:.2f}]"
                )
    finally:
        if observation is not None:
            observation.__exit__(None, None, None)
        # Parallel engines may own a shared-memory export; unlink it
        # deterministically rather than relying on interpreter shutdown.
        close = getattr(engine, "close", None)
        if close is not None:
            close()
    if observation is not None:
        if args.trace:
            print(observation.render_trace(), file=sys.stderr)
            print(observation.render_text(), file=sys.stderr)
        profile_report = observation.profile()
        if args.profile and profile_report is not None:
            print(observation.render_profile(), file=sys.stderr)
        if args.profile_out and profile_report is not None:
            profile_report.write_collapsed(args.profile_out)
            print(
                f"[collapsed stacks written to {args.profile_out}]",
                file=sys.stderr,
            )
        if args.metrics_out:
            observation.write_jsonl(args.metrics_out)
            print(
                f"[observability written to {args.metrics_out}]",
                file=sys.stderr,
            )
    for instance in instances[: args.limit]:
        print(json.dumps(instance.as_dict()))
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Stream an edge list into a durable segment store (seal batches)."""
    from repro.graph.segments import SegmentStore

    store = SegmentStore(args.store)
    events = 0
    sealed = []
    quarantined = 0

    def quarantine(line_number: int, message: str, _raw: str) -> None:
        nonlocal quarantined
        quarantined += 1
        if quarantined <= 5:
            print(
                f"[ingest] quarantined line {line_number}: {message}",
                file=sys.stderr,
            )

    source = sys.stdin if args.edges == "-" else args.edges
    try:
        for it in graph_io.iter_csv_interactions(
            source,
            on_error="raise" if args.strict else "skip",
            error_sink=None if args.strict else quarantine,
        ):
            try:
                store.append(it.src, it.dst, it.time, it.flow)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            events += 1
            if args.seal_every and store.memtable_events >= args.seal_every:
                sealed.append(store.seal())
    except graph_io.InteractionFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (OSError, EOFError) as exc:
        # Keep everything already sealed; the memtable tail seals below,
        # so an interrupted ingest loses nothing that was read.
        print(f"error: input stream failed: {exc}", file=sys.stderr)
    name = store.seal()
    if name is not None:
        sealed.append(name)
    extras = f", {quarantined} malformed lines quarantined" if quarantined else ""
    print(
        f"[ingest] {events} events into {args.store}: "
        f"{len(sealed)} segment(s) sealed "
        f"({', '.join(sealed) if sealed else 'none'}){extras}",
        file=sys.stderr,
    )
    if args.compact and len(store.live_segments()) > 1:
        merged = store.compact()
        print(f"[ingest] compacted into {merged}", file=sys.stderr)
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.graph.segments import SegmentCorruptionError, SegmentStore

    try:
        store = SegmentStore(args.store, create=False)
        live_before = store.live_segments()
        name = store.compact()
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SegmentCorruptionError as exc:
        print(f"error: store is damaged, run fsck first: {exc}", file=sys.stderr)
        return 1
    if name is None:
        print(
            f"[compact] nothing to do ({len(live_before)} live segment(s))",
            file=sys.stderr,
        )
    else:
        print(
            f"[compact] {len(live_before)} segment(s) -> {name}",
            file=sys.stderr,
        )
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.graph.segments import SegmentCorruptionError
    from repro.graph.segments import fsck as run_fsck

    if not args.quiet:
        mode = "dry-run (report only)" if args.dry_run else "repair"
        print(f"[fsck] scanning {args.store} ({mode})", file=sys.stderr)
    try:
        report = run_fsck(args.store, repair=not args.dry_run)
    except SegmentCorruptionError as exc:
        print(f"error: manifest is damaged beyond fsck: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    for name, reason in report.corrupted:
        print(f"  corrupt: {name}: {reason}")
    for name in report.missing:
        print(f"  missing: {name} (sealed in manifest, no file on disk)")
    for name in report.unmanifested:
        print(f"  unmanifested: {name} (seal crashed before its manifest record)")
    return 0 if report.ok else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import (
        load_observations,
        render_prometheus,
        render_text,
        render_trace_tree,
        stitch_trace,
    )

    try:
        snapshot, spans, _events = load_observations(args.files)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read observations: {exc}", file=sys.stderr)
        return 2
    if args.trace:
        if spans:
            print(render_trace_tree(stitch_trace(spans)))
        else:
            print("(no spans recorded)", file=sys.stderr)
        return 0
    if args.format == "text":
        print(render_text(snapshot))
    else:
        print(render_prometheus(snapshot), end="")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import load_profiles

    try:
        report = load_profiles(args.files)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read profiles: {exc}", file=sys.stderr)
        return 2
    if report.samples == 0:
        print("(no profile records found)", file=sys.stderr)
        return 1
    if args.collapsed_out:
        report.write_collapsed(args.collapsed_out)
        print(
            f"[collapsed stacks written to {args.collapsed_out}]",
            file=sys.stderr,
        )
    print(report.render_text(args.top))
    return 0


class _FollowLines:
    """Line source that keeps polling a file for appended rows (tail -F).

    Yields complete lines; partial trailing writes are buffered until the
    newline arrives. Stops after ``max_idle`` seconds without new data
    (None = follow forever). Duck-types the ``read`` attribute
    :func:`repro.graph.io._open_maybe` checks, so it plugs straight into
    :func:`repro.graph.io.iter_csv_interactions`.

    Survives the file disappearing or being rotated mid-tail (the real
    ``tail -F`` contract): a deleted file is waited on until it reappears
    (or ``max_idle`` expires), and a replaced/truncated file is reopened
    from its start.
    """

    def __init__(self, path, interval: float, max_idle: Optional[float]):
        self._path = path
        self._interval = max(interval, 0.01)
        self._max_idle = max_idle

    def read(self, *_args):  # pragma: no cover - iteration-only source
        raise NotImplementedError("_FollowLines is an iteration-only source")

    def __iter__(self):
        import os as _os
        import time as _time

        buffer = ""
        idle = 0.0
        handle = None
        inode = None
        try:
            while True:
                if handle is None:
                    try:
                        handle = open(self._path, "r", encoding="utf-8")
                        inode = _os.fstat(handle.fileno()).st_ino
                    except OSError:
                        # Not there (yet/anymore): wait for it like tail -F.
                        if self._max_idle is not None and idle >= self._max_idle:
                            if buffer:
                                yield buffer
                            return
                        _time.sleep(self._interval)
                        idle += self._interval
                        continue
                try:
                    chunk = handle.readline()
                except OSError:
                    chunk = ""
                if chunk:
                    idle = 0.0
                    buffer += chunk
                    if buffer.endswith("\n"):
                        yield buffer
                        buffer = ""
                    continue
                # No new data. Detect rotation (new inode) or truncation
                # (file shrank under our offset) — both mean our handle no
                # longer tails the live file — and deletion (stat fails).
                try:
                    stat = _os.stat(self._path)
                    stale = (
                        stat.st_ino != inode or stat.st_size < handle.tell()
                    )
                except OSError:
                    stale = True
                if stale:
                    handle.close()
                    handle = None
                    inode = None
                if self._max_idle is not None and idle >= self._max_idle:
                    if buffer:
                        yield buffer
                    return
                _time.sleep(self._interval)
                idle += self._interval
        finally:
            if handle is not None:
                handle.close()


def _write_checkpoint(detector, path: str) -> None:
    """Atomically persist a detector snapshot (tmp file + rename)."""
    import os

    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(detector.checkpoint(), handle)
    os.replace(tmp, path)


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.core.streaming import StreamingDetector
    from repro.resilience.checkpoint import CheckpointError, load_checkpoint

    strict = args.strict
    if args.on_error is not None:
        print(
            "warning: --on-error is deprecated; malformed lines are "
            "quarantined by default, use --strict to abort on them",
            file=sys.stderr,
        )
        if args.on_error == "raise":
            strict = True
    try:
        motif = Motif.from_string(args.motif, args.delta, args.phi)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.follow and args.edges == "-":
        print("error: --follow requires a file path, not stdin", file=sys.stderr)
        return 2
    if args.follow:
        source = _FollowLines(args.edges, args.interval, args.max_idle)
    elif args.edges == "-":
        source = sys.stdin
    else:
        source = args.edges

    if args.resume:
        try:
            with open(args.resume, "r", encoding="utf-8") as handle:
                detector = StreamingDetector.restore(load_checkpoint(handle.read()))
        except (OSError, CheckpointError) as exc:
            print(f"error: cannot resume from {args.resume}: {exc}", file=sys.stderr)
            return 2
        print(
            f"[stream] resumed from {args.resume} "
            f"(watermark {detector.watermark}, "
            f"{detector.emitted_count} already emitted)",
            file=sys.stderr,
        )
    else:
        detector = StreamingDetector(
            motif,
            mode=args.mode,
            slack=args.slack,
            late="raise" if strict else "drop",
        )
    profiler = None
    if args.profile or args.profile_out:
        from repro.obs.profiler import Profiler

        # The detector is single-threaded: one profiler pinned to this
        # (the ingesting) thread covers the whole pipeline.
        profiler = Profiler(hz=args.profile_hz)
        profiler.start()
    emitted = 0
    events = 0
    pending = 0
    quarantined = 0

    def quarantine(line_number: int, message: str, _raw: str) -> None:
        nonlocal quarantined
        quarantined += 1
        if quarantined <= 5:  # don't flood stderr on a corrupt file
            print(
                f"[stream] quarantined line {line_number}: {message}",
                file=sys.stderr,
            )

    def drain(batch) -> None:
        nonlocal emitted
        for instance in batch:
            print(json.dumps(instance.as_dict()), flush=True)
            emitted += 1

    def finish(flush: bool) -> None:
        """End of this run: flush everything, or poll + persist state."""
        if args.checkpoint:
            drain(detector.poll())
            _write_checkpoint(detector, args.checkpoint)
            print(f"[stream] checkpoint written to {args.checkpoint}", file=sys.stderr)
        elif flush:
            drain(detector.flush())
        else:
            drain(detector.poll())

    exit_code = 0
    try:
        for it in graph_io.iter_csv_interactions(
            source,
            on_error="raise" if strict else "skip",
            error_sink=None if strict else quarantine,
        ):
            try:
                accepted = detector.add(it.src, it.dst, it.time, it.flow)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if not accepted:
                continue  # too late for the slack window; counted by the detector
            events += 1
            pending += 1
            if pending >= args.batch:
                drain(detector.poll())
                pending = 0
        finish(flush=True)
    except graph_io.InteractionFormatError as exc:
        # Malformed rows surface from the iterator itself under --strict;
        # report them like every other stream error.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (OSError, EOFError) as exc:
        # Truncated gzip, vanished file, unreadable input: keep what was
        # ingested (poll/checkpoint, never a premature flush) and signal
        # the failure through the exit code.
        print(f"error: input stream failed: {exc}", file=sys.stderr)
        finish(flush=False)
        exit_code = 1
    except KeyboardInterrupt:
        # Ctrl-C on a live tail: with --checkpoint the stream is expected
        # to continue later, so persist instead of force-closing windows.
        finish(flush=not args.checkpoint)
    except BrokenPipeError:
        # Downstream consumer (e.g. `... | head`) closed the pipe: stop
        # cleanly. Redirect stdout to devnull so interpreter shutdown
        # does not trip over the dead descriptor again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    extras = ""
    if quarantined:
        extras += f", {quarantined} malformed lines quarantined"
    if detector.late_dropped:
        extras += f", {detector.late_dropped} late events dropped"
    if detector.pending_count:
        extras += f", {detector.pending_count} events buffered ahead of watermark"
    print(
        f"[stream] {events} events, {emitted} instances emitted, "
        f"{detector.match_count} structural matches, "
        f"{detector.rebuild_count} rebuilds{extras}",
        file=sys.stderr,
    )
    profile_report = profiler.stop() if profiler is not None else None
    if profile_report is not None:
        if args.profile:
            print(profile_report.render_text(), file=sys.stderr)
        if args.profile_out:
            profile_report.write_collapsed(args.profile_out)
            print(
                f"[stream] collapsed stacks written to {args.profile_out}",
                file=sys.stderr,
            )
    if args.metrics_out:
        from repro.obs import JsonlSink

        with JsonlSink(args.metrics_out) as sink:
            sink.emit_metrics(detector.metrics().snapshot())
            if profile_report is not None and profile_report.samples:
                sink.emit_profile(profile_report.to_dict())
        print(f"[stream] metrics written to {args.metrics_out}", file=sys.stderr)
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="flow-motifs",
        description=(
            "Flow motifs in interaction networks (EDBT 2019) — "
            "experiments and motif search"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in EXPERIMENTS:
        exp_parser = sub.add_parser(name, help=f"regenerate {name}")
        _add_experiment_options(exp_parser)
        exp_parser.add_argument(
            "--num-random", type=int, default=None, dest="num_random",
            help="fig14 only: number of random permutations (default 20)",
        )

    all_parser = sub.add_parser("all", help="run every experiment")
    _add_experiment_options(all_parser)
    all_parser.add_argument(
        "--num-random", type=int, default=None, dest="num_random"
    )

    find_parser = sub.add_parser("find", help="search motifs in an edge list")
    find_parser.add_argument(
        "edges", nargs="?", default=None,
        help="CSV/TSV file: src,dst,time,flow (or use --store)",
    )
    find_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help=(
            "search a durable segment store (from 'flow-motifs ingest') "
            "instead of an edge-list file; parallel workers mmap the "
            "sealed segments zero-copy"
        ),
    )
    find_parser.add_argument(
        "--motif", default="M(3,3)",
        help="catalog name or dashed path, e.g. M(3,3) or 0-1-2-0",
    )
    find_parser.add_argument("--delta", type=float, required=True)
    find_parser.add_argument("--phi", type=float, default=0.0)
    find_parser.add_argument(
        "--top", type=int, default=0, help="report the top-k instances instead"
    )
    find_parser.add_argument(
        "--limit", type=int, default=20, help="max instances to print"
    )
    find_parser.add_argument(
        "--on-error", choices=["raise", "skip"], default="raise",
        help="behaviour on malformed input rows",
    )
    find_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker count; >1 runs the δ-overlap sharded parallel engine",
    )
    find_parser.add_argument(
        "--shards", type=int, default=None,
        help="time-shard count for parallel search (default: --jobs)",
    )
    find_parser.add_argument(
        "--backend", choices=["process", "thread", "serial"],
        default="process",
        help="parallel execution backend (default process)",
    )
    find_parser.add_argument(
        "--no-shm", action="store_true",
        help=(
            "disable the zero-copy shared-memory columnar store for the "
            "process backend (workers then receive pickled shard slices)"
        ),
    )
    find_parser.add_argument(
        "--trace", action="store_true",
        help=(
            "record metrics and spans during the search and print the "
            "stitched trace tree plus a metrics table to stderr"
        ),
    )
    find_parser.add_argument(
        "--metrics-out", default=None, metavar="PATH", dest="metrics_out",
        help=(
            "append the run's metrics snapshot and spans to PATH as JSON "
            "lines (readable by 'flow-motifs metrics PATH')"
        ),
    )
    _add_profile_options(find_parser)

    stream_parser = sub.add_parser(
        "stream",
        help="online detection over a live, time-ordered edge stream",
    )
    stream_parser.add_argument(
        "edges", help="CSV/TSV stream: src,dst,time,flow ('-' for stdin)"
    )
    stream_parser.add_argument(
        "--motif", default="M(3,3)",
        help="catalog name or dashed path, e.g. M(3,3) or 0-1-2-0",
    )
    stream_parser.add_argument("--delta", type=float, required=True)
    stream_parser.add_argument("--phi", type=float, default=0.0)
    stream_parser.add_argument(
        "--batch", type=int, default=1,
        help="events ingested between polls (default 1: emit ASAP)",
    )
    stream_parser.add_argument(
        "--follow", action="store_true",
        help="keep watching the file for appended rows (tail -F style)",
    )
    stream_parser.add_argument(
        "--interval", type=float, default=0.5,
        help="--follow poll interval in seconds (default 0.5)",
    )
    stream_parser.add_argument(
        "--max-idle", type=float, default=None, dest="max_idle",
        help=(
            "in --follow mode, stop after this many seconds without new "
            "rows and flush (default: follow forever)"
        ),
    )
    stream_parser.add_argument(
        "--strict", action="store_true",
        help=(
            "abort (exit 2) on malformed lines or events later than "
            "--slack allows, instead of quarantining/dropping them"
        ),
    )
    stream_parser.add_argument(
        "--on-error", choices=["raise", "skip"], default=None,
        help=(
            "deprecated: malformed lines are quarantined by default; "
            "'raise' behaves like --strict"
        ),
    )
    stream_parser.add_argument(
        "--slack", type=float, default=0.0,
        help=(
            "out-of-order tolerance: events up to this many time units "
            "behind the watermark are re-sequenced instead of refused "
            "(default 0: require a time-ordered stream)"
        ),
    )
    stream_parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help=(
            "on exit (including Ctrl-C), write the detector state to "
            "PATH and keep open windows open instead of flushing, so a "
            "later run can --resume exactly where this one stopped"
        ),
    )
    stream_parser.add_argument(
        "--resume", default=None, metavar="PATH",
        help=(
            "restore the detector from a --checkpoint file before "
            "reading input (the checkpoint's motif/δ/φ/slack/mode "
            "override the command-line values)"
        ),
    )
    stream_parser.add_argument(
        "--mode", choices=["incremental", "rebuild"], default="incremental",
        help="detector implementation (rebuild is the legacy baseline)",
    )
    stream_parser.add_argument(
        "--metrics-out", default=None, metavar="PATH", dest="metrics_out",
        help=(
            "on exit, append the detector's metrics snapshot to PATH as "
            "JSON lines (readable by 'flow-motifs metrics PATH')"
        ),
    )
    _add_profile_options(stream_parser)

    ingest_parser = sub.add_parser(
        "ingest",
        help="load an edge list into a durable on-disk segment store",
    )
    ingest_parser.add_argument(
        "edges", help="CSV/TSV file: src,dst,time,flow ('-' for stdin)"
    )
    ingest_parser.add_argument(
        "store", metavar="STORE_DIR",
        help="segment store directory (created if missing)",
    )
    ingest_parser.add_argument(
        "--seal-every", type=int, default=0, dest="seal_every",
        metavar="N",
        help=(
            "seal a segment every N ingested events (default 0: one "
            "segment for the whole input)"
        ),
    )
    ingest_parser.add_argument(
        "--compact", action="store_true",
        help="merge all live segments into one after ingesting",
    )
    ingest_parser.add_argument(
        "--strict", action="store_true",
        help="abort (exit 2) on malformed lines instead of quarantining",
    )

    compact_parser = sub.add_parser(
        "compact",
        help="merge a store's live segments into one sealed segment",
    )
    compact_parser.add_argument(
        "store", metavar="STORE_DIR", help="segment store directory"
    )

    fsck_parser = sub.add_parser(
        "fsck",
        help=(
            "verify a segment store's checksums and manifest; quarantine "
            "damage and reap crash leftovers"
        ),
    )
    fsck_parser.add_argument(
        "store", metavar="STORE_DIR", help="segment store directory"
    )
    fsck_parser.add_argument(
        "--dry-run", action="store_true", dest="dry_run",
        help="report problems without quarantining or deleting anything",
    )
    fsck_parser.add_argument(
        "--quiet", action="store_true", help="suppress the scan banner"
    )

    metrics_parser = sub.add_parser(
        "metrics",
        help="render observability JSON-lines files (from --metrics-out)",
    )
    metrics_parser.add_argument(
        "files", nargs="+", metavar="FILE",
        help="JSON-lines sink files; metrics snapshots merge associatively",
    )
    metrics_parser.add_argument(
        "--format", choices=["prometheus", "text"], default="prometheus",
        help="metrics rendering (default: Prometheus text exposition)",
    )
    metrics_parser.add_argument(
        "--trace", action="store_true",
        help="render the stitched span tree instead of the metrics",
    )

    profile_parser = sub.add_parser(
        "profile",
        help=(
            "render profile records from observability JSON-lines files "
            "(from find/stream --profile --metrics-out)"
        ),
    )
    profile_parser.add_argument(
        "files", nargs="+", metavar="FILE",
        help="JSON-lines sink files; profile records merge associatively",
    )
    profile_parser.add_argument(
        "-n", "--top", type=int, default=15, dest="top",
        help="hottest frames to list per ranking (default 15)",
    )
    profile_parser.add_argument(
        "--collapsed-out", default=None, metavar="PATH", dest="collapsed_out",
        help="also write the merged collapsed stacks to PATH",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "find":
        return _cmd_find(args)
    if args.command == "stream":
        return _cmd_stream(args)
    if args.command == "ingest":
        return _cmd_ingest(args)
    if args.command == "compact":
        return _cmd_compact(args)
    if args.command == "fsck":
        return _cmd_fsck(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "all":
        return _run_experiments(args, list(EXPERIMENTS))
    return _run_experiments(args, [args.command])


if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit like a Unix tool
        # (point stdout at devnull so the shutdown flush cannot raise).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 128 + 13
    sys.exit(code)
