"""Flow-permuted random graphs (the Section 6.3 null model).

Given ``G(V, E)`` where edge ``e`` carries ``(t(e), f(e))``, the randomized
``G_r`` keeps every vertex, edge and timestamp and reassigns the multiset of
flow values under a uniform random permutation π: edge ``e`` gets
``π(f(e))``. Consequences the experiment relies on (and tests assert):

* ``G_r`` has exactly the same structural matches and the same δ-windows;
* with φ = 0 the motif instances of ``G`` and ``G_r`` coincide;
* only flow aggregation changes, so count differences at φ > 0 measure how
  much *flow correlation* (not topology or timing) drives the motifs.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Union

from repro.graph.interaction import InteractionGraph


def permute_flows(
    graph: InteractionGraph,
    seed_or_rng: Union[int, random.Random, None] = None,
) -> InteractionGraph:
    """One flow-permuted copy of ``graph``.

    Interactions are taken in canonical (time, src, dst) order so that the
    result depends only on the graph content and the seed, not on insertion
    order.
    """
    rng = (
        seed_or_rng
        if isinstance(seed_or_rng, random.Random)
        else random.Random(seed_or_rng)
    )
    ordered = graph.interactions_sorted()
    flows = [it.flow for it in ordered]
    rng.shuffle(flows)
    out = InteractionGraph()
    for it, flow in zip(ordered, flows):
        out.add_interaction(it.src, it.dst, it.time, flow)
    return out


def permutation_ensemble(
    graph: InteractionGraph,
    count: int = 20,
    seed: Optional[int] = 0,
) -> Iterator[InteractionGraph]:
    """Yield ``count`` independent flow permutations (paper uses 20).

    Each member uses a sub-seed derived from ``seed`` so ensembles are
    reproducible yet mutually independent.
    """
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    base = random.Random(seed)
    for _ in range(count):
        yield permute_flows(graph, base.randrange(2**63))
