"""The Figure 14 significance experiment as a reusable routine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.counting import count_instances
from repro.core.engine import FlowMotifEngine
from repro.core.matching import StructuralMatch
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph
from repro.graph.timeseries import TimeSeriesGraph
from repro.significance.randomization import permutation_ensemble
from repro.significance.zscore import SignificanceSummary, summarize_significance


@dataclass(frozen=True)
class MotifSignificance:
    """Counts and significance of one motif on one dataset."""

    motif_name: str
    real_count: int
    random_counts: List[int]
    summary: SignificanceSummary


def _transplant_matches(
    matches: Sequence[StructuralMatch], graph: TimeSeriesGraph
) -> List[StructuralMatch]:
    """Rebind structural matches onto a structurally identical graph.

    Flow permutation keeps vertices, edges and timestamps, so the matches
    of the real graph are exactly the matches of every randomized graph —
    only the per-pair series objects (with their shuffled flows) change.
    Re-running phase P1 per permutation would redo identical work; instead
    each match's series tuple is looked up in the permuted graph.
    """
    transplanted = []
    for match in matches:
        series = tuple(
            graph.series(s.src, s.dst) for s in match.series
        )
        if any(s is None for s in series):
            raise ValueError(
                "randomized graph is not structurally identical to the "
                "original (missing series); cannot transplant matches"
            )
        transplanted.append(
            StructuralMatch(match.motif, match.vertex_map, series)  # type: ignore[arg-type]
        )
    return transplanted


def motif_significance(
    graph: InteractionGraph,
    motifs: Dict[str, Motif],
    num_random: int = 20,
    seed: Optional[int] = 0,
    delta: Optional[float] = None,
    phi: Optional[float] = None,
) -> List[MotifSignificance]:
    """Run the Section 6.3 protocol for several motifs on one dataset.

    For each of ``num_random`` flow permutations, all motifs are counted on
    the same randomized graph (as in the paper, one ensemble serves every
    motif). Counting uses the memoized no-construction counter and reuses
    the real graph's structural matches (valid because permutation
    preserves structure — see :func:`_transplant_matches`).

    Returns one :class:`MotifSignificance` per motif, in input order.
    """
    engine = FlowMotifEngine(graph)
    matches = {
        name: engine.structural_matches(motif) for name, motif in motifs.items()
    }
    real_counts = {
        name: count_instances(matches[name], delta=delta, phi=phi)
        for name in motifs
    }

    random_counts: Dict[str, List[int]] = {name: [] for name in motifs}
    for random_graph in permutation_ensemble(graph, count=num_random, seed=seed):
        ts = random_graph.to_time_series()
        for name in motifs:
            random_counts[name].append(
                count_instances(
                    _transplant_matches(matches[name], ts),
                    delta=delta,
                    phi=phi,
                )
            )

    return [
        MotifSignificance(
            motif_name=name,
            real_count=real_counts[name],
            random_counts=random_counts[name],
            summary=summarize_significance(
                real_counts[name], random_counts[name]
            ),
        )
        for name in motifs
    ]
