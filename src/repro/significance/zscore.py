"""z-scores and empirical p-values for motif counts (Section 6.3)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def z_score(real_value: float, random_values: Sequence[float]) -> float:
    """The paper's ``z_M = (r_M - µ_M) / σ_M``.

    ``σ`` is the population standard deviation of the randomized counts.
    Returns ``inf`` (signed) when σ is zero but the real value differs from
    the mean, and ``0.0`` when all values coincide.
    """
    if not random_values:
        raise ValueError("need at least one randomized count")
    n = len(random_values)
    mean = sum(random_values) / n
    variance = sum((v - mean) ** 2 for v in random_values) / n
    sigma = math.sqrt(variance)
    if sigma == 0.0:
        if real_value == mean:
            return 0.0
        return math.inf if real_value > mean else -math.inf
    return (real_value - mean) / sigma


def empirical_p_value(real_value: float, random_values: Sequence[float]) -> float:
    """Fraction of randomized counts >= the real count.

    The paper reports this as zero for all tested motifs (no random graph
    ever reaches the real count).
    """
    if not random_values:
        raise ValueError("need at least one randomized count")
    return sum(1 for v in random_values if v >= real_value) / len(random_values)


@dataclass(frozen=True)
class SignificanceSummary:
    """Distribution summary of randomized counts plus significance scores."""

    real: float
    mean: float
    std: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    z: float
    p_value: float


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of pre-sorted values."""
    if not sorted_values:
        raise ValueError("empty sequence")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = q * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = min(lower + 1, len(sorted_values) - 1)
    weight = position - lower
    return sorted_values[lower] * (1 - weight) + sorted_values[upper] * weight


def summarize_significance(
    real_value: float, random_values: Sequence[float]
) -> SignificanceSummary:
    """Box-plot statistics (Figure 14) plus z-score and p-value."""
    if not random_values:
        raise ValueError("need at least one randomized count")
    ordered = sorted(random_values)
    n = len(ordered)
    mean = sum(ordered) / n
    std = math.sqrt(sum((v - mean) ** 2 for v in ordered) / n)
    return SignificanceSummary(
        real=real_value,
        mean=mean,
        std=std,
        minimum=ordered[0],
        q1=_quantile(ordered, 0.25),
        median=_quantile(ordered, 0.5),
        q3=_quantile(ordered, 0.75),
        maximum=ordered[-1],
        z=z_score(real_value, ordered),
        p_value=empirical_p_value(real_value, ordered),
    )
