"""Statistical significance of flow motifs (Section 6.3).

Random graphs are derived from the real one by permuting the flow values
over all edges — structure and timestamps stay fixed, so structural matches
and δ-windows are identical and only the φ constraint separates real from
random counts. Significance is reported as z-scores and empirical p-values
over an ensemble of such permutations (Figure 14).
"""

from repro.significance.randomization import permute_flows, permutation_ensemble
from repro.significance.zscore import (
    SignificanceSummary,
    empirical_p_value,
    summarize_significance,
    z_score,
)
from repro.significance.experiment import motif_significance, MotifSignificance

__all__ = [
    "permute_flows",
    "permutation_ensemble",
    "SignificanceSummary",
    "empirical_p_value",
    "summarize_significance",
    "z_score",
    "motif_significance",
    "MotifSignificance",
]
