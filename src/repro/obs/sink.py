"""Pluggable emission for observability data.

The wire format is JSON lines: one JSON object per line, each tagged
with a ``"kind"`` field —

``{"kind": "metrics", "snapshot": {...}}``
    A :meth:`repro.obs.metrics.MetricsRegistry.snapshot` payload.

``{"kind": "span", ...span fields...}``
    One serialized :class:`repro.obs.tracing.Span` (``to_dict`` form).

``{"kind": "event", "name": ..., ...}``
    Free-form structured events (fault reports, checkpoints).

``{"kind": "profile", "profile": {...}}``
    A :meth:`repro.obs.profiler.ProfileReport.to_dict` payload
    (collapsed stacks + span attribution), merged associatively by
    :func:`load_profiles`.

Files in this format are what ``repro metrics <file.jsonl>`` reads:
metrics snapshots are merged associatively, spans are stitched into a
trace tree, and the result renders as Prometheus exposition or a human
table. Because merge is associative, concatenating sink files from
several runs (or several workers) and re-reading is always valid.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, List, Optional, Tuple, Union

from . import metrics as _metrics
from .profiler import ProfileReport

__all__ = ["JsonlSink", "read_jsonl", "load_observations", "load_profiles"]


class JsonlSink:
    """Writes observability records as JSON lines to a path or stream."""

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "a", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False

    def _write(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")

    def emit_metrics(self, snapshot: dict) -> None:
        self._write({"kind": "metrics", "snapshot": snapshot})

    def emit_spans(self, span_dicts: Iterable[dict]) -> None:
        for d in span_dicts:
            record = dict(d)
            record["kind"] = "span"
            self._write(record)

    def emit_event(self, name: str, **fields: object) -> None:
        record = {"kind": "event", "name": name}
        record.update(fields)
        self._write(record)

    def emit_profile(self, profile: dict) -> None:
        """One serialized :class:`~repro.obs.profiler.ProfileReport`."""
        self._write({"kind": "profile", "profile": profile})

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_jsonl(path: str) -> List[dict]:
    """All records from a JSON-lines sink file (blank lines skipped)."""
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def load_observations(
    paths: Iterable[str],
) -> Tuple[dict, List[dict], List[dict]]:
    """Merge one or more sink files into ``(snapshot, spans, events)``.

    Metrics snapshots from every file merge into one (order-independent
    by the registry's associativity guarantee); spans and events simply
    concatenate.
    """
    registry: Optional[_metrics.MetricsRegistry] = None
    spans: List[dict] = []
    events: List[dict] = []
    for path in paths:
        for record in read_jsonl(path):
            kind = record.get("kind")
            if kind == "metrics":
                snap = record.get("snapshot", {})
                if registry is None:
                    registry = _metrics.MetricsRegistry.from_snapshot(snap)
                else:
                    registry.merge(snap)
            elif kind == "span":
                span = {k: v for k, v in record.items() if k != "kind"}
                spans.append(span)
            elif kind == "event":
                events.append(record)
    snapshot: Dict[str, dict] = (
        registry.snapshot() if registry is not None
        else {"counters": {}, "gauges": {}, "histograms": {}}
    )
    return snapshot, spans, events


def load_profiles(paths: Iterable[str]) -> ProfileReport:
    """Merge every ``profile`` record across sink files into one report.

    Profile merge is associative (collapsed-stack counts add), so worker
    files and repeated runs combine the same way metrics snapshots do.
    Returns an empty report when no profile records are present.
    """
    merged: Optional[ProfileReport] = None
    for path in paths:
        for record in read_jsonl(path):
            if record.get("kind") != "profile":
                continue
            report = ProfileReport.from_dict(record.get("profile", {}))
            if merged is None:
                merged = report
            else:
                merged.merge(report)
    return merged if merged is not None else ProfileReport()
