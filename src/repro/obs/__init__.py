"""``repro.obs`` — dependency-free observability for the motif engines.

Five pieces, one activation model:

* :mod:`repro.obs.metrics` — counters / gauges / histograms in a
  :class:`MetricsRegistry` with deterministic snapshots and associative
  merge (per-worker registries fold into one report in any order).
* :mod:`repro.obs.tracing` — ``span()`` context managers with explicit
  parent ids; serialized span lists cross process boundaries and
  stitch back into a single trace tree.
* :mod:`repro.obs.profiler` — sampling wall-clock profiler attributing
  collapsed stacks to the ambient trace span; per-task profiles ride
  the worker envelope home exactly like metrics snapshots do.
* :mod:`repro.obs.flight` — bounded in-memory flight recorder dumping
  a JSONL diagnostic bundle on shard retries, degradations and
  SIGTERM.
* :mod:`repro.obs.sink` — JSON-lines emission plus Prometheus text
  exposition and human renderings.

Observability is **off by default** and costs one predicate per
instrumented call site when off (hot loops are never instrumented
per-iteration; kernel counters are computed arithmetically per call).
Turn it on around any region with::

    from repro import obs

    with obs.observe(profile=True) as ob:
        engine.find_instances(motif, delta)
    print(ob.render_text())          # metrics table
    print(ob.render_trace())         # stitched span tree
    print(ob.render_profile())       # span-attributed hot frames

Activation is thread-local: concurrent observed regions on different
threads (e.g. per-task activation inside the thread pool backend) do
not see each other's registries.
"""

from __future__ import annotations

from typing import List, Optional

from . import flight as flight
from . import metrics as metrics
from . import profiler as profiler
from . import tracing as tracing
from .flight import FlightRecorder
from .metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    render_prometheus,
    render_text,
)
from .profiler import ProfileReport, Profiler
from .sink import JsonlSink, load_observations, load_profiles, read_jsonl
from .tracing import (
    Span,
    TraceContext,
    Tracer,
    render_trace_tree,
    span,
    span_totals,
    stitch_trace,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "FlightRecorder",
    "JsonlSink",
    "MetricsRegistry",
    "Observation",
    "ProfileReport",
    "Profiler",
    "Span",
    "TraceContext",
    "Tracer",
    "flight",
    "load_observations",
    "load_profiles",
    "metrics",
    "observe",
    "profiler",
    "read_jsonl",
    "render_prometheus",
    "render_text",
    "render_trace_tree",
    "span",
    "span_totals",
    "stitch_trace",
    "tracing",
]


class Observation:
    """Handle for one observed region: registry, tracer and profiler.

    Usable as a context manager (see :func:`observe`); the collected
    data stays readable after exit.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        trace: bool = True,
        profile: bool = False,
        profile_hz: float = profiler.DEFAULT_HZ,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else (
            Tracer() if trace else None
        )
        self.profiler: Optional[Profiler] = (
            Profiler(hz=profile_hz) if profile else None
        )
        self._prev_registry: Optional[MetricsRegistry] = None
        self._prev_tracer: Optional[Tracer] = None
        self._prev_profiler: Optional[Profiler] = None

    def __enter__(self) -> "Observation":
        self._prev_registry = metrics.activate(self.registry)
        if self.tracer is not None:
            self._prev_tracer = tracing.activate(self.tracer)
        if self.profiler is not None:
            self._prev_profiler = profiler.activate(self.profiler)
            self.profiler.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.profiler is not None:
            self.profiler.stop()
            profiler.activate(self._prev_profiler)
        metrics.activate(self._prev_registry)
        if self.tracer is not None:
            tracing.activate(self._prev_tracer)

    # -- conveniences ----------------------------------------------------

    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def spans(self) -> List[dict]:
        return self.tracer.spans() if self.tracer is not None else []

    def profile(self) -> Optional[ProfileReport]:
        """The aggregated profile, or None when profiling was off."""
        return self.profiler.report if self.profiler is not None else None

    def render_text(self) -> str:
        return render_text(self.registry.snapshot())

    def render_prometheus(self) -> str:
        return render_prometheus(self.registry.snapshot())

    def render_trace(self) -> str:
        return render_trace_tree(stitch_trace(self.spans()))

    def render_profile(self, n: int = 15) -> str:
        report = self.profile()
        return report.render_text(n) if report is not None else ""

    def write_jsonl(self, path: str) -> None:
        """Dump metrics snapshot + spans (+ profile) to a JSONL sink."""
        with JsonlSink(path) as sink:
            sink.emit_metrics(self.snapshot())
            sink.emit_spans(self.spans())
            report = self.profile()
            if report is not None and report.samples:
                sink.emit_profile(report.to_dict())


def observe(
    trace: bool = True,
    profile: bool = False,
    profile_hz: float = profiler.DEFAULT_HZ,
) -> Observation:
    """Activate observability for a ``with`` region on this thread.

    ``trace=False`` collects metrics only (no span bookkeeping) — used
    by benchmarks measuring counter overhead in isolation.
    ``profile=True`` additionally arms a sampling profiler at
    ``profile_hz`` whose samples attribute to the region's spans.
    """
    return Observation(trace=trace, profile=profile, profile_hz=profile_hz)
