"""Dependency-free metrics registry with deterministic merge semantics.

One :class:`MetricsRegistry` holds counters, gauges, and fixed-bucket
histograms, keyed by a metric name plus an optional sorted label set.
Registries are designed around the parallel engine's fan-out model:

* **per-worker registries** — each worker process (or thread task)
  records into its own registry, snapshots it, and ships the plain-dict
  snapshot back with its results;
* **associative merge** — :meth:`MetricsRegistry.merge` folds snapshots
  together with order-independent semantics (counters and histogram
  buckets *sum*, gauges take the *max*), so merging per-worker snapshots
  in any order renders the identical report (property-tested in
  ``tests/obs/test_metrics.py``);
* **deterministic rendering** — :meth:`snapshot`,
  :func:`render_prometheus`, and :func:`render_text` emit metrics in
  sorted (name, labels) order, independent of insertion order.

Activation is *per thread* and explicitly scoped: instrumented hot paths
ask :func:`active` for the current registry and do nothing when it is
``None`` (the default). Disabled mode therefore costs one function call
and one attribute read per instrumented *call site* — never per DP cell
or per event — and allocates nothing (asserted by the zero-overhead
tests and the ``bench_columnar_store`` overhead smoke).

>>> registry = MetricsRegistry()
>>> registry.counter("p1.matches").inc(3)
>>> registry.gauge("parallel.shard_imbalance_ratio").set(1.25)
>>> sorted(registry.snapshot()["counters"].items())
[('p1.matches', 3)]
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "active",
    "activate",
    "histogram_quantile",
    "render_prometheus",
    "render_text",
]

#: Default histogram boundaries — a geometric grid wide enough for both
#: counts (events, DP cells) and sub-second latencies. Histograms created
#: with the same name must share boundaries or merging raises.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0
)

#: Canonical label rendering: ``name{a=1,b=x}``. An empty label set
#: renders as the bare name. Used as the snapshot dict key, so snapshots
#: are plain JSON objects.
_LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Mapping[str, object]) -> _LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(text: str) -> str:
    """Backslash-escape the key separators so label values may contain
    them (motif names like ``M(3,2)`` carry literal commas)."""
    return (
        text.replace("\\", "\\\\").replace(",", "\\,").replace("=", "\\=")
    )


def _render_key(name: str, labels: _LabelItems) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{_escape(k)}={_escape(v)}" for k, v in labels)
    return f"{name}{{{rendered}}}"


def split_key(key: str) -> Tuple[str, _LabelItems]:
    """Invert :func:`_render_key` (used by the Prometheus renderer)."""
    if not key.endswith("}") or "{" not in key:
        return key, ()
    name, _, rest = key.partition("{")
    items: List[Tuple[str, str]] = []
    current_key: Optional[str] = None
    buf: List[str] = []
    chars = iter(rest[:-1])
    for ch in chars:
        if ch == "\\":
            buf.append(next(chars, ""))
        elif ch == "=" and current_key is None:
            current_key = "".join(buf)
            buf = []
        elif ch == ",":
            if current_key is not None:
                items.append((current_key, "".join(buf)))
            current_key = None
            buf = []
        else:
            buf.append(ch)
    if current_key is not None:
        items.append((current_key, "".join(buf)))
    return name, tuple(items)


class Counter:
    """Monotonically increasing count. Merge semantics: sum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount!r}")
        self.value += amount


class Gauge:
    """Point-in-time value. Merge semantics: max (associative, so the
    merged report is order-independent; suits high-water readings like
    reorder-buffer depth or shard imbalance)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """Fixed-boundary histogram. Merge semantics: per-bucket sum.

    ``buckets`` are upper bounds of the finite buckets; one implicit
    overflow bucket catches everything above the last boundary.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"bucket boundaries must be sorted and distinct: {buckets!r}"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Metric creation is guarded by a lock (several threads may lazily
    create the same metric); *updates* are plain attribute writes — the
    intended concurrency model is one registry per worker, merged
    afterwards, exactly like the engine's per-shard timing reports.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, _LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, _LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, _LabelItems], Histogram] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Metric accessors (get-or-create)
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter registered under ``name`` + ``labels``."""
        key = (name, _label_items(labels))
        metric = self._counters.get(key)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(key, Counter())
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge registered under ``name`` + ``labels``."""
        key = (name, _label_items(labels))
        metric = self._gauges.get(key)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(key, Gauge())
        return metric

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """The histogram registered under ``name`` + ``labels``.

        The first creation fixes the bucket boundaries; later calls with
        different ``buckets`` raise (mixed boundaries cannot merge).
        """
        key = (name, _label_items(labels))
        metric = self._histograms.get(key)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(key, Histogram(buckets))
        if metric.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with boundaries "
                f"{metric.buckets}, got {tuple(buckets)!r}"
            )
        return metric

    # ------------------------------------------------------------------
    # Snapshot / merge
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Deterministic plain-dict view (JSON-safe, sorted keys).

        The snapshot is the transport format: workers ship it across the
        process boundary, sinks serialize it, and :meth:`merge` folds
        snapshots into a registry.
        """
        return {
            "counters": {
                _render_key(*key): metric.value
                for key, metric in sorted(self._counters.items())
            },
            "gauges": {
                _render_key(*key): metric.value
                for key, metric in sorted(self._gauges.items())
            },
            "histograms": {
                _render_key(*key): {
                    "buckets": list(metric.buckets),
                    "counts": list(metric.counts),
                    "sum": metric.sum,
                    "count": metric.count,
                }
                for key, metric in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: dict) -> "MetricsRegistry":
        """Fold one snapshot into this registry (associative, in place).

        Counters and histogram buckets sum; gauges keep the maximum.
        Returns ``self`` so merges chain.
        """
        for key, value in snapshot.get("counters", {}).items():
            name, labels = split_key(key)
            self.counter(name, **dict(labels)).value += value
        for key, value in snapshot.get("gauges", {}).items():
            name, labels = split_key(key)
            gauge = self.gauge(name, **dict(labels))
            if value > gauge.value:
                gauge.value = value
        for key, data in snapshot.get("histograms", {}).items():
            name, labels = split_key(key)
            hist = self.histogram(
                name, buckets=data["buckets"], **dict(labels)
            )
            if len(hist.counts) != len(data["counts"]):
                raise ValueError(
                    f"histogram {key!r} bucket count mismatch on merge"
                )
            for i, c in enumerate(data["counts"]):
                hist.counts[i] += c
            hist.sum += data["sum"]
            hist.count += data["count"]
        return self

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        """A fresh registry holding exactly one snapshot's contents."""
        return cls().merge(snapshot)

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the current contents."""
        return render_prometheus(self.snapshot())

    def render_text(self) -> str:
        """Human-readable aligned listing of the current contents."""
        return render_text(self.snapshot())


# ----------------------------------------------------------------------
# Thread-local activation
# ----------------------------------------------------------------------


class _ThreadState(threading.local):
    registry: Optional[MetricsRegistry] = None


_STATE = _ThreadState()


def active() -> Optional[MetricsRegistry]:
    """The registry instrumented code should record into (None = off).

    This is *the* no-op gate: every instrumented call site starts with
    ``reg = metrics.active()`` / ``if reg is None: skip`` — no metric
    objects exist and no work happens while observability is disabled.
    """
    return _STATE.registry


def activate(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Swap the current thread's active registry; returns the previous one.

    Prefer the scoped :func:`repro.obs.observe` context manager; this
    low-level hook exists for the worker trampoline, which must activate
    and restore around a single task.
    """
    previous = _STATE.registry
    _STATE.registry = registry
    return previous


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name for the Prometheus exposition."""
    return "".join(
        ch if (ch.isalnum() or ch in "_:") else "_" for ch in name
    )


def _prom_labels(labels: _LabelItems) -> str:
    if not labels:
        return ""

    def quote(value: str) -> str:
        escaped = (
            value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n")
        )
        return f'"{escaped}"'

    inner = ",".join(f"{_prom_name(k)}={quote(v)}" for k, v in labels)
    return f"{{{inner}}}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(snapshot: dict) -> str:
    """Prometheus text exposition (v0.0.4) of one snapshot.

    Counters gain the conventional ``_total`` suffix, dots become
    underscores, histograms expose cumulative ``_bucket{le=...}`` series
    plus ``_sum``/``_count``. Output order is deterministic.
    """
    lines: List[str] = []
    seen_types: set = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key in sorted(snapshot.get("counters", {})):
        name, labels = split_key(key)
        prom = _prom_name(name)
        if not prom.endswith("_total"):
            prom += "_total"
        type_line(prom, "counter")
        value = snapshot["counters"][key]
        lines.append(f"{prom}{_prom_labels(labels)} {_format_value(value)}")
    for key in sorted(snapshot.get("gauges", {})):
        name, labels = split_key(key)
        prom = _prom_name(name)
        type_line(prom, "gauge")
        value = snapshot["gauges"][key]
        lines.append(f"{prom}{_prom_labels(labels)} {_format_value(value)}")
    for key in sorted(snapshot.get("histograms", {})):
        name, labels = split_key(key)
        prom = _prom_name(name)
        type_line(prom, "histogram")
        data = snapshot["histograms"][key]
        cumulative = 0
        for bound, count in zip(data["buckets"], data["counts"]):
            cumulative += count
            le = _format_value(float(bound))
            items = labels + (("le", le),)
            lines.append(f"{prom}_bucket{_prom_labels(items)} {cumulative}")
        cumulative += data["counts"][-1]
        items = labels + (("le", "+Inf"),)
        lines.append(f"{prom}_bucket{_prom_labels(items)} {cumulative}")
        lines.append(
            f"{prom}_sum{_prom_labels(labels)} {_format_value(data['sum'])}"
        )
        lines.append(f"{prom}_count{_prom_labels(labels)} {data['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def histogram_quantile(data: dict, q: float) -> float:
    """Estimate quantile ``q`` of a snapshot histogram by interpolation.

    The Prometheus estimator: find the bucket the ``q``-th observation
    lands in, then interpolate linearly between its lower and upper
    bound (the first finite bucket's lower bound is 0). Observations in
    the overflow bucket clamp to the last finite boundary — the
    estimate is then a lower bound, exactly as in PromQL.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    buckets = data["buckets"]
    counts = data["counts"]
    total = data["count"]
    if total <= 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for i, bound in enumerate(buckets):
        prev_cumulative = cumulative
        cumulative += counts[i]
        if cumulative >= rank:
            lower = buckets[i - 1] if i > 0 else 0.0
            in_bucket = counts[i]
            if in_bucket == 0:
                return float(bound)
            frac = (rank - prev_cumulative) / in_bucket
            return lower + (float(bound) - lower) * min(max(frac, 0.0), 1.0)
    return float(buckets[-1])


def _quantile_suffix(data: dict) -> str:
    if not data["count"]:
        return ""
    parts = [
        f"p{int(q * 100)}={histogram_quantile(data, q):g}"
        for q in (0.50, 0.95, 0.99)
    ]
    return " " + " ".join(parts)


def render_text(snapshot: dict) -> str:
    """Aligned human listing of one snapshot (the ``--trace`` CLI view)."""
    rows: List[Tuple[str, str]] = []
    for key in sorted(snapshot.get("counters", {})):
        rows.append((key, _format_value(snapshot["counters"][key])))
    for key in sorted(snapshot.get("gauges", {})):
        rows.append((key, _format_value(snapshot["gauges"][key])))
    for key in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][key]
        mean = data["sum"] / data["count"] if data["count"] else 0.0
        rows.append(
            (
                key,
                f"count={data['count']} sum={data['sum']:g} mean={mean:g}"
                + _quantile_suffix(data),
            )
        )
    if not rows:
        return "(no metrics recorded)"
    width = max(len(name) for name, _ in rows)
    return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)
