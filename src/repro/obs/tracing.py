"""Span-based tracing with explicit parent ids across process boundaries.

A *span* is a named, timed region with attributes; spans nest through a
per-thread stack, giving each span an explicit ``parent_id``. The
resulting flat span list — each span knows its parent — reassembles into
a tree with :func:`stitch_trace` regardless of which process produced
which span. That is the whole cross-process story:

1. the dispatcher opens ``query.*`` spans and captures its current
   :class:`TraceContext` (trace id + current span id);
2. the context rides inside the shard task envelope (the same payload
   that already ships ``(shm_name, shard bounds)``);
3. the worker activates a fresh tracer parented at the shipped context,
   runs the task under ``p1.*``/``p2.*`` spans, and returns its
   serialized span list with the shard output;
4. the dispatcher stitches worker spans into its own list — span ids
   embed the producing pid, so ids never collide and the stitched tree
   provably crosses the worker boundary.

Like the metrics registry (:mod:`repro.obs.metrics`), tracing is
activated per thread and the module-level :func:`span` helper is a
no-op returning a shared singleton while no tracer is active.

Span taxonomy (see README "Observability"): ``query.*`` engine entry
points, ``p1.*`` structural matching, ``p2.*`` instance search /
kernels, ``stream.*`` streaming layer, ``resilience.*`` fault handling.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Span",
    "SpanNode",
    "TraceContext",
    "Tracer",
    "active",
    "activate",
    "ambient_span_name",
    "current_context",
    "disable_ambient",
    "enable_ambient",
    "set_span_hook",
    "span",
    "stitch_trace",
    "render_trace_tree",
    "span_totals",
]

_SEQ = itertools.count(1)

# ----------------------------------------------------------------------
# Ambient span registry (for the sampling profiler) and span hook (for
# the flight recorder). Both are zero-cost while unused: span push/pop
# checks one module-level int / None respectively.
# ----------------------------------------------------------------------

#: thread ident -> innermost open span *name* on that thread, maintained
#: only while at least one profiler holds the registry enabled. The
#: sampler thread reads it to attribute samples to trace phases.
_AMBIENT: Dict[int, str] = {}
_AMBIENT_USERS = 0
_AMBIENT_LOCK = threading.Lock()

#: Optional callback invoked with every *finished* span dict — the
#: flight recorder's tap. None (the default) keeps span exit at its
#: usual cost.
_SPAN_HOOK = None


def enable_ambient() -> None:
    """Reference-count the ambient registry on (profiler ``start``)."""
    global _AMBIENT_USERS
    with _AMBIENT_LOCK:
        _AMBIENT_USERS += 1


def disable_ambient() -> None:
    """Drop one ambient-registry user; clears the table at zero."""
    global _AMBIENT_USERS
    with _AMBIENT_LOCK:
        _AMBIENT_USERS = max(0, _AMBIENT_USERS - 1)
        if _AMBIENT_USERS == 0:
            _AMBIENT.clear()


def ambient_span_name(thread_ident: int) -> Optional[str]:
    """Innermost open span name on a thread (None when none / disabled)."""
    return _AMBIENT.get(thread_ident)


def set_span_hook(hook) -> None:
    """Install (or clear, with None) the finished-span callback."""
    global _SPAN_HOOK
    _SPAN_HOOK = hook


def _ambient_update(stack: "List[Span]") -> None:
    """Refresh this thread's ambient entry from a span stack."""
    ident = threading.get_ident()
    if stack:
        _AMBIENT[ident] = stack[-1].name
    else:
        _AMBIENT.pop(ident, None)

#: ``(trace_id, parent_span_id)`` — everything a worker needs to open
#: spans under the dispatcher's tree. Kept a plain tuple so it pickles
#: as a few bytes inside the task envelope.
TraceContext = Tuple[str, Optional[str]]


def _new_id() -> str:
    """A process-unique span id: ``<pid hex>-<sequence hex>``.

    Embedding the pid makes ids from different worker processes disjoint
    by construction (and makes "which process produced this span"
    readable straight off a trace dump).
    """
    return f"{os.getpid():x}-{next(_SEQ):x}"


class Span:
    """One named, timed region of a trace."""

    __slots__ = (
        "name", "span_id", "parent_id", "trace_id", "start", "end", "attrs"
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: Optional[str],
        trace_id: str,
        start: float,
        attrs: Dict[str, object],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.start = start
        self.end = start
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Seconds between enter and exit."""
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-safe form (the worker return / JSONL sink format)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span_obj = cls(
            data["name"],
            data["span_id"],
            data.get("parent_id"),
            data.get("trace_id", ""),
            data["start"],
            dict(data.get("attrs", {})),
        )
        span_obj.end = data["end"]
        return span_obj


class _SpanHandle:
    """Context manager recording one span on its tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span_obj: Span) -> None:
        self._tracer = tracer
        self._span = span_obj

    def set(self, **attrs: object) -> "_SpanHandle":
        """Attach attributes to the live span."""
        self._span.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        self._tracer._push(self._span)
        self._span.start = self._span.end = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.end = time.perf_counter()
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self._span)


class _NoopSpan:
    """Shared do-nothing span handle returned while tracing is off."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects finished spans for one trace within one process.

    The ambient parent (what a new span without an explicit parent
    attaches to) is tracked per thread; the finished-span list is shared
    under a lock, so worker threads and foreign (shipped-back) spans can
    land in the same tracer safely.
    """

    def __init__(
        self,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id if trace_id is not None else _new_id()
        self.root_parent = parent_id
        self._finished: List[Span] = []
        self._lock = threading.Lock()
        self._stacks = threading.local()

    # -- ambient span stack (per thread) --------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "value", None)
        if stack is None:
            stack = self._stacks.value = []
        return stack

    def _push(self, span_obj: Span) -> None:
        stack = self._stack()
        stack.append(span_obj)
        if _AMBIENT_USERS:
            _ambient_update(stack)

    def _pop(self, span_obj: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span_obj:
            stack.pop()
        else:  # mis-nested exit; keep the trace usable
            try:
                stack.remove(span_obj)
            except ValueError:
                pass
        if _AMBIENT_USERS:
            _ambient_update(stack)
        with self._lock:
            self._finished.append(span_obj)
        if _SPAN_HOOK is not None:
            try:
                _SPAN_HOOK(span_obj.to_dict())
            except Exception:  # a broken tap must never break tracing
                pass

    def current_span_id(self) -> Optional[str]:
        """Ambient parent id for this thread (falls back to the root
        parent the tracer was opened under)."""
        stack = self._stack()
        return stack[-1].span_id if stack else self.root_parent

    def context(self) -> TraceContext:
        """The shippable ``(trace_id, parent span id)`` pair."""
        return (self.trace_id, self.current_span_id())

    # -- span creation ---------------------------------------------------

    def span(
        self,
        name: str,
        parent_id: Optional[str] = None,
        **attrs: object,
    ) -> _SpanHandle:
        """A context manager opening one span under this tracer.

        ``parent_id`` overrides the ambient parent (used by workers to
        attach their first span to the shipped dispatcher context).
        """
        effective_parent = (
            parent_id if parent_id is not None else self.current_span_id()
        )
        span_obj = Span(
            name, _new_id(), effective_parent, self.trace_id, 0.0, dict(attrs)
        )
        return _SpanHandle(self, span_obj)

    # -- collection ------------------------------------------------------

    def add_spans(self, span_dicts: Sequence[dict]) -> None:
        """Adopt serialized spans produced elsewhere (worker results)."""
        foreign = [Span.from_dict(d) for d in span_dicts]
        with self._lock:
            self._finished.extend(foreign)

    def spans(self) -> List[dict]:
        """Serialized finished spans, ordered by start time."""
        with self._lock:
            finished = list(self._finished)
        finished.sort(key=lambda s: (s.start, s.span_id))
        return [s.to_dict() for s in finished]

    def drain(self) -> List[dict]:
        """Like :meth:`spans` but clears the collected list."""
        with self._lock:
            finished = list(self._finished)
            self._finished.clear()
        finished.sort(key=lambda s: (s.start, s.span_id))
        return [s.to_dict() for s in finished]


# ----------------------------------------------------------------------
# Thread-local activation (mirrors repro.obs.metrics)
# ----------------------------------------------------------------------


class _ThreadState(threading.local):
    tracer: Optional[Tracer] = None


_STATE = _ThreadState()


def active() -> Optional[Tracer]:
    """The current thread's tracer, or None when tracing is off."""
    return _STATE.tracer


def activate(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Swap the current thread's tracer; returns the previous one."""
    previous = _STATE.tracer
    _STATE.tracer = tracer
    if _AMBIENT_USERS:
        # Keep the profiler's span attribution truthful across tracer
        # swaps (worker trampoline activating a fresh per-task tracer,
        # then restoring the dispatcher's).
        _ambient_update(tracer._stack() if tracer is not None else [])
    return previous


def span(name: str, **attrs: object):
    """Open a span on the active tracer (shared no-op handle when off)."""
    tracer = _STATE.tracer
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def current_context() -> Optional[TraceContext]:
    """The shippable trace context of the active tracer (None when off)."""
    tracer = _STATE.tracer
    return tracer.context() if tracer is not None else None


# ----------------------------------------------------------------------
# Stitching and rendering
# ----------------------------------------------------------------------


class SpanNode:
    """One node of a stitched trace tree."""

    __slots__ = ("span", "children")

    def __init__(self, span_obj: Span) -> None:
        self.span = span_obj
        self.children: List["SpanNode"] = []


def stitch_trace(span_dicts: Sequence[dict]) -> List[SpanNode]:
    """Assemble a flat span list into parent→child trees.

    Spans whose parent is absent from the list (or None) become roots —
    a fully stitched single-query trace has exactly one. Children sort
    by start time, so the tree reads chronologically.
    """
    spans = [
        d if isinstance(d, Span) else Span.from_dict(d) for d in span_dicts
    ]
    nodes = {s.span_id: SpanNode(s) for s in spans}
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent = node.span.parent_id
        if parent is not None and parent in nodes:
            nodes[parent].children.append(node)
        else:
            roots.append(node)
    order = lambda n: (n.span.start, n.span.span_id)  # noqa: E731
    for node in nodes.values():
        node.children.sort(key=order)
    roots.sort(key=order)
    return roots


def render_trace_tree(roots: Sequence[SpanNode]) -> str:
    """Indented human rendering of stitched trace trees."""
    lines: List[str] = []

    def visit(node: SpanNode, depth: int) -> None:
        s = node.span
        attrs = ""
        if s.attrs:
            rendered = ", ".join(
                f"{k}={v}" for k, v in sorted(s.attrs.items())
            )
            attrs = f"  [{rendered}]"
        pid = s.span_id.split("-", 1)[0]
        lines.append(
            f"{'  ' * depth}{s.name}  {s.duration * 1e3:.2f}ms"
            f"  (span={s.span_id} pid={pid}){attrs}"
        )
        for child in node.children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return "\n".join(lines) if lines else "(no spans recorded)"


def span_totals(span_dicts: Sequence[dict]) -> Dict[str, float]:
    """Total duration per span name — the Table 4-style phase breakdown."""
    totals: Dict[str, float] = {}
    for d in span_dicts:
        duration = d["end"] - d["start"]
        totals[d["name"]] = totals.get(d["name"], 0.0) + duration
    return totals
