"""Dependency-free sampling wall-clock profiler with span attribution.

A :class:`Profiler` runs a daemon thread that wakes ``hz`` times per
second, snapshots the interpreter's live frames via
:func:`sys._current_frames`, and folds each sampled stack into a
*collapsed-stack* table — ``frame;frame;frame -> count`` lines in the
format every flamegraph renderer understands. No signals, no C
extension, no per-line tracing overhead: the profiled code runs
completely unmodified and pays only for the GIL handoffs the sampler
thread forces (~1% at the default rate).

Samples are attributed to the **ambient trace span** of the sampled
thread (:mod:`repro.obs.tracing` keeps a per-thread innermost-span-name
registry while at least one profiler runs): the span name becomes the
root frame of every collapsed line and feeds the ``by_span`` table, so
a profile answers both "which function burns the time" and "inside
which phase (``p1.match`` / ``p2.enumerate`` / ...)" — and the by-span
sample shares reconcile with the tracer's own ``span_totals``.

Like metrics and tracing, profiling is **off by default**, activated
per thread (:func:`active`/:func:`activate`), and crosses process
boundaries through the worker envelope: the parallel engine ships the
active profiler's rate inside each shard task, the worker trampoline
arms a per-task :class:`Profiler` around the task, and the serialized
:class:`ProfileReport` rides home in the ``("obs", ...)`` return
payload where the dispatcher :meth:`~Profiler.adopt`\\ s it.

>>> prof = Profiler(hz=50)
>>> prof.start(); _ = sum(i * i for i in range(100000)); prof.stop()
>>> prof.report.samples >= 0
True
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Dict, Iterable, List, Optional, Set, Tuple

from . import tracing as _tracing

__all__ = [
    "DEFAULT_HZ",
    "ProfileReport",
    "Profiler",
    "active",
    "activate",
]

#: Default sampling rate. Prime, so the sampler cannot phase-lock with
#: periodic work and systematically over/under-sample one code path.
DEFAULT_HZ = 97

#: Root frame used for samples taken while no span is open on the
#: sampled thread.
NO_SPAN = "(no span)"

#: Deepest stack recorded per sample; frames below the cut are dropped
#: from the *root* end so the hot leaf always survives.
MAX_STACK_DEPTH = 64


class ProfileReport:
    """Aggregated samples of one (or several merged) profiling runs.

    ``collapsed`` maps ``"span;module:func;module:func"`` lines to sample
    counts — the flamegraph wire format. ``by_span`` maps the ambient
    span name active at sample time to its sample count.
    """

    __slots__ = ("hz", "samples", "collapsed", "by_span")

    def __init__(self, hz: float = DEFAULT_HZ) -> None:
        self.hz = float(hz)
        self.samples = 0
        self.collapsed: Dict[str, int] = {}
        self.by_span: Dict[str, int] = {}

    # -- recording -------------------------------------------------------

    def add_stack(self, span_name: Optional[str], frames: List[str]) -> None:
        """Fold one sampled stack (root-first frames) into the tables."""
        root = span_name if span_name else NO_SPAN
        line = ";".join([root] + frames)
        self.collapsed[line] = self.collapsed.get(line, 0) + 1
        self.by_span[root] = self.by_span.get(root, 0) + 1
        self.samples += 1

    def merge(self, other: "ProfileReport") -> "ProfileReport":
        """Fold another report in (associative; sample counts sum)."""
        self.samples += other.samples
        for line, count in other.collapsed.items():
            self.collapsed[line] = self.collapsed.get(line, 0) + count
        for span_name, count in other.by_span.items():
            self.by_span[span_name] = self.by_span.get(span_name, 0) + count
        return self

    # -- (de)serialization ----------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form (the worker return / JSONL sink format)."""
        return {
            "hz": self.hz,
            "samples": self.samples,
            "collapsed": dict(self.collapsed),
            "by_span": dict(self.by_span),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileReport":
        report = cls(hz=data.get("hz", DEFAULT_HZ))
        report.samples = int(data.get("samples", 0))
        report.collapsed = {
            str(k): int(v) for k, v in data.get("collapsed", {}).items()
        }
        report.by_span = {
            str(k): int(v) for k, v in data.get("by_span", {}).items()
        }
        return report

    # -- analysis --------------------------------------------------------

    def top_functions(
        self, n: int = 15, cumulative: bool = False
    ) -> List[Tuple[str, int]]:
        """The ``n`` hottest frames by self (leaf) or cumulative samples.

        Self samples count a frame only when it is the sampled leaf;
        cumulative samples count it whenever it appears anywhere on the
        stack (each frame at most once per sample, so recursion cannot
        inflate past ``samples``).
        """
        totals: Dict[str, int] = {}
        for line, count in self.collapsed.items():
            frames = line.split(";")[1:]  # drop the span root
            if not frames:
                continue
            if cumulative:
                for frame in set(frames):
                    totals[frame] = totals.get(frame, 0) + count
            else:
                leaf = frames[-1]
                totals[leaf] = totals.get(leaf, 0) + count
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def dominant_span(self, prefixes: Iterable[str] = ("p1.", "p2.")) -> Optional[str]:
        """The span name holding the most samples among ``prefixes``.

        The reconciliation hook: on a healthy profile the dominant phase
        by samples agrees with the dominant phase by tracer span totals.
        """
        eligible = {
            name: count
            for name, count in self.by_span.items()
            if any(name.startswith(p) for p in prefixes)
        }
        if not eligible:
            return None
        return max(eligible.items(), key=lambda kv: (kv[1], kv[0]))[0]

    def render_text(self, n: int = 15) -> str:
        """Human summary: sample counts, span shares, top frames."""
        lines = [
            f"profile: {self.samples} samples @ {self.hz:g} Hz "
            f"(~{self.samples / self.hz:.2f}s sampled)"
        ]
        if self.by_span:
            lines.append("by span:")
            total = max(1, self.samples)
            for name, count in sorted(
                self.by_span.items(), key=lambda kv: (-kv[1], kv[0])
            ):
                lines.append(
                    f"  {name:<28} {count:>7}  {100.0 * count / total:5.1f}%"
                )
        for title, cumulative in (("self", False), ("cumulative", True)):
            ranked = self.top_functions(n, cumulative=cumulative)
            if ranked:
                lines.append(f"top {len(ranked)} frames ({title}):")
                for frame, count in ranked:
                    lines.append(f"  {frame:<52} {count:>7}")
        return "\n".join(lines)

    def write_collapsed(self, path: str) -> None:
        """Write ``stack count`` lines (flamegraph.pl / speedscope input)."""
        with open(path, "w", encoding="utf-8") as fh:
            for line in sorted(self.collapsed):
                fh.write(f"{line} {self.collapsed[line]}\n")


def _format_frame(frame) -> str:
    """``module:function`` — compact, readable straight off a flamegraph."""
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{frame.f_code.co_name}"


def _walk_stack(frame) -> List[str]:
    """Root-first frame names of one sampled thread, depth-capped."""
    frames: List[str] = []
    while frame is not None and len(frames) < MAX_STACK_DEPTH:
        frames.append(_format_frame(frame))
        frame = frame.f_back
    frames.reverse()
    return frames


class Profiler:
    """Background sampling profiler for a fixed set of threads.

    Parameters
    ----------
    hz:
        Sampling rate. Off-by-default design: nothing runs until
        :meth:`start`.
    threads:
        Thread idents to sample. ``None`` (default) pins the profiler to
        the thread that *created* it — the right scope for per-task
        worker profiling and for the dispatcher, whose pool-backend
        tasks arm their own profilers (so samples are never counted
        twice by nested profilers on different threads).
    all_threads:
        Sample every live thread except the sampler itself. For
        standalone whole-process profiling (the ``profile``-less CLI
        paths); do not combine with per-task profilers in the same
        process.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        threads: Optional[Iterable[int]] = None,
        all_threads: bool = False,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz!r}")
        self.hz = float(hz)
        self._interval = 1.0 / self.hz
        self._all_threads = bool(all_threads)
        self._threads: Optional[Set[int]] = (
            None
            if all_threads
            else (
                set(threads)
                if threads is not None
                else {threading.get_ident()}
            )
        )
        self.report = ProfileReport(hz=self.hz)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._pid: Optional[int] = None

    # -- lifecycle -------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None

    @property
    def sampling_here(self) -> bool:
        """Whether this profiler's sampler thread lives in *this* process.

        A fork-based process pool clones the dispatcher's thread-local
        state into its workers, so a worker can inherit an ``active()``
        profiler whose sampler thread only exists in the parent — a
        ghost that records nothing here. The worker trampoline uses this
        predicate (not mere presence) to decide whether arming its own
        per-task profiler would double-count.
        """
        return self._thread is not None and self._pid == os.getpid()

    def start(self) -> "Profiler":
        """Arm the sampler thread (and the tracing ambient registry)."""
        if self._thread is not None:
            return self
        self._pid = os.getpid()
        self._stop.clear()
        _tracing.enable_ambient()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> ProfileReport:
        """Stop sampling; safe to call twice. Returns the report."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=2.0)
            _tracing.disable_ambient()
        return self.report

    def __enter__(self) -> "Profiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- sampling --------------------------------------------------------

    def _run(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.wait(self._interval):
            self._sample_once(own_ident)

    def _sample_once(self, own_ident: int) -> None:
        frames = sys._current_frames()
        try:
            for ident, frame in frames.items():
                if ident == own_ident:
                    continue
                if self._threads is not None and ident not in self._threads:
                    continue
                span_name = _tracing.ambient_span_name(ident)
                stack = _walk_stack(frame)
                with self._lock:
                    self.report.add_stack(span_name, stack)
        finally:
            del frames  # drop frame references promptly

    # -- cross-process folding ------------------------------------------

    def adopt(self, profile_dict: Optional[dict]) -> None:
        """Fold a worker's serialized :class:`ProfileReport` into ours."""
        if not profile_dict:
            return
        foreign = ProfileReport.from_dict(profile_dict)
        with self._lock:
            self.report.merge(foreign)


# ----------------------------------------------------------------------
# Thread-local activation (mirrors repro.obs.metrics / tracing)
# ----------------------------------------------------------------------


class _ThreadState(threading.local):
    profiler: Optional[Profiler] = None


_STATE = _ThreadState()


def active() -> Optional[Profiler]:
    """The current thread's profiler, or None when profiling is off.

    This is the gate the parallel engine uses to decide whether shard
    tasks should ship a ``profile_hz`` and whether worker profiles
    should be adopted — one attribute read when off.
    """
    return _STATE.profiler


def activate(profiler: Optional[Profiler]) -> Optional[Profiler]:
    """Swap the current thread's profiler; returns the previous one."""
    previous = _STATE.profiler
    _STATE.profiler = profiler
    return previous
