"""Fault flight recorder: a bounded ring buffer of recent context.

When a shard crashes, times out, or forces a backend degradation, the
classified :class:`~repro.resilience.FaultEvent` alone says *what*
failed — never what the system was doing in the seconds before. The
flight recorder closes that gap: while installed, it continuously
retains the last ``capacity`` observability records (finished spans via
the tracing span hook, metric snapshots, fault events, free-form
notes) in a :class:`collections.deque`, and on demand :meth:`dumps
<FlightRecorder.dump>` the whole ring — plus the active registry's
current metrics — as a JSONL *diagnostic bundle* next to the workload.

Memory is strictly bounded (ring capacity × one small dict), dump count
is strictly bounded (``max_bundles``, oldest deleted first), and the
recorder is **off by default**: nothing is installed unless code calls
:func:`install` or the ``REPRO_FLIGHT_DIR`` environment variable names
a bundle directory (:func:`maybe_install_from_env`, checked by the
parallel engine and the CLI). The resilience layer dumps automatically
on shard retry, degradation, and timeout faults
(:mod:`repro.resilience.retry`) and on SIGTERM through the shm
registry's chaining handler — so every bundle ships the last N records
of context instead of nothing.

Bundle format: JSON lines. The first record is ``{"kind":
"flight-header", "reason": ..., "pid": ..., "ts": ...}``; subsequent
records are the ring entries oldest-first (each stamped ``ts`` +
``kind``), and the final record carries the currently active metrics
snapshot when one exists.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Deque, List, Optional

from . import metrics as _metrics
from . import tracing as _tracing

__all__ = [
    "ENV_VAR",
    "FlightRecorder",
    "install",
    "installed",
    "maybe_install_from_env",
    "uninstall",
]

#: Environment switch: set to a directory path to arm a process-wide
#: recorder writing its bundles there (inherited by CLI runs and chaos
#: drills without any code change).
ENV_VAR = "REPRO_FLIGHT_DIR"

#: Ring capacity and bundle cap defaults: enough context to diagnose a
#: fault, small enough to never matter for memory or disk.
DEFAULT_CAPACITY = 512
DEFAULT_MAX_BUNDLES = 16


class FlightRecorder:
    """Bounded in-memory recorder of recent observability records."""

    def __init__(
        self,
        bundle_dir: str = ".",
        capacity: int = DEFAULT_CAPACITY,
        max_bundles: int = DEFAULT_MAX_BUNDLES,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if max_bundles < 1:
            raise ValueError(f"max_bundles must be positive, got {max_bundles}")
        self.bundle_dir = bundle_dir
        self.capacity = capacity
        self.max_bundles = max_bundles
        self._records: Deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        #: Paths of bundles written by this recorder, oldest first.
        self.bundles: List[str] = []

    # -- recording -------------------------------------------------------

    def note(self, kind: str, **fields: object) -> None:
        """Append one timestamped record to the ring."""
        record = {"ts": time.time(), "kind": kind}
        record.update(fields)
        with self._lock:
            self._records.append(record)

    def note_span(self, span_dict: dict) -> None:
        """Tap for :func:`repro.obs.tracing.set_span_hook`."""
        self.note("span", span=span_dict)

    def note_metrics(self, snapshot: dict) -> None:
        """Retain one metrics snapshot (e.g. a worker's shipped copy)."""
        self.note("metrics", snapshot=snapshot)

    def note_fault(
        self,
        category: str,
        message: str,
        shard_index: Optional[int] = None,
        backend: Optional[str] = None,
        attempt: Optional[int] = None,
    ) -> None:
        """Retain one classified fault event."""
        self.note(
            "fault",
            category=category,
            message=message,
            shard_index=shard_index,
            backend=backend,
            attempt=attempt,
        )

    def records(self) -> List[dict]:
        """Current ring contents, oldest first (a copy)."""
        with self._lock:
            return list(self._records)

    # -- bundles ---------------------------------------------------------

    def dump(self, reason: str) -> Optional[str]:
        """Write the ring as a JSONL diagnostic bundle; returns its path.

        Never raises: a recorder that cannot write (read-only directory,
        disk full, interpreter shutdown) must not mask the fault being
        diagnosed. Returns None on failure.
        """
        with self._lock:
            records = list(self._records)
            self._seq += 1
            seq = self._seq
        safe_reason = "".join(
            ch if (ch.isalnum() or ch in "-_") else "-" for ch in reason
        )
        path = os.path.join(
            self.bundle_dir, f"flight-{os.getpid()}-{seq:03d}-{safe_reason}.jsonl"
        )
        header = {
            "kind": "flight-header",
            "reason": reason,
            "pid": os.getpid(),
            "ts": time.time(),
            "num_records": len(records),
        }
        registry = _metrics.active()
        try:
            os.makedirs(self.bundle_dir, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(header, sort_keys=True) + "\n")
                for record in records:
                    fh.write(json.dumps(record, sort_keys=True) + "\n")
                if registry is not None:
                    fh.write(
                        json.dumps(
                            {
                                "kind": "metrics",
                                "ts": time.time(),
                                "snapshot": registry.snapshot(),
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
        except OSError:
            return None
        self.bundles.append(path)
        while len(self.bundles) > self.max_bundles:
            stale = self.bundles.pop(0)
            try:
                os.unlink(stale)
            except OSError:
                pass
        return path


# ----------------------------------------------------------------------
# Process-wide installation
# ----------------------------------------------------------------------

_INSTALLED: Optional[FlightRecorder] = None
_INSTALL_LOCK = threading.Lock()
_SIGTERM_HOOKED = False


def installed() -> Optional[FlightRecorder]:
    """The process-wide recorder, or None while flight recording is off.

    The one-predicate gate every producer site checks.
    """
    return _INSTALLED


def install(
    recorder: Optional[FlightRecorder] = None, **kwargs
) -> FlightRecorder:
    """Arm a process-wide recorder (idempotent; returns the active one).

    Wires the tracing span hook so finished spans land in the ring, and
    registers a SIGTERM dump through the shm registry's chaining handler
    — a terminated run leaves a ``flight-*-sigterm.jsonl`` bundle behind.
    """
    global _INSTALLED, _SIGTERM_HOOKED
    with _INSTALL_LOCK:
        if _INSTALLED is not None:
            return _INSTALLED
        _INSTALLED = recorder if recorder is not None else FlightRecorder(**kwargs)
        _tracing.set_span_hook(_INSTALLED.note_span)
        if not _SIGTERM_HOOKED:
            _SIGTERM_HOOKED = True
            from repro.resilience import shm_registry as _shm

            _shm.register_sigterm_hook(_dump_on_sigterm)
        return _INSTALLED


def _dump_on_sigterm() -> None:
    recorder = _INSTALLED
    if recorder is not None:
        recorder.dump("sigterm")


def uninstall() -> None:
    """Disarm the process-wide recorder and the span tap."""
    global _INSTALLED
    with _INSTALL_LOCK:
        _INSTALLED = None
        _tracing.set_span_hook(None)


def maybe_install_from_env() -> Optional[FlightRecorder]:
    """Install a recorder when :data:`ENV_VAR` names a bundle directory.

    Called by the parallel engine's constructor and the CLI entry point;
    a no-op (and one ``os.environ`` read) when the variable is unset.
    """
    target = os.environ.get(ENV_VAR)
    if not target:
        return _INSTALLED
    return install(bundle_dir=target)
