"""Table 3 — statistics of the (synthetic stand-in) datasets."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import build_datasets
from repro.graph.statistics import dataset_statistics


def run(
    scale: float = 1.0,
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
) -> dict:
    """Compute the Table 3 row for every generated dataset."""
    rows = []
    for bundle in build_datasets(scale=scale, seed=seed, names=datasets):
        stats = dataset_statistics(bundle.graph)
        rows.append(
            [
                bundle.name,
                stats.num_nodes,
                stats.num_connected_pairs,
                stats.num_edges,
                round(stats.average_flow, 3),
                round(stats.edges_per_pair, 3),
                round(stats.density, 4),
            ]
        )
    return {
        "name": "table3",
        "title": "Table 3 — dataset statistics (scaled synthetic stand-ins)",
        "params": {"scale": scale, "seed": seed},
        "tables": [
            {
                "title": None,
                "headers": [
                    "Dataset",
                    "#nodes",
                    "#connected node pairs",
                    "#edges",
                    "Avg. flow per edge",
                    "edges/pair",
                    "density",
                ],
                "rows": rows,
            }
        ],
    }
