"""Figure 10 — number of instances and runtime for varying φ (δ fixed).

Expected shape (paper §6.2.2): counts and runtime drop as φ grows, because
partial instances violating φ are pruned early.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import PHI_GRIDS, build_datasets
from repro.utils.timing import Timer


def run(
    scale: float = 1.0,
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    motifs: Optional[Sequence[str]] = None,
    phis: Optional[Sequence[float]] = None,
) -> dict:
    series = []
    for bundle in build_datasets(scale=scale, seed=seed, names=datasets):
        grid = list(phis) if phis is not None else PHI_GRIDS[bundle.name]
        catalog = bundle.motifs(motifs)
        counts = {name: [] for name in catalog}
        times = {name: [] for name in catalog}
        for name, motif in catalog.items():
            bundle.engine.structural_matches(motif)  # warm the P1 cache
            for phi in grid:
                with Timer() as timer:
                    result = bundle.engine.find_instances(
                        motif, phi=phi, collect=False
                    )
                counts[name].append(result.count)
                times[name].append(round(timer.elapsed, 4))
        series.append(
            {
                "title": f"{bundle.name}: #instances vs phi (delta={bundle.delta:g})",
                "x_label": "phi",
                "x": grid,
                "lines": counts,
            }
        )
        series.append(
            {
                "title": f"{bundle.name}: time (s) vs phi (delta={bundle.delta:g})",
                "x_label": "phi",
                "x": grid,
                "lines": times,
            }
        )
    return {
        "name": "fig10",
        "title": "Figure 10 — #instances and time for different values of phi",
        "params": {"scale": scale, "seed": seed},
        "series": series,
    }
