"""Figure 11 — flow of the k-th best instance as k grows.

Expected shape: the k-th flow decreases with k, with a flattening drop
rate for large k (the x-axis is logarithmic in the paper).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.topk import top_k_instances
from repro.experiments.common import K_GRID, build_datasets


def run(
    scale: float = 1.0,
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    motifs: Optional[Sequence[str]] = None,
    ks: Optional[Sequence[int]] = None,
) -> dict:
    grid = list(ks) if ks is not None else K_GRID
    k_max = max(grid)
    series = []
    for bundle in build_datasets(scale=scale, seed=seed, names=datasets):
        catalog = bundle.motifs(motifs)
        lines = {}
        for name, motif in catalog.items():
            matches = bundle.engine.structural_matches(motif)
            # One top-k_max search serves every k on the grid.
            top = top_k_instances(matches, k_max, delta=bundle.delta)
            flows = [inst.flow for inst in top]
            line = []
            for k in grid:
                if not flows:
                    line.append(0.0)
                else:
                    index = min(k, len(flows)) - 1
                    line.append(round(flows[index], 3))
            lines[name] = line
        series.append(
            {
                "title": f"{bundle.name}: flow of k-th instance (delta={bundle.delta:g})",
                "x_label": "k",
                "x": grid,
                "lines": lines,
            }
        )
    return {
        "name": "fig11",
        "title": "Figure 11 — flow of the k-th best instance",
        "params": {"scale": scale, "seed": seed},
        "series": series,
    }
