"""Figure 14 — motif significance against flow-permuted random networks.

For every motif: the real instance count, the distribution of counts over
``num_random`` flow permutations (box-plot statistics), the z-score and the
empirical p-value. Expected shape (paper §6.3): real counts far above every
random count (p = 0), positive z-scores throughout; cyclic motifs among the
top z-scores on Bitcoin, chains on Facebook, acyclic motifs on Passenger.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import build_datasets
from repro.significance.experiment import motif_significance


def run(
    scale: float = 1.0,
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    motifs: Optional[Sequence[str]] = None,
    num_random: int = 20,
) -> dict:
    tables = []
    for bundle in build_datasets(scale=scale, seed=seed, names=datasets):
        catalog = bundle.motifs(motifs)
        results = motif_significance(
            bundle.graph, catalog, num_random=num_random, seed=seed
        )
        rows = []
        for record in results:
            summary = record.summary
            z_text = (
                "inf" if summary.z == float("inf") else f"{summary.z:.2f}"
            )
            rows.append(
                [
                    record.motif_name,
                    record.real_count,
                    round(summary.mean, 1),
                    round(summary.std, 2),
                    int(summary.minimum),
                    round(summary.median, 1),
                    int(summary.maximum),
                    z_text,
                    round(summary.p_value, 3),
                ]
            )
        tables.append(
            {
                "title": (
                    f"{bundle.name} (delta={bundle.delta:g}, phi={bundle.phi:g}, "
                    f"{num_random} permutations)"
                ),
                "headers": [
                    "Motif",
                    "real",
                    "rand mean",
                    "rand std",
                    "rand min",
                    "rand median",
                    "rand max",
                    "z-score",
                    "p-value",
                ],
                "rows": rows,
            }
        )
    return {
        "name": "fig14",
        "title": "Figure 14 — significance of motifs vs randomized networks",
        "params": {"scale": scale, "seed": seed, "num_random": num_random},
        "tables": tables,
    }
