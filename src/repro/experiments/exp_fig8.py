"""Figure 8 — the two-phase algorithm vs the join-algorithm baseline.

Both methods search every Figure 3 motif at the dataset's default δ/φ; the
result counts are asserted equal (the join baseline is exact) and the
runtimes are reported side by side. The paper's expected shape: two-phase
roughly twice as fast, because the join materializes sub-motif instances
that never become full instances.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.join import join_find_instances
from repro.experiments.common import build_datasets
from repro.utils.timing import Timer


def run(
    scale: float = 1.0,
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    motifs: Optional[Sequence[str]] = None,
) -> dict:
    tables = []
    for bundle in build_datasets(scale=scale, seed=seed, names=datasets):
        rows = []
        ts_graph = bundle.engine.time_series_graph
        for name, motif in bundle.motifs(motifs).items():
            with Timer() as two_phase_timer:
                result = bundle.engine.find_instances(
                    motif, collect=False, use_cache=False
                )
            with Timer() as join_timer:
                join_result = join_find_instances(ts_graph, motif)
            if len(join_result) != result.count:
                raise AssertionError(
                    f"{bundle.name}/{name}: join found {len(join_result)} "
                    f"instances, two-phase {result.count}"
                )
            speedup = (
                join_timer.elapsed / two_phase_timer.elapsed
                if two_phase_timer.elapsed > 0
                else float("inf")
            )
            rows.append(
                [
                    name,
                    result.count,
                    round(two_phase_timer.elapsed, 4),
                    round(join_timer.elapsed, 4),
                    round(speedup, 2),
                ]
            )
        tables.append(
            {
                "title": f"{bundle.name} (delta={bundle.delta:g}, phi={bundle.phi:g})",
                "headers": [
                    "Motif",
                    "#instances",
                    "two-phase (s)",
                    "join (s)",
                    "join/two-phase",
                ],
                "rows": rows,
            }
        )
    return {
        "name": "fig8",
        "title": "Figure 8 — two-phase algorithm vs join algorithm",
        "params": {"scale": scale, "seed": seed},
        "tables": tables,
    }
