"""Shared experiment infrastructure: dataset bundles and parameter grids."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif, PAPER_MOTIF_PATHS, paper_motifs
from repro.datasets.synthetic import DATASET_GENERATORS
from repro.graph.interaction import InteractionGraph

#: Figure 9's δ grids (x-axes), per dataset — same values as the paper.
DELTA_GRIDS: Dict[str, List[float]] = {
    "Bitcoin": [200, 400, 600, 800, 1000],
    "Facebook": [200, 400, 600, 800, 1000],
    "Passenger": [300, 600, 900, 1200, 1500],
}

#: Figure 10's φ grids, per dataset — same values as the paper.
PHI_GRIDS: Dict[str, List[float]] = {
    "Bitcoin": [5, 10, 15, 20, 25],
    "Facebook": [3, 5, 7, 9, 11],
    "Passenger": [1, 2, 3, 4, 5],
}

#: Figure 11's k grid.
K_GRID: List[int] = [1, 5, 10, 50, 100, 500]

#: Figure 13's time-prefix samples: name → fraction of the covered period.
PREFIX_SAMPLES: Dict[str, List] = {
    "Bitcoin": [("B1", 1 / 9), ("B2", 2 / 9), ("B3", 4 / 9), ("B4", 6 / 9), ("B5", 1.0)],
    "Facebook": [("F1", 1 / 6), ("F2", 2 / 6), ("F3", 3 / 6), ("F4", 4 / 6), ("F5", 1.0)],
    "Passenger": [("T1", 8 / 31), ("T2", 16 / 31), ("T3", 24 / 31), ("T4", 1.0)],
}


@dataclass
class DatasetBundle:
    """One dataset ready for experiments: graph + defaults + engine."""

    name: str
    graph: InteractionGraph
    delta: float
    phi: float
    engine: FlowMotifEngine = field(init=False)

    def __post_init__(self) -> None:
        self.engine = FlowMotifEngine(self.graph)

    def motifs(self, names: Optional[Sequence[str]] = None) -> Dict[str, Motif]:
        """The Figure 3 catalog bound to this dataset's default δ/φ."""
        catalog = paper_motifs(self.delta, self.phi)
        if names is None:
            return catalog
        unknown = [n for n in names if n not in catalog]
        if unknown:
            raise ValueError(
                f"unknown motifs {unknown}; choose from {list(PAPER_MOTIF_PATHS)}"
            )
        return {name: catalog[name] for name in names}


def build_datasets(
    scale: float = 1.0,
    seed: int = 0,
    names: Optional[Sequence[str]] = None,
) -> List[DatasetBundle]:
    """Generate the selected datasets (default: all three, paper order).

    ``seed`` offsets each generator's internal default seed so distinct
    experiment seeds give distinct networks while staying reproducible.
    """
    selected = list(DATASET_GENERATORS) if names is None else list(names)
    bundles = []
    for name in selected:
        if name not in DATASET_GENERATORS:
            raise ValueError(
                f"unknown dataset {name!r}; choose from {list(DATASET_GENERATORS)}"
            )
        generator, delta, phi = DATASET_GENERATORS[name]
        graph = generator(scale=scale, seed=seed + _dataset_seed_offset(name))
        bundles.append(DatasetBundle(name, graph, delta, phi))
    return bundles


def _dataset_seed_offset(name: str) -> int:
    """Stable per-dataset seed offset (so datasets differ under one seed)."""
    return sum(ord(c) for c in name)
