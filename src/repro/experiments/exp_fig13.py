"""Figure 13 — scalability over growing time-prefix samples.

B1..B5 / F1..F5 / T1..T4 are prefixes of the covered time period of each
dataset (§6.2.4). Expected shape: runtime grows with the sample size at a
slower pace than the number of instances.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.engine import FlowMotifEngine
from repro.experiments.common import PREFIX_SAMPLES, build_datasets
from repro.graph.transform import time_prefix
from repro.utils.timing import Timer


def run(
    scale: float = 1.0,
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    motifs: Optional[Sequence[str]] = None,
) -> dict:
    series = []
    for bundle in build_datasets(scale=scale, seed=seed, names=datasets):
        samples = PREFIX_SAMPLES[bundle.name]
        sample_names = [name for name, _ in samples]
        catalog = bundle.motifs(motifs)
        counts = {name: [] for name in catalog}
        times = {name: [] for name in catalog}
        sizes = {"#edges": []}
        for _, fraction in samples:
            subgraph = (
                bundle.graph
                if fraction >= 1.0
                else time_prefix(bundle.graph, fraction)
            )
            sizes["#edges"].append(subgraph.num_edges)
            engine = FlowMotifEngine(subgraph)
            for name, motif in catalog.items():
                with Timer() as timer:
                    result = engine.find_instances(
                        motif, collect=False, use_cache=False
                    )
                counts[name].append(result.count)
                times[name].append(round(timer.elapsed, 4))
        series.append(
            {
                "title": f"{bundle.name}: sample sizes",
                "x_label": "sample",
                "x": sample_names,
                "lines": sizes,
            }
        )
        series.append(
            {
                "title": (
                    f"{bundle.name}: #instances per sample "
                    f"(delta={bundle.delta:g}, phi={bundle.phi:g})"
                ),
                "x_label": "sample",
                "x": sample_names,
                "lines": counts,
            }
        )
        series.append(
            {
                "title": f"{bundle.name}: time (s) per sample",
                "x_label": "sample",
                "x": sample_names,
                "lines": times,
            }
        )
    return {
        "name": "fig13",
        "title": "Figure 13 — scalability to the input graph size",
        "params": {"scale": scale, "seed": seed},
        "series": series,
    }
