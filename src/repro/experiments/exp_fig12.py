"""Figure 12 — phase-2 time of generic top-k (k=1) vs the DP module.

Expected shape (paper §6.2.3): the DP module cuts phase-2 time by roughly
20–40 %, most on the Passenger network. Phase 1 is shared (the structural
matches are computed once and reused), so only phase 2 is timed — as in
the paper's bar charts.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.dp import top_one_instance
from repro.core.topk import top_k_instances
from repro.experiments.common import build_datasets
from repro.utils.timing import Timer


def run(
    scale: float = 1.0,
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    motifs: Optional[Sequence[str]] = None,
    dp_method: str = "auto",
) -> dict:
    tables = []
    for bundle in build_datasets(scale=scale, seed=seed, names=datasets):
        rows = []
        for name, motif in bundle.motifs(motifs).items():
            matches = bundle.engine.structural_matches(motif)
            with Timer() as topk_timer:
                top = top_k_instances(matches, 1, delta=bundle.delta)
            with Timer() as dp_timer:
                dp_best = top_one_instance(
                    matches, delta=bundle.delta, method=dp_method, reconstruct=False
                )
            top_flow = top[0].flow if top else 0.0
            if abs(top_flow - dp_best.flow) > 1e-9:
                raise AssertionError(
                    f"{bundle.name}/{name}: top-k(k=1) flow {top_flow} != "
                    f"DP flow {dp_best.flow}"
                )
            reduction = (
                (topk_timer.elapsed - dp_timer.elapsed) / topk_timer.elapsed
                if topk_timer.elapsed > 0
                else 0.0
            )
            rows.append(
                [
                    name,
                    round(top_flow, 3),
                    round(topk_timer.elapsed, 4),
                    round(dp_timer.elapsed, 4),
                    f"{100 * reduction:.1f}%",
                ]
            )
        tables.append(
            {
                "title": f"{bundle.name} (delta={bundle.delta:g})",
                "headers": [
                    "Motif",
                    "top-1 flow",
                    "top-k k=1 (s)",
                    "DP (s)",
                    "time saved",
                ],
                "rows": rows,
            }
        )
    return {
        "name": "fig12",
        "title": "Figure 12 — efficiency of the dynamic programming module (phase 2)",
        "params": {"scale": scale, "seed": seed, "dp_method": dp_method},
        "tables": tables,
    }
