"""Ablation study — the design choices Section 4/5/7 call out, quantified.

Not a paper figure, but DESIGN.md commits to benchmarking the paper's
design claims directly:

* φ-prefix pruning (line 16 of Algorithm 1) on vs off;
* the window skip rule on vs off (off also emits non-maximal duplicates,
  counted here);
* memoized counting vs full enumeration (Section 7 future work);
* shared-prefix phase-2 evaluation vs per-match (Section 7 future work);
* the paper's O(τ²) DP recurrence vs the O(τ log τ) bisect variant.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.dp import top_one_instance
from repro.core.prefix_sharing import find_instances_shared
from repro.experiments.common import build_datasets
from repro.utils.timing import Timer


def run(
    scale: float = 1.0,
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    motifs: Optional[Sequence[str]] = None,
) -> dict:
    motif_names = list(motifs) if motifs is not None else ["M(3,2)", "M(3,3)"]
    tables = []
    for bundle in build_datasets(scale=scale, seed=seed, names=datasets):
        rows = []
        for name, motif in bundle.motifs(motif_names).items():
            engine = bundle.engine
            matches = engine.structural_matches(motif)

            with Timer() as baseline_t:
                baseline = engine.find_instances(motif, collect=False)
            with Timer() as no_pruning_t:
                engine.find_instances(
                    motif, collect=False, prefix_pruning=False
                )
            with Timer() as no_skip_t:
                no_skip = engine.find_instances(
                    motif, collect=False, skip_rule=False
                )
            with Timer() as counting_t:
                counted = engine.count_instances(motif)
            with Timer() as shared_t:
                find_instances_shared(matches)
            with Timer() as dp_quad_t:
                quad = top_one_instance(
                    matches, delta=bundle.delta, method="quadratic",
                    reconstruct=False,
                )
            with Timer() as dp_bisect_t:
                bis = top_one_instance(
                    matches, delta=bundle.delta, method="bisect",
                    reconstruct=False,
                )
            assert counted.count == baseline.count
            assert abs(quad.flow - bis.flow) < 1e-9
            rows.append(
                [
                    name,
                    baseline.count,
                    round(baseline.p2_seconds, 4),
                    round(no_pruning_t.elapsed, 4),
                    round(no_skip_t.elapsed, 4),
                    no_skip.count - baseline.count,
                    round(counting_t.elapsed, 4),
                    round(shared_t.elapsed, 4),
                    round(dp_quad_t.elapsed, 4),
                    round(dp_bisect_t.elapsed, 4),
                ]
            )
        tables.append(
            {
                "title": (
                    f"{bundle.name} (delta={bundle.delta:g}, "
                    f"phi={bundle.phi:g})"
                ),
                "headers": [
                    "Motif",
                    "#inst",
                    "P2 (s)",
                    "no-pruning (s)",
                    "no-skip (s)",
                    "extra non-max",
                    "count-only (s)",
                    "shared-prefix (s)",
                    "DP quad (s)",
                    "DP bisect (s)",
                ],
                "rows": rows,
            }
        )
    return {
        "name": "ablations",
        "title": "Ablations — pruning, skip rule, counting, sharing, DP method",
        "params": {"scale": scale, "seed": seed},
        "tables": tables,
    }
