"""Table 4 — number of structural matches and phase-1 runtime per motif."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import build_datasets
from repro.utils.timing import Timer


def run(
    scale: float = 1.0,
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    motifs: Optional[Sequence[str]] = None,
) -> dict:
    """Measure phase P1 alone (independent of δ and φ) for every motif."""
    tables = []
    for bundle in build_datasets(scale=scale, seed=seed, names=datasets):
        match_row: list = ["Matches"]
        time_row: list = ["Time (sec)"]
        names = []
        for name, motif in bundle.motifs(motifs).items():
            names.append(name)
            with Timer() as timer:
                matches = bundle.engine.structural_matches(motif, use_cache=False)
            match_row.append(len(matches))
            time_row.append(round(timer.elapsed, 4))
        tables.append(
            {
                "title": bundle.name,
                "headers": ["Motif"] + names,
                "rows": [match_row, time_row],
            }
        )
    return {
        "name": "table4",
        "title": "Table 4 — structural matches and phase-P1 runtime",
        "params": {"scale": scale, "seed": seed},
        "tables": tables,
    }
