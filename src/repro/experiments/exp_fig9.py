"""Figure 9 — number of instances and runtime for varying δ (φ fixed).

Expected shape (paper §6.2.2): both counts and runtime grow with δ, with
runtime growing at a slower pace; simple motifs have more instances and
cost less than complex ones; cyclic motifs keep up with acyclic ones on
Bitcoin/Facebook but lag on Passenger.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import obs
from repro.experiments.common import DELTA_GRIDS, build_datasets
from repro.utils.timing import Timer


def run(
    scale: float = 1.0,
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    motifs: Optional[Sequence[str]] = None,
    deltas: Optional[Sequence[float]] = None,
) -> dict:
    series = []
    with obs.observe(trace=False) as observation:
        for bundle in build_datasets(scale=scale, seed=seed, names=datasets):
            grid = list(deltas) if deltas is not None else DELTA_GRIDS[bundle.name]
            catalog = bundle.motifs(motifs)
            counts = {name: [] for name in catalog}
            times = {name: [] for name in catalog}
            for name, motif in catalog.items():
                bundle.engine.structural_matches(motif)  # warm the P1 cache
                for delta in grid:
                    with Timer() as timer:
                        result = bundle.engine.find_instances(
                            motif, delta=delta, collect=False
                        )
                    counts[name].append(result.count)
                    times[name].append(round(timer.elapsed, 4))
            series.append(
                {
                    "title": f"{bundle.name}: #instances vs delta (phi={bundle.phi:g})",
                    "x_label": "delta",
                    "x": grid,
                    "lines": counts,
                }
            )
            series.append(
                {
                    "title": f"{bundle.name}: time (s) vs delta (phi={bundle.phi:g})",
                    "x_label": "delta",
                    "x": grid,
                    "lines": times,
                }
            )
    return {
        "name": "fig9",
        "title": "Figure 9 — #instances and time for different values of delta",
        "params": {"scale": scale, "seed": seed},
        "series": series,
        "metrics": observation.snapshot(),
    }
