"""Experiment harness regenerating every table and figure of Section 6.

Each ``exp_*`` module exposes ``run(...) -> dict`` returning a JSON-able
result with ``tables`` and/or ``series`` entries, and the shared
:func:`repro.experiments.report.render` turns results into the aligned
text the CLI prints (or markdown for EXPERIMENTS.md).

Module ↔ paper mapping (see DESIGN.md §4):

========  =================================================
module    reproduces
========  =================================================
exp_table3  Table 3 — dataset statistics
exp_table4  Table 4 — structural matches and phase-1 time
exp_fig8    Figure 8 — two-phase vs join algorithm
exp_fig9    Figure 9 — #instances and time vs δ
exp_fig10   Figure 10 — #instances and time vs φ
exp_fig11   Figure 11 — flow of the k-th instance
exp_fig12   Figure 12 — top-k (k=1) vs DP module, phase-2 time
exp_fig13   Figure 13 — scalability over time-prefix samples
exp_fig14   Figure 14 — significance vs randomized networks
exp_ablations  (extra) design-choice ablations per DESIGN.md
========  =================================================
"""

from repro.experiments import (  # noqa: F401
    exp_ablations,
    exp_fig8,
    exp_fig9,
    exp_fig10,
    exp_fig11,
    exp_fig12,
    exp_fig13,
    exp_fig14,
    exp_table3,
    exp_table4,
)
from repro.experiments.common import DatasetBundle, build_datasets
from repro.experiments.report import render, save_result

EXPERIMENTS = {
    "table3": exp_table3.run,
    "table4": exp_table4.run,
    "fig8": exp_fig8.run,
    "fig9": exp_fig9.run,
    "fig10": exp_fig10.run,
    "fig11": exp_fig11.run,
    "fig12": exp_fig12.run,
    "fig13": exp_fig13.run,
    "fig14": exp_fig14.run,
    "ablations": exp_ablations.run,
}

__all__ = [
    "DatasetBundle",
    "build_datasets",
    "render",
    "save_result",
    "EXPERIMENTS",
]
