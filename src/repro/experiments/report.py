"""Rendering and persisting experiment results.

A result is a plain dict:

.. code-block:: python

    {
        "name": "fig9", "title": "...", "params": {...},
        "tables": [{"title": ..., "headers": [...], "rows": [[...], ...]}],
        "series": [{"title": ..., "x_label": ..., "x": [...],
                    "lines": {"M(3,2)": [...], ...}}],
    }

kept JSON-able so results can be archived under ``results/`` and embedded
into EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.utils.tables import format_series, format_table


def render(result: dict, markdown: bool = False) -> str:
    """Render a result dict as aligned text (or markdown) sections."""
    lines = []
    title = result.get("title") or result.get("name", "experiment")
    if markdown:
        lines.append(f"### {title}")
    else:
        lines.append(title)
        lines.append("=" * len(title))
    params = result.get("params")
    if params:
        rendered = ", ".join(f"{k}={v}" for k, v in params.items())
        lines.append(f"[{rendered}]")
    lines.append("")
    for table in result.get("tables", ()):
        if table.get("title"):
            lines.append(f"-- {table['title']} --")
        lines.append(
            format_table(table["headers"], table["rows"], markdown=markdown)
        )
        lines.append("")
    for series in result.get("series", ()):
        if series.get("title"):
            lines.append(f"-- {series['title']} --")
        lines.append(
            format_series(
                series["x_label"],
                series["x"],
                series["lines"],
                markdown=markdown,
            )
        )
        lines.append("")
    metrics = result.get("metrics")
    if metrics:
        from repro.obs import render_text as _render_metrics

        lines.append("-- metrics --")
        if markdown:
            lines.append("```")
        lines.append(_render_metrics(metrics))
        if markdown:
            lines.append("```")
        lines.append("")
    return "\n".join(lines)


def save_result(result: dict, out_dir: str, name: Optional[str] = None) -> str:
    """Write the result as JSON under ``out_dir``; returns the file path."""
    os.makedirs(out_dir, exist_ok=True)
    file_name = f"{name or result.get('name', 'experiment')}.json"
    path = os.path.join(out_dir, file_name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, default=str)
    return path
