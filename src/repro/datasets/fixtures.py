"""The paper's worked examples as reusable fixtures.

These small graphs are quoted throughout Sections 1–5 of the paper and give
exact expected outputs (structural match counts, instance sets, window
positions, DP values), which the test suite asserts verbatim:

* :func:`figure2_graph` — the running-example bitcoin user graph of
  Figure 2 / Figure 5. Expected: six structural matches of ``M(3,3)``
  (Figure 6); with δ=10, φ=7 the maximal instance of Figure 4(a).
* :func:`figure7_match_graph` — the standalone triangle match of Figure 7
  (also used by Table 2). Expected with δ=10: windows ``[10,20]`` and
  ``[15,25]``; the two instances listed in Section 4; DP optimum 5 with the
  Section 5.1 top-1 instance.
* :func:`figure1_graph` — the introduction's toy multigraph with the chain
  motif instances of Figures 1(c)/1(d).
"""

from __future__ import annotations

from repro.graph.interaction import InteractionGraph


def figure2_graph() -> InteractionGraph:
    """The running-example bitcoin user graph (Figures 2 and 5).

    Edge series (time, flow):

    * ``u1 → u2``: (13, 5), (15, 7)
    * ``u2 → u3``: (18, 20)
    * ``u3 → u1``: (10, 10)
    * ``u3 → u4``: (1, 2), (3, 5)
    * ``u4 → u3``: (19, 5), (21, 4)
    * ``u4 → u2``: (23, 7)
    * ``u2 → u4``: (11, 10)

    The figure's rendering does not state which endpoint pair carries the
    ``(11, 10)`` edge; either orientation leaves exactly the two directed
    triangles the paper's Figure 6 shows (``u1 u2 u3`` and ``u2 u3 u4``),
    so we fix ``u2 → u4`` (see DESIGN.md §5).
    """
    return InteractionGraph.from_tuples(
        [
            ("u1", "u2", 13, 5),
            ("u1", "u2", 15, 7),
            ("u2", "u3", 18, 20),
            ("u3", "u1", 10, 10),
            ("u3", "u4", 1, 2),
            ("u3", "u4", 3, 5),
            ("u4", "u3", 19, 5),
            ("u4", "u3", 21, 4),
            ("u4", "u2", 23, 7),
            ("u2", "u4", 11, 10),
        ]
    )


def figure7_match_graph() -> InteractionGraph:
    """The triangle structural match of Figure 7 (and Table 2).

    The motif is ``M(3,3)`` with spanning path ``v0 → v1 → v2 → v0``;
    the matched vertices are ``u3, u1, u2`` with series:

    * ``e1 = R(u3, u1)``: (10, 5), (13, 2), (15, 3), (18, 7)
    * ``e2 = R(u1, u2)``: (9, 4), (11, 3), (16, 3)
    * ``e3 = R(u2, u3)``: (14, 4), (19, 6), (24, 3), (25, 2)

    With δ=10 the processed windows are ``[10, 20]`` and ``[15, 25]``
    (positions ``[13, 23]`` and ``[18, 28]`` are skipped), and the maximum
    instance flow is 5, attained by
    ``[e1 ← {(10,5)}, e2 ← {(11,3), (16,3)}, e3 ← {(19,6)}]``.
    """
    return InteractionGraph.from_tuples(
        [
            ("u3", "u1", 10, 5),
            ("u3", "u1", 13, 2),
            ("u3", "u1", 15, 3),
            ("u3", "u1", 18, 7),
            ("u1", "u2", 9, 4),
            ("u1", "u2", 11, 3),
            ("u1", "u2", 16, 3),
            ("u2", "u3", 14, 4),
            ("u2", "u3", 19, 6),
            ("u2", "u3", 24, 3),
            ("u2", "u3", 25, 2),
        ]
    )


def figure1_graph() -> InteractionGraph:
    """The introduction's toy money-exchange multigraph (Figure 1(a)).

    Reconstructed from the instance walk-through: with the 3-node chain
    motif (labels 1, 2), δ=5 and φ=5, the subgraphs of Figures 1(c)/1(d)
    are instances — ``u4 → u1 → u2`` aggregating (1,6) then (2,5)+(4,3),
    and ``u1 → u2 → u3`` aggregating (2,5) then (3,4)+(5,2). The remaining
    edges are background noise that must *not* create further instances at
    those thresholds.
    """
    return InteractionGraph.from_tuples(
        [
            ("u4", "u1", 1, 6),
            ("u1", "u2", 2, 5),
            ("u1", "u2", 4, 3),
            ("u2", "u3", 3, 4),
            ("u2", "u3", 5, 2),
            ("u2", "u3", 10, 1),
            ("u3", "u4", 2, 4),
        ]
    )
