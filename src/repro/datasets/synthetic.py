"""Deterministic, laptop-scale stand-ins for the paper's three datasets.

The paper evaluates on the Bitcoin user graph, a Facebook interaction
network and the NYC yellow-taxi passenger-flow network — none of which are
redistributable or downloadable offline. Each generator below reproduces
the properties that drive the algorithms' behaviour (DESIGN.md §2):

* topology character — heavy-tailed hubs (Bitcoin), communities (Facebook),
  a small dense zone grid (Passenger);
* parallel-edge multiplicity and event density per δ-window;
* flow distribution — heavy-tailed BTC amounts, small interaction counts,
  1–6 passengers;
* and crucially **flow correlation along short time-ordered paths**:
  a configurable number of *cascades* (flow-conserving transfers along a
  chain or cycle, each hop split into 1–3 transactions within a tight time
  envelope) are planted on top of background noise. Cascades are what makes
  flow motifs statistically significant — permuting flows destroys them,
  which reproduces the Figure 14 result; their shape (cyclic for Bitcoin,
  chains for Facebook, acyclic corridors for Passenger) reproduces the
  per-dataset z-score patterns the paper reports.

All generators take a ``seed`` and are fully deterministic. ``scale``
multiplies node/event counts for the Figure 13 style scalability sweeps.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Sequence, Tuple

from repro.graph.events import Node
from repro.graph.interaction import InteractionGraph
from repro.graph.transform import bucket_interactions


#: Spanning-path vertex patterns cascades can follow, keyed by shape kind.
#: Patterns are instantiated with distinct random nodes; they cover every
#: Figure 3 motif family so all ten catalog motifs find planted instances.
_SHAPE_PATTERNS: Dict[str, List[Tuple[int, ...]]] = {
    "chain": [(0, 1, 2), (0, 1, 2, 3), (0, 1, 2, 3, 4), (0, 1, 2, 3, 4, 5)],
    "cycle": [(0, 1, 2, 0), (0, 1, 2, 3, 0), (0, 1, 2, 3, 4, 0)],
    "cycle_tail": [(0, 1, 2, 0, 3), (0, 1, 2, 3, 0, 4)],  # M(4,4)B / M(5,5)B
    "tail_cycle": [(0, 1, 2, 3, 1), (0, 1, 2, 3, 4, 1)],  # M(4,4)C / M(5,5)C
}


def _random_cascade_path(
    rng: random.Random,
    num_nodes: int,
    shape_weights: Dict[str, float],
) -> List[int]:
    """A concrete cascade route: pick a shape kind, a pattern, and nodes."""
    kinds = list(shape_weights)
    kind = rng.choices(kinds, weights=[shape_weights[k] for k in kinds], k=1)[0]
    pattern = rng.choice(_SHAPE_PATTERNS[kind])
    distinct = max(pattern) + 1
    nodes = rng.sample(range(num_nodes), distinct)
    return [nodes[v] for v in pattern]


def _preferential_targets(rng: random.Random, num_nodes: int, count: int) -> List[int]:
    """Draw ``count`` endpoints with a rich-get-richer bias.

    A simple Zipf-ish sampler: node ``i`` has weight ``1 / (i + 1) ** 0.8``,
    giving the heavy-tailed degree distribution of the Bitcoin user graph.
    """
    weights = [1.0 / (i + 1) ** 0.8 for i in range(num_nodes)]
    return rng.choices(range(num_nodes), weights=weights, k=count)


def _cascade_hop_times(
    rng: random.Random,
    start_time: float,
    hops: int,
    envelope: float,
) -> List[Tuple[float, float]]:
    """Split ``[start_time, start_time + envelope]`` into ``hops`` ordered
    sub-intervals, one per cascade hop (transfers of hop i all precede
    transfers of hop i+1 — the time-respecting requirement)."""
    cuts = sorted(rng.uniform(0.0, envelope) for _ in range(hops - 1))
    bounds = [0.0] + cuts + [envelope]
    return [
        (start_time + bounds[i], start_time + bounds[i + 1])
        for i in range(hops)
    ]


def _plant_cascade(
    out: List[Tuple[Node, Node, float, float]],
    rng: random.Random,
    path: Sequence[Node],
    start_time: float,
    envelope: float,
    amount: float,
    max_splits: int = 3,
    loss: float = 0.05,
) -> List[List[Tuple[float, float]]]:
    """Plant one flow-conserving cascade along ``path``.

    Each hop forwards roughly the incoming amount (minus up to ``loss``
    relative drift), split into 1..``max_splits`` transactions placed
    strictly inside the hop's time sub-interval. Returns per-hop event
    lists for test assertions.
    """
    hops = len(path) - 1
    intervals = _cascade_hop_times(rng, start_time, hops, envelope)
    events_per_hop: List[List[Tuple[float, float]]] = []
    current = amount
    for hop in range(hops):
        lo, hi = intervals[hop]
        width = hi - lo
        splits = rng.randint(1, max_splits)
        # Strictly inside the interval so consecutive hops never tie.
        offsets = sorted(rng.uniform(0.05, 0.95) for _ in range(splits))
        shares = [rng.uniform(0.5, 1.5) for _ in range(splits)]
        share_sum = sum(shares)
        hop_events = []
        for offset, share in zip(offsets, shares):
            t = lo + offset * width
            f = current * share / share_sum
            out.append((path[hop], path[hop + 1], t, f))
            hop_events.append((t, f))
        events_per_hop.append(hop_events)
        current *= 1.0 - rng.uniform(0.0, loss)
    return events_per_hop


def bitcoin_like(
    scale: float = 1.0,
    seed: int = 7,
    horizon: float = 60_000.0,
    cascade_envelope: float = 400.0,
) -> InteractionGraph:
    """A scaled Bitcoin-user-graph stand-in.

    Properties mirrored from the paper's description: heavy-tailed
    transaction amounts averaging a few BTC per edge, rare parallel edges,
    and a *role-structured* sparse topology — most users only ever send
    (consumers) or only receive (merchants/cold wallets), and a small
    fraction (exchanges, mules) relay funds. The role structure is what
    keeps walk counts low in the real network (Table 4 reports *fewer*
    structural matches for longer motifs): a random walk dies whenever it
    hits a non-relaying node. Money-cycling cascades (~55 % of the planted
    cascades close a cycle) reproduce the paper's finding that cyclic flow
    is significant on Bitcoin. The default experiment constraints are
    δ = 600, φ = 5.

    Parameters
    ----------
    scale:
        Multiplies node and event counts (scalability sweeps pass > 1).
    seed:
        RNG seed; equal seeds give identical graphs.
    horizon:
        Length of the simulated timeline ("nine months", scaled).
    cascade_envelope:
        Time envelope of one cascade; below the default δ = 600 so planted
        cascades fit one window.
    """
    rng = random.Random(seed)
    num_nodes = max(24, int(420 * scale))
    num_background = int(1000 * scale)
    num_cascades = int(120 * scale)
    tuples: List[Tuple[Node, Node, float, float]] = []

    # Roles: ~8 % intermediaries relay funds; the rest mostly send or
    # mostly receive. Intermediaries get a zipf-ish activity skew (hubs).
    num_intermediaries = max(4, num_nodes * 8 // 100)
    intermediaries = list(range(num_intermediaries))
    boundary = num_intermediaries + (num_nodes - num_intermediaries) // 2
    senders = list(range(num_intermediaries, boundary))
    receivers = list(range(boundary, num_nodes))

    for _ in range(num_background):
        if rng.random() < 0.22:
            src = intermediaries[
                _preferential_targets(rng, num_intermediaries, 1)[0]
            ]
        else:
            src = rng.choice(senders)
        if rng.random() < 0.20:
            dst = intermediaries[
                _preferential_targets(rng, num_intermediaries, 1)[0]
            ]
        else:
            dst = rng.choice(receivers)
        if src == dst:
            dst = rng.choice(receivers)
        t = rng.uniform(0.0, horizon)
        flow = rng.paretovariate(1.5) * 0.9  # heavy tail, mean ≈ 2.7 BTC
        tuples.append((src, dst, t, flow))

    # Money-cycling dominates the planted shapes (the paper's Bitcoin
    # finding); tails model cash-out after a cycle.
    shape_weights = {"chain": 0.18, "cycle": 0.46, "cycle_tail": 0.18, "tail_cycle": 0.18}
    for _ in range(num_cascades):
        path = _random_cascade_path(rng, num_nodes, shape_weights)
        # Envelopes span the Figure 9 delta grid: larger windows keep
        # discovering slower cascades, as in the paper's rising curves.
        envelope = rng.uniform(0.3, 2.3) * cascade_envelope
        start = rng.uniform(0.0, horizon - envelope)
        amount = rng.uniform(8.0, 30.0)
        _plant_cascade(tuples, rng, path, start, envelope, amount)

    return InteractionGraph.from_tuples(tuples)


def facebook_like(
    scale: float = 1.0,
    seed: int = 11,
    horizon: float = 60_000.0,
    bucket_seconds: float = 30.0,
    cascade_envelope: float = 420.0,
) -> InteractionGraph:
    """A scaled Facebook-interaction-network stand-in.

    Community-structured topology; interactions are likes/messages counted
    per 30-second bucket (the paper's preprocessing — applied here too, so
    flows are small integers averaging ≈ 3 and tied timestamps across
    pairs occur, as in the real pipeline). Information-propagation chains
    are the dominant planted cascades, reproducing the paper's finding
    that chain motifs carry the highest z-scores on Facebook. Default
    experiment constraints: δ = 600, φ = 3.
    """
    rng = random.Random(seed)
    num_nodes = max(24, int(260 * scale))
    num_communities = max(3, int(26 * scale))
    num_background = int(620 * scale)
    num_cascades = int(100 * scale)
    community_of = [rng.randrange(num_communities) for _ in range(num_nodes)]
    members: Dict[int, List[int]] = {}
    for node, community in enumerate(community_of):
        members.setdefault(community, []).append(node)

    raw: List[Tuple[Node, Node, float, float]] = []
    for _ in range(num_background):
        src = rng.randrange(num_nodes)
        pool = members[community_of[src]]
        if rng.random() < 0.8 and len(pool) > 1:
            dst = rng.choice(pool)
            while dst == src:
                dst = rng.choice(pool)
        else:
            dst = rng.randrange(num_nodes)
            while dst == src:
                dst = rng.randrange(num_nodes)
        t = rng.uniform(0.0, horizon)
        # A "session" of 2..5 likes/messages within a couple of minutes.
        for _ in range(rng.randint(2, 5)):
            raw.append((src, dst, t + rng.uniform(0.0, 120.0), 1.0))

    # Propagation chains dominate (the paper's Facebook finding); cascades
    # stay inside a community when it is large enough.
    shape_weights = {"chain": 0.58, "cycle": 0.14, "cycle_tail": 0.14, "tail_cycle": 0.14}
    for _ in range(num_cascades):
        pattern_path = _random_cascade_path(rng, num_nodes, shape_weights)
        distinct = sorted(set(pattern_path))
        community = rng.randrange(num_communities)
        pool = members[community]
        if len(pool) >= len(distinct):
            chosen = rng.sample(pool, len(distinct))
            remap = dict(zip(distinct, chosen))
            path = [remap[v] for v in pattern_path]
        else:
            path = pattern_path
        envelope = rng.uniform(0.3, 2.3) * cascade_envelope
        start = rng.uniform(0.0, horizon - envelope)
        # Bursts of messages: amount is a message count per hop.
        amount = float(rng.randint(8, 25))
        _plant_cascade(raw, rng, path, start, envelope, amount)

    graph = InteractionGraph.from_tuples(
        (src, dst, t, max(1.0, round(f))) for src, dst, t, f in raw
    )
    return bucket_interactions(graph, bucket_seconds)


def passenger_like(
    scale: float = 1.0,
    seed: int = 13,
    horizon: float = 40_000.0,
    cascade_envelope: float = 700.0,
) -> InteractionGraph:
    """A scaled NYC-taxi passenger-flow stand-in.

    A small, dense zone graph (the real one has 289 zones and ~94 % of
    ordered pairs connected). Flows are passenger counts in 1..6 averaging
    ≈ 1.9. Movement has a directional drift along commuter *corridors*
    (chains of zones with heavy passenger flow inside rush windows), so
    acyclic motifs dominate — the paper's Passenger-network finding.
    Default experiment constraints: δ = 900, φ = 2.
    """
    rng = random.Random(seed)
    grid_w = max(4, int(9 * math.sqrt(scale)))
    grid_h = max(4, int(7 * math.sqrt(scale)))
    num_zones = grid_w * grid_h
    num_trips = int(5600 * scale)
    num_corridors = int(95 * scale)

    def zone(x: int, y: int) -> int:
        return y * grid_w + x

    raw: List[Tuple[Node, Node, float, float]] = []
    for _ in range(num_trips):
        x, y = rng.randrange(grid_w), rng.randrange(grid_h)
        # Drift towards the "downtown" corner keeps the graph largely
        # acyclic in its heavy-flow structure.
        dx = rng.choice((1, 1, 1, 0, -1))
        dy = rng.choice((1, 1, 0, 0, -1))
        nx = min(grid_w - 1, max(0, x + dx))
        ny = min(grid_h - 1, max(0, y + dy))
        if (nx, ny) == (x, y):
            nx = (x + 1) % grid_w
        t = float(rng.randrange(int(horizon)))
        # Ordinary trips are overwhelmingly single riders; the heavy
        # passenger pulses travel along the planted corridors below, which
        # is what makes the flow constraint statistically meaningful
        # (Figure 14): permuting flows scatters the pulses.
        passengers = float(rng.choices((1, 2, 3, 4, 5, 6),
                                       weights=(93, 4, 1.5, 0.8, 0.5, 0.2))[0])
        raw.append((zone(x, y), zone(nx, ny), t, passengers))

    # Mostly drift-following corridors (acyclic — the paper's Passenger
    # finding); a minority of loop services provide cyclic instances.
    shape_weights = {"cycle": 0.55, "cycle_tail": 0.22, "tail_cycle": 0.23}
    for _ in range(num_corridors):
        if rng.random() < 0.70:
            length = rng.randint(3, 5)
            x, y = rng.randrange(grid_w), rng.randrange(grid_h)
            path = [zone(x, y)]
            for _ in range(length - 1):
                x = min(grid_w - 1, x + rng.choice((0, 1, 1)))
                y = min(grid_h - 1, y + rng.choice((0, 1)))
                candidate = zone(x, y)
                if candidate == path[-1]:
                    x = min(grid_w - 1, x + 1)
                    y = min(grid_h - 1, y + 1)
                    candidate = zone(x, y)
                    if candidate == path[-1]:
                        break
                path.append(candidate)
            if len(path) < 3:
                continue
        else:
            path = _random_cascade_path(rng, num_zones, shape_weights)
        envelope = rng.uniform(0.3, 2.3) * cascade_envelope
        start = rng.uniform(0.0, horizon - envelope)
        # A rush-hour pulse: one loaded vehicle per hop. The instance then
        # hinges on the actual passenger loads — flow permutation hands the
        # corridor 1-passenger trips and the aligned chain dies, which is
        # exactly the Figure 14 signal.
        amount = float(rng.randint(4, 7))
        planted: List[Tuple[Node, Node, float, float]] = []
        _plant_cascade(planted, rng, path, start, envelope, amount, max_splits=1)
        # Passenger counts are integers: round each planted event.
        for src, dst, t, f in planted:
            raw.append((src, dst, t, max(1.0, round(f))))

    return InteractionGraph.from_tuples(raw)


def planted_cascade_graph(
    path: Sequence[Node],
    seed: int = 3,
    noise_edges: int = 50,
    num_nodes: int = 12,
    envelope: float = 100.0,
    amount: float = 50.0,
    start_time: float = 500.0,
    horizon: float = 1000.0,
) -> Tuple[InteractionGraph, List[List[Tuple[float, float]]]]:
    """A small graph with exactly one planted cascade, for tests.

    Returns the graph and the per-hop planted events. A search for the
    matching motif with δ >= ``envelope`` and φ at most the cascade amount
    must discover an instance covering the planted events.
    """
    rng = random.Random(seed)
    tuples: List[Tuple[Node, Node, float, float]] = []
    for _ in range(noise_edges):
        src = rng.randrange(num_nodes)
        dst = rng.randrange(num_nodes)
        while dst == src:
            dst = rng.randrange(num_nodes)
        tuples.append((src, dst, rng.uniform(0.0, horizon), rng.uniform(0.1, 1.0)))
    events = _plant_cascade(tuples, rng, path, start_time, envelope, amount, loss=0.0)
    return InteractionGraph.from_tuples(tuples), events


#: Name → (generator, default δ, default φ) — the registry the experiment
#: harness iterates, mirroring the paper's per-dataset defaults (§6.2).
DATASET_GENERATORS: Dict[str, Tuple[Callable[..., InteractionGraph], float, float]] = {
    "Bitcoin": (bitcoin_like, 600.0, 5.0),
    "Facebook": (facebook_like, 600.0, 3.0),
    "Passenger": (passenger_like, 900.0, 2.0),
}
