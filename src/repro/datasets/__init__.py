"""Datasets: the paper's worked examples and scaled synthetic networks.

The paper evaluates on three real networks (Bitcoin, Facebook, NYC taxi
passenger flows) that are not redistributable; :mod:`repro.datasets.synthetic`
generates deterministic laptop-scale equivalents preserving the properties
the algorithms are sensitive to (see DESIGN.md §2). The worked examples of
the paper's figures live in :mod:`repro.datasets.fixtures` and double as
ground truth for the test suite.
"""

from repro.datasets.fixtures import (
    figure1_graph,
    figure2_graph,
    figure7_match_graph,
)
from repro.datasets.synthetic import (
    bitcoin_like,
    facebook_like,
    passenger_like,
    planted_cascade_graph,
    DATASET_GENERATORS,
)

__all__ = [
    "figure1_graph",
    "figure2_graph",
    "figure7_match_graph",
    "bitcoin_like",
    "facebook_like",
    "passenger_like",
    "planted_cascade_graph",
    "DATASET_GENERATORS",
]
