"""repro — a full reproduction of "Flow Motifs in Interaction Networks"
(Kosyfaki, Mamoulis, Pitoura, Tsaparas; EDBT 2019).

Quick start
-----------
>>> from repro import InteractionGraph, Motif, FlowMotifEngine
>>> g = InteractionGraph.from_tuples([
...     ("u3", "u1", 10, 10), ("u1", "u2", 13, 5),
...     ("u1", "u2", 15, 7),  ("u2", "u3", 18, 20),
... ])
>>> engine = FlowMotifEngine(g)
>>> triangle = Motif.cycle(3, delta=10, phi=7)
>>> result = engine.find_instances(triangle)
>>> result.count
1
>>> result.instances[0].flow
10.0

Public API
----------
* :class:`InteractionGraph`, :class:`TimeSeriesGraph`, :class:`EdgeSeries`,
  :class:`Interaction` — the network substrate (:mod:`repro.graph`).
* :class:`Motif`, :func:`paper_motifs` — motif model and the Figure 3
  catalog (:mod:`repro.core.motif`).
* :class:`FlowMotifEngine` — two-phase search, top-k, DP top-1
  (:mod:`repro.core.engine`).
* :class:`MotifInstance`, :func:`is_valid_instance`, :func:`is_maximal` —
  instances and ground-truth checkers (:mod:`repro.core.instance`).
* :mod:`repro.datasets` — scaled synthetic Bitcoin / Facebook / Passenger
  generators and the paper's worked examples.
* :mod:`repro.significance` — flow-permutation randomization and z-scores.
* :mod:`repro.baselines` — the join-algorithm baseline and a flow-agnostic
  temporal-motif counter.
* :class:`StreamingDetector` — exactly-once online detection with fully
  incremental per-edge maintenance (:mod:`repro.core.streaming`,
  :mod:`repro.core.incremental`); grows a
  :class:`GrowableTimeSeriesGraph` in place, never rebuilds.
* :class:`GeneralMotif` — DAG motifs with forks/joins (:mod:`repro.core.dag`).
* :mod:`repro.analysis` — per-match activity grouping and timelines.
* :class:`ParallelFlowMotifEngine`, :class:`BatchRunner` — δ-overlap
  time-sharded multi-worker search and multi-motif batch grids
  (:mod:`repro.parallel`); also via ``FlowMotifEngine.parallel(jobs=N)``.
* :class:`ColumnStore`, :func:`columnarize` — columnar zero-copy storage
  with one-block shared-memory export/attach (:mod:`repro.graph.columnar`);
  the process backend's fan-out transport.
"""

from repro.core.dag import GeneralMotif, find_dag_instances
from repro.core.engine import FlowMotifEngine, SearchResult
from repro.core.incremental import IncrementalMatcher
from repro.core.streaming import StreamingDetector
from repro.core.instance import MotifInstance, Run, is_maximal, is_valid_instance
from repro.core.matching import StructuralMatch, find_structural_matches
from repro.core.motif import Motif, PAPER_MOTIF_PATHS, paper_motifs
from repro.graph.columnar import (
    ColumnarEdgeSeries,
    ColumnStore,
    GrowableColumnStore,
    columnarize,
)
from repro.graph.events import Interaction
from repro.graph.interaction import InteractionGraph
from repro.graph.timeseries import (
    EdgeSeries,
    GrowableTimeSeriesGraph,
    TimeSeriesGraph,
)
from repro.parallel import (
    BatchRunner,
    MotifConfig,
    ParallelFlowMotifEngine,
    TimeShard,
    partition_time_range,
)

__version__ = "1.0.0"

__all__ = [
    "BatchRunner",
    "MotifConfig",
    "ParallelFlowMotifEngine",
    "TimeShard",
    "partition_time_range",
    "FlowMotifEngine",
    "GeneralMotif",
    "find_dag_instances",
    "StreamingDetector",
    "IncrementalMatcher",
    "SearchResult",
    "MotifInstance",
    "Run",
    "is_maximal",
    "is_valid_instance",
    "StructuralMatch",
    "find_structural_matches",
    "Motif",
    "PAPER_MOTIF_PATHS",
    "paper_motifs",
    "Interaction",
    "InteractionGraph",
    "EdgeSeries",
    "TimeSeriesGraph",
    "GrowableTimeSeriesGraph",
    "ColumnStore",
    "ColumnarEdgeSeries",
    "GrowableColumnStore",
    "columnarize",
    "__version__",
]
