#!/usr/bin/env python3
"""Influence propagation chains in a Facebook-like interaction network.

The paper notes that in social networks flow motifs capture influence:
bursts of interactions propagating user-to-user within a short window.
This example contrasts the two motif semantics on the same data:

* **flow motifs** (this paper) — interaction *volume* must clear φ per
  hop, with multiple 30-second buckets aggregating into one motif edge;
* **temporal motifs** (Paranjape et al. [14], the flow-agnostic baseline)
  — one interaction per motif edge, no volume requirement.

It then ranks the strongest propagation chains and computes z-scores,
reproducing the paper's finding that chain motifs are the significant
shape on Facebook.

Run:  python examples/influence_chains.py
"""

from repro import FlowMotifEngine, Motif
from repro.baselines.temporal import count_temporal_motif_instances
from repro.datasets import facebook_like
from repro.significance import motif_significance


def main() -> None:
    print("generating Facebook-like interaction network ...")
    graph = facebook_like(scale=0.7, seed=21)
    print(f"  {graph}")
    engine = FlowMotifEngine(graph)
    ts = engine.time_series_graph

    # --- flow motifs vs flow-agnostic temporal motifs -----------------
    print("\n[1] flow vs temporal motif counts (delta=600s):")
    print(f"    {'motif':8s} {'flow (phi=3)':>14s} {'temporal [14]':>14s}")
    for name, path in [("M(3,2)", (0, 1, 2)), ("M(3,3)", (0, 1, 2, 0))]:
        motif = Motif(path, delta=600, phi=3)
        flow_count = engine.count_instances(motif).count
        matches = engine.structural_matches(motif)
        temporal_count = count_temporal_motif_instances(
            ts, motif, matches=matches
        )
        print(f"    {name:8s} {flow_count:14d} {temporal_count:14d}")
    print(
        "  -> temporal motifs count every single-interaction pattern;"
        "\n     the flow threshold isolates the *heavy* conversations."
    )

    # --- strongest propagation chains ---------------------------------
    chain = Motif.chain(4, delta=600, phi=0)
    print("\n[2] strongest 4-user propagation chains:")
    for instance in engine.top_k(chain, k=5):
        walk = " -> ".join(f"user{v}" for v in instance.vertex_map)
        print(
            f"    {walk}: {instance.flow:.0f} interactions/hop minimum, "
            f"{instance.num_interactions} bucketed bursts"
        )

    # --- significance: chains are the Facebook shape -------------------
    print("\n[3] z-scores, chains vs cycles (10 permutations):")
    records = motif_significance(
        graph,
        {
            "chain M(3,2)": Motif.chain(3, delta=600, phi=3),
            "chain M(4,3)": Motif.chain(4, delta=600, phi=3),
            "cycle M(3,3)": Motif.cycle(3, delta=600, phi=3),
        },
        num_random=10,
        seed=5,
    )
    for record in records:
        s = record.summary
        z_text = "inf" if s.z == float("inf") else f"{s.z:.1f}"
        print(
            f"    {record.motif_name}: real={record.real_count} "
            f"random={s.mean:.1f}+-{s.std:.1f} z={z_text}"
        )
    print(
        "\n  -> chains carry strong z-scores: bursts of attention travel"
        "\n     along propagation trees, the paper's Facebook conjecture."
    )


if __name__ == "__main__":
    main()
