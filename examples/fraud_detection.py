#!/usr/bin/env python3
"""Detecting suspicious money flows in a Bitcoin-like network.

The paper motivates flow motifs with the patterns Financial Intelligence
Units look for: cyclic transactions, smurfing (many small transfers that
aggregate to a large amount), and rapid pass-through chains. This example
runs those three analyses on the synthetic Bitcoin-like network:

1. **Cyclic flow** — top-k instances of M(3,3) (money returning to its
   origin within minutes).
2. **Smurfing** — instances of the 3-chain whose middle hop splits a large
   amount into several small transactions (multi-edge aggregation is the
   flow-motif feature that catches this).
3. **Statistical significance** — cyclic motifs are compared against
   flow-permuted networks; a high z-score means cyclic high-flow movement
   is structural, not random.

Run:  python examples/fraud_detection.py
"""

from repro import FlowMotifEngine, Motif
from repro.datasets import bitcoin_like
from repro.significance import motif_significance


def describe(instance) -> str:
    walk = " -> ".join(str(v) for v in instance.vertex_map)
    return (
        f"users [{walk}]  flow={instance.flow:.2f} BTC  "
        f"span={instance.span:.0f}s  transactions={instance.num_interactions}"
    )


def main() -> None:
    print("generating Bitcoin-like interaction network ...")
    graph = bitcoin_like(scale=0.6, seed=42)
    print(f"  {graph}")
    engine = FlowMotifEngine(graph)

    # --- 1. cyclic transactions -------------------------------------
    cycle = Motif.cycle(3, delta=600, phi=0, )
    print("\n[1] top-5 cyclic flows (M(3,3), delta=600s):")
    for instance in engine.top_k(cycle, k=5):
        print(f"    {describe(instance)}")

    # --- 2. smurfing: aggregated small transfers ---------------------
    chain = Motif.chain(3, delta=600, phi=10)
    result = engine.find_instances(chain)
    smurfing = [
        inst
        for inst in result.instances
        # A hop that needed 3+ transactions to move >= phi units is the
        # "numerous small-volume transfers" pattern FIUs flag.
        if any(run.size >= 3 and run.flow >= 10 for run in inst.runs)
    ]
    print(
        f"\n[2] chains moving >=10 BTC within 10 min: {result.count}; "
        f"of these, {len(smurfing)} show smurfing (a hop split into >=3 tx):"
    )
    for instance in smurfing[:5]:
        print(f"    {describe(instance)}")
        for label, run in enumerate(instance.runs, start=1):
            if run.size >= 3:
                parts = ", ".join(f"{f:.2f}" for _, f in run.items())
                print(f"      hop e{label} split: [{parts}]")

    # --- 3. are cycles statistically significant? --------------------
    print("\n[3] significance of cyclic motifs (10 flow permutations):")
    records = motif_significance(
        graph,
        {
            "M(3,3)": Motif.cycle(3, delta=600, phi=5),
            "M(4,4)A": Motif((0, 1, 2, 3, 0), delta=600, phi=5),
        },
        num_random=10,
        seed=7,
    )
    for record in records:
        s = record.summary
        print(
            f"    {record.motif_name}: real={record.real_count}  "
            f"random mean={s.mean:.1f}+-{s.std:.1f}  z={s.z:.1f}  "
            f"p={s.p_value:.2f}"
        )
    print(
        "\n  -> high z-scores: cyclic high-flow movement in this network is"
        "\n     far more frequent than flow-shuffled chance, the paper's"
        "\n     Figure 14 signal for money-laundering-style behaviour."
    )


if __name__ == "__main__":
    main()
