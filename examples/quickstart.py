#!/usr/bin/env python3
"""Quickstart: find flow motifs in a small interaction network.

Reproduces the paper's running example (Figure 2): a four-user bitcoin
graph in which the triangle motif M(3,3) with δ=10 and φ=7 has exactly one
maximal instance (Figure 4a). Also shows the top-k and DP top-1 variants.

Run:  python examples/quickstart.py
"""

from repro import FlowMotifEngine, InteractionGraph, Motif


def build_graph() -> InteractionGraph:
    """The paper's Figure 2 graph: users exchanging bitcoin."""
    graph = InteractionGraph()
    for src, dst, time, flow in [
        ("u1", "u2", 13, 5), ("u1", "u2", 15, 7),
        ("u2", "u3", 18, 20), ("u3", "u1", 10, 10),
        ("u3", "u4", 1, 2), ("u3", "u4", 3, 5),
        ("u4", "u3", 19, 5), ("u4", "u3", 21, 4),
        ("u4", "u2", 23, 7), ("u2", "u4", 11, 10),
    ]:
        graph.add_interaction(src, dst, time, flow)
    return graph


def main() -> None:
    graph = build_graph()
    print(f"graph: {graph}")

    engine = FlowMotifEngine(graph)

    # A flow motif = shape + duration constraint δ + flow constraint φ.
    triangle = Motif.cycle(3, delta=10, phi=7)
    print(f"\nsearching for {triangle!r}")

    result = engine.find_instances(triangle)
    print(
        f"phase P1 found {result.num_matches} structural matches; "
        f"phase P2 found {result.count} maximal instance(s)"
    )
    for instance in result.instances:
        print(f"\n  instance with flow {instance.flow:g} "
              f"(span {instance.span:g} time units):")
        for label, run in enumerate(instance.runs, start=1):
            events = ", ".join(f"(t={t:g}, f={f:g})" for t, f in run.items())
            print(
                f"    e{label}: {run.series.src} -> {run.series.dst}: "
                f"{events}  [aggregated flow {run.flow:g}]"
            )

    # Relaxing φ and ranking by flow instead (Section 5 of the paper):
    top = engine.top_k(triangle.with_constraints(phi=0), k=3)
    print("\ntop-3 instances by flow (phi dropped):")
    for i, instance in enumerate(top, start=1):
        walk = "->".join(str(v) for v in instance.vertex_map)
        print(f"  #{i}: flow {instance.flow:g} on {walk}")

    # The dynamic-programming module finds the single best instance faster:
    best = engine.top_one_dp(triangle.with_constraints(phi=0))
    print(f"\nDP top-1 flow: {best.flow:g} "
          f"(window [{best.window.start:g}, {best.window.end:g}])")


if __name__ == "__main__":
    main()
