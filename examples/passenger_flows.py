#!/usr/bin/env python3
"""Analyzing passenger movement between city zones.

The paper's Passenger network links NYC taxi zones by trips carrying
passenger counts. Flow motifs answer questions like "along which zone
chains do large passenger volumes move within a rush window?" — the
M(4,3) chain with a passenger threshold. This example:

1. finds the heaviest commuter corridors (chains of 4 zones);
2. uses the DP module's per-window variant to chart *when* the busiest
   corridor is active (the paper's Section 5.1 extensibility note);
3. confirms the paper's observation that in passenger networks acyclic
   motifs dominate cyclic ones.

Run:  python examples/passenger_flows.py
"""

from collections import defaultdict

from repro import FlowMotifEngine, Motif
from repro.core.dp import top_one_per_window
from repro.datasets import passenger_like


def main() -> None:
    print("generating Passenger-flow network (zones = city grid cells) ...")
    graph = passenger_like(scale=0.7, seed=3)
    print(f"  {graph}")
    engine = FlowMotifEngine(graph)

    # --- 1. heaviest corridors ---------------------------------------
    corridor = Motif.chain(4, delta=900, phi=0)
    print("\n[1] top-5 passenger corridors (chains of 4 zones, 15 min):")
    top = engine.top_k(corridor, k=5)
    for instance in top:
        walk = " -> ".join(f"zone{v}" for v in instance.vertex_map)
        print(
            f"    {walk}: {instance.flow:.0f} passengers "
            f"in {instance.span:.0f}s"
        )

    # --- 2. when is the busiest corridor active? ----------------------
    if top:
        best = top[0]
        match = next(
            m
            for m in engine.structural_matches(corridor)
            if m.vertex_map == best.vertex_map
        )
        print("\n[2] activity timeline of the busiest corridor:")
        for record in top_one_per_window(match):
            bar = "#" * max(1, int(record.flow / 2))
            print(
                f"    window [{record.window.start:7.0f}, "
                f"{record.window.end:7.0f}]: flow {record.flow:5.1f} {bar}"
            )

    # --- 3. chains vs cycles ------------------------------------------
    print("\n[3] acyclic vs cyclic motif instances (phi=2):")
    counts = defaultdict(int)
    for name, motif in {
        "chain M(3,2)": Motif.chain(3, delta=900, phi=2),
        "chain M(4,3)": Motif.chain(4, delta=900, phi=2),
        "cycle M(3,3)": Motif.cycle(3, delta=900, phi=2),
        "cycle M(4,4)": Motif.cycle(4, delta=900, phi=2),
    }.items():
        counts[name] = engine.count_instances(motif).count
        print(f"    {name}: {counts[name]} instances")
    chains = counts["chain M(3,2)"] + counts["chain M(4,3)"]
    cycles = counts["cycle M(3,3)"] + counts["cycle M(4,4)"]
    print(
        f"\n  -> chains outnumber cycles {chains}:{cycles} — passengers"
        "\n     rarely travel in circles, the paper's Passenger finding."
    )


if __name__ == "__main__":
    main()
