#!/usr/bin/env python3
"""Custom motifs: beyond the Figure 3 catalog.

Three extension points of the library:

1. **Custom path motifs** — any spanning path defines a motif
   (e.g. a "ping-pong" u -> v -> u -> v).
2. **DAG motifs with forks and joins** — the paper's future-work
   generalization (Section 7), e.g. a split payment: one payer funds two
   mules who both forward to the same collector.
3. **Edge-list I/O** — load your own data from CSV, search, export
   instances as JSON.

Run:  python examples/custom_motifs.py
"""

import io
import json

from repro import FlowMotifEngine, InteractionGraph, Motif
from repro.core.dag import GeneralMotif, find_dag_instances
from repro.graph.io import read_csv, write_csv


def main() -> None:
    # --- 1. a custom path motif: ping-pong ----------------------------
    graph = InteractionGraph.from_tuples(
        [
            ("alice", "bob", 1, 10.0),
            ("bob", "alice", 2, 9.5),
            ("alice", "bob", 3, 9.0),
            ("carol", "bob", 2, 1.0),
        ]
    )
    ping_pong = Motif(["u", "v", "u", "v"], delta=10, phi=5)
    engine = FlowMotifEngine(graph)
    result = engine.find_instances(ping_pong)
    print("[1] ping-pong motif u->v->u->v (phi=5):")
    for inst in result.instances:
        print(
            f"    {inst.vertex_map[0]} <-> {inst.vertex_map[1]}: "
            f"flow {inst.flow:g}"
        )

    # --- 2. a fork-join DAG motif --------------------------------------
    payments = InteractionGraph.from_tuples(
        [
            ("payer", "mule1", 10, 500.0),
            ("payer", "mule2", 20, 480.0),
            ("mule1", "collector", 30, 495.0),
            ("mule2", "collector", 40, 470.0),
            ("noise", "mule1", 5, 3.0),
        ]
    )
    split_payment = GeneralMotif(
        [
            ("payer", "mule1"), ("payer", "mule2"),
            ("mule1", "collector"), ("mule2", "collector"),
        ],
        delta=60,
        phi=400,
    )
    print("\n[2] split-payment fork/join motif (DAG extension):")
    for inst in find_dag_instances(payments.to_time_series(), split_payment):
        names = dict(zip(("payer", "m1", "m2", "collector"), inst.vertex_map))
        print(
            f"    {names['payer']} splits through {names['m1']}/{names['m2']}"
            f" into {names['collector']}: min hop flow {inst.flow:g}"
        )

    # --- 3. CSV round trip ---------------------------------------------
    print("\n[3] edge-list I/O:")
    buffer = io.StringIO()
    write_csv(payments, buffer)
    print("    CSV preview:")
    for line in buffer.getvalue().splitlines()[:3]:
        print(f"      {line}")
    buffer.seek(0)
    reloaded = read_csv(buffer)
    engine = FlowMotifEngine(reloaded)
    chain = Motif.chain(3, delta=60, phi=400)
    result = engine.find_instances(chain)
    print(f"    reloaded graph: {reloaded}")
    print(f"    3-chains moving >=400 units: {result.count}")
    print("    first instance as JSON:")
    print(
        "      "
        + json.dumps(result.instances[0].as_dict())[:100]
        + " ..."
    )


if __name__ == "__main__":
    main()
