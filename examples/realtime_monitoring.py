#!/usr/bin/env python3
"""Real-time transaction monitoring with the streaming detector.

The paper motivates flow motifs with Financial Intelligence Units watching
live transaction streams. This example replays a Bitcoin-like network as a
time-ordered stream into :class:`repro.StreamingDetector` and raises an
"alert" the moment a cyclic money flow (M(3,3), ≥15 BTC, within 10 min)
completes — long before the day's data would reach a batch job.

The final consistency check asserts the streaming alerts equal the offline
search on the full history (the detector's exactly-once guarantee).

Run:  python examples/realtime_monitoring.py
"""

from repro import FlowMotifEngine, InteractionGraph, Motif, StreamingDetector
from repro.datasets import bitcoin_like


def main() -> None:
    print("replaying Bitcoin-like network as a live stream ...")
    graph = bitcoin_like(scale=0.5, seed=12)
    stream = sorted(graph.interactions(), key=lambda it: it.time)
    print(f"  {len(stream)} transactions over "
          f"{graph.time_span[1] - graph.time_span[0]:.0f}s of logical time")

    motif = Motif.cycle(3, delta=600, phi=15)
    detector = StreamingDetector(motif)

    alerts = []
    poll_interval = 500  # transactions between polls
    for index, interaction in enumerate(stream):
        detector.add(
            interaction.src, interaction.dst, interaction.time, interaction.flow
        )
        if index % poll_interval == 0 and index > 0:
            for instance in detector.poll():
                alerts.append(instance)
                cycle = " -> ".join(str(v) for v in instance.vertex_map)
                print(
                    f"  [ALERT t={detector.watermark:8.0f}] cyclic flow "
                    f"{instance.flow:6.2f} BTC through {cycle} "
                    f"(completed at t={instance.end_time:.0f})"
                )
    alerts.extend(detector.flush())

    snapshot = detector.metrics().snapshot()
    counters, gauges = snapshot["counters"], snapshot["gauges"]
    print(f"\ntotal alerts: {len(alerts)}")
    print(
        f"detector stats: {counters['stream.events']} events over "
        f"{gauges['stream.pairs']:g} pairs, {gauges['stream.matches']:g} "
        f"structural matches maintained incrementally, "
        f"{counters['stream.rebuilds']} rebuilds"
    )
    assert detector.rebuild_count == 0  # the incremental contract

    # Exactly-once / completeness check against the offline engine.
    offline = FlowMotifEngine(
        InteractionGraph(stream)
    ).find_instances(motif)
    streamed_keys = {a.canonical_key() for a in alerts}
    offline_keys = {i.canonical_key() for i in offline.instances}
    assert streamed_keys == offline_keys, "stream/offline mismatch!"
    print(
        f"consistency check passed: streaming emitted exactly the "
        f"{len(offline_keys)} offline instances, each once."
    )


if __name__ == "__main__":
    main()
