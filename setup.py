"""Setup shim for environments without the ``wheel`` package.

All metadata lives in pyproject.toml; this file only enables the legacy
``setup.py develop`` editable-install path (offline machines without PEP 660
support can run ``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
