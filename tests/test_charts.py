"""ASCII chart rendering."""

from __future__ import annotations

import pytest

from repro.utils.charts import bar_chart, series_chart


class TestBarChart:
    def test_scaling(self):
        text = bar_chart(["a", "b"], [10.0, 5.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_title(self):
        text = bar_chart(["x"], [1.0], title="demo")
        assert text.splitlines()[0] == "demo"

    def test_zero_values(self):
        text = bar_chart(["a", "b"], [0.0, 0.0])
        assert "█" not in text

    def test_half_block(self):
        text = bar_chart(["a", "b"], [10.0, 0.5], width=10)
        assert "▌" in text.splitlines()[1]

    def test_empty(self):
        assert "(no data)" in bar_chart([], [])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            bar_chart(["a"], [1.0, 2.0])

    def test_invalid_width(self):
        with pytest.raises(ValueError, match="width"):
            bar_chart(["a"], [1.0], width=0)

    def test_labels_aligned(self):
        text = bar_chart(["a", "long"], [1.0, 2.0])
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")


class TestSeriesChart:
    def test_all_series_rendered(self):
        text = series_chart(
            [200, 400], {"M(3,2)": [5.0, 9.0], "M(3,3)": [1.0, 2.0]},
            title="fig9",
        )
        assert "== fig9 ==" in text
        assert "M(3,2)" in text and "M(3,3)" in text

    def test_short_series_truncates_x(self):
        text = series_chart([1, 2, 3], {"a": [5.0]})
        assert "2" not in text.splitlines()[-1]
