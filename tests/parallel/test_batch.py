"""BatchRunner — grid evaluation with shared phase P1."""

from __future__ import annotations

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif
from repro.parallel import BatchRunner, MotifConfig


def _keys(instances):
    return sorted(i.canonical_key() for i in instances)


def _grid(delta=10, phi=7):
    triangle = Motif.cycle(3, delta=delta, phi=phi)
    chain = Motif.chain(3, delta=delta, phi=phi)
    return [
        MotifConfig(triangle),
        MotifConfig(triangle, phi=0),
        MotifConfig(triangle, delta=5),
        MotifConfig(chain),
        MotifConfig(chain, phi=0),
    ]


class TestSerialBatch:
    def test_results_align_with_serial_engine(self, fig2_graph):
        runner = BatchRunner(fig2_graph, jobs=1)
        configs = _grid()
        results = runner.run(configs)
        assert len(results) == len(configs)
        engine = FlowMotifEngine(fig2_graph)
        for config, result in zip(configs, results):
            reference = engine.find_instances(
                config.motif, delta=config.delta, phi=config.phi
            )
            assert result.count == reference.count
            assert _keys(result.instances) == _keys(reference.instances)

    def test_p1_shared_per_topology_group(self, fig2_graph):
        runner = BatchRunner(fig2_graph, jobs=1)
        results = runner.run(_grid())
        assert runner.last_stats["num_configs"] == 5
        assert runner.last_stats["num_topology_groups"] == 2
        # P1 is charged once per group: exactly two results carry P1 time.
        charged = [r for r in results if r.p1_seconds > 0.0]
        assert len(charged) == 2

    def test_collect_false_keeps_counts(self, fig2_graph):
        runner = BatchRunner(fig2_graph, jobs=1)
        configs = _grid()
        lean = runner.run(configs, collect=False)
        full = runner.run(configs, collect=True)
        assert [r.count for r in lean] == [r.count for r in full]
        assert all(r.instances == [] for r in lean)

    def test_empty_grid(self, fig2_graph):
        runner = BatchRunner(fig2_graph, jobs=1)
        assert runner.run([]) == []
        assert runner.last_stats["num_configs"] == 0


class TestShardedBatch:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_matches_serial_batch(self, fig2_graph, backend):
        configs = _grid()
        serial = BatchRunner(fig2_graph, jobs=1).run(configs)
        sharded = BatchRunner(
            fig2_graph, jobs=2, shards=3, backend=backend
        ).run(configs)
        for a, b in zip(serial, sharded):
            assert a.count == b.count
            assert _keys(a.instances) == _keys(b.instances)

    def test_halo_covers_grid_maximum_delta(self, fig2_graph):
        # Mixed δ grid: the partition must use the largest δ as halo so
        # the wide-δ config stays exact.
        triangle = Motif.cycle(3, delta=10, phi=0)
        configs = [MotifConfig(triangle, delta=2), MotifConfig(triangle, delta=10)]
        serial = BatchRunner(fig2_graph, jobs=1).run(configs)
        sharded = BatchRunner(fig2_graph, jobs=1, shards=4, backend="serial").run(
            configs
        )
        for a, b in zip(serial, sharded):
            assert _keys(a.instances) == _keys(b.instances)


class TestConfigCoercion:
    def test_accepts_bare_motifs_and_tuples(self, fig2_graph):
        triangle = Motif.cycle(3, delta=10, phi=7)
        runner = BatchRunner(fig2_graph, jobs=1)
        results = runner.run([triangle, (triangle, 5), (triangle, 10, 0)])
        engine = FlowMotifEngine(fig2_graph)
        assert results[0].count == engine.find_instances(triangle).count
        assert results[1].count == engine.find_instances(triangle, delta=5).count
        assert results[2].count == engine.find_instances(triangle, phi=0).count

    def test_effective_constraints(self):
        motif = Motif.chain(3, delta=7, phi=3)
        assert MotifConfig(motif).effective_delta == 7
        assert MotifConfig(motif).effective_phi == 3
        assert MotifConfig(motif, delta=1, phi=0).effective_delta == 1
        assert MotifConfig(motif, delta=1, phi=0).effective_phi == 0

    def test_rejects_unknown_items(self, fig2_graph):
        with pytest.raises(TypeError):
            BatchRunner(fig2_graph).run(["M(3,3)"])

    def test_rejects_non_graph(self):
        with pytest.raises(TypeError):
            BatchRunner(42)


class TestRunnerConfigValidation:
    def test_invalid_backend_rejected(self, fig2_graph):
        with pytest.raises(ValueError, match="backend"):
            BatchRunner(fig2_graph, jobs=2, backend="proces")

    def test_sharded_reports_wall_time(self, fig2_graph):
        runner = BatchRunner(fig2_graph, jobs=2, shards=3, backend="thread")
        results = runner.run(_grid())
        for result in results:
            assert result.shard_timings is not None
            assert result.shard_timings.wall_seconds > 0.0

    def test_serial_path_has_no_shard_report(self, fig2_graph):
        results = BatchRunner(fig2_graph, jobs=1).run(_grid())
        assert all(r.shard_timings is None for r in results)


class TestInstanceMotifAttachment:
    def test_serial_group_members_carry_their_own_motif(self, fig2_graph):
        """Same-topology configs built from *distinct* Motif objects: each
        result's instances must report that config's motif, not the
        topology group's first motif (regression)."""
        wide = Motif.cycle(3, delta=10, phi=0)
        narrow = Motif.cycle(3, delta=8, phi=0)
        serial = BatchRunner(fig2_graph, jobs=1).run([wide, narrow])
        sharded = BatchRunner(fig2_graph, jobs=1, shards=3, backend="serial").run(
            [wide, narrow]
        )
        for results in (serial, sharded):
            assert all(i.motif is wide for i in results[0].instances)
            assert all(i.motif is narrow for i in results[1].instances)
