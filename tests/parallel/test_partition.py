"""Unit tests for the δ-overlap time-range partitioner."""

from __future__ import annotations

import math

import pytest

from repro.graph.interaction import InteractionGraph
from repro.parallel.partition import partition_time_range


def _grid_graph(num_events: int = 60) -> InteractionGraph:
    """A deterministic multigraph with duplicate edges and tied times."""
    tuples = []
    nodes = ["a", "b", "c", "d"]
    for i in range(num_events):
        src = nodes[i % 4]
        dst = nodes[(i + 1) % 4]
        time = float(i % 20)  # many ties, duplicate (src, dst, t) triples
        tuples.append((src, dst, time, 1.0 + (i % 5)))
    return InteractionGraph.from_tuples(tuples)


class TestCoreRanges:
    def test_cores_cover_timeline_disjointly(self):
        graph = _grid_graph()
        shards = partition_time_range(graph, 4, halo=3.0)
        assert shards[0].core_start == -math.inf
        assert shards[-1].core_end == math.inf
        for left, right in zip(shards, shards[1:]):
            assert left.core_end == right.core_start

    def test_every_event_owned_by_exactly_one_core(self):
        graph = _grid_graph()
        shards = partition_time_range(graph, 4, halo=3.0)
        for it in graph.interactions():
            owners = [s.index for s in shards if s.owns_anchor(it.time)]
            assert len(owners) == 1

    def test_single_shard_holds_everything(self):
        graph = _grid_graph()
        (shard,) = partition_time_range(graph, 1, halo=5.0)
        assert shard.num_events == graph.num_edges
        assert shard.owns_anchor(-1e9) and shard.owns_anchor(1e9)

    def test_requests_beyond_distinct_times_collapse(self):
        graph = InteractionGraph.from_tuples(
            [("a", "b", 1.0, 1.0), ("a", "b", 1.0, 2.0)]
        )
        shards = partition_time_range(graph, 8, halo=1.0)
        assert 1 <= len(shards) <= 8
        total_owned = sum(
            1 for s in shards for it in graph.interactions() if s.owns_anchor(it.time)
        )
        assert total_owned == graph.num_edges


class TestHaloAndOffsets:
    def test_halo_events_present_in_neighbour_shard(self):
        graph = _grid_graph()
        halo = 4.0
        shards = partition_time_range(graph, 3, halo=halo)
        for shard in shards:
            lo = shard.core_start - halo
            hi = shard.core_end + halo
            expected = sum(1 for it in graph.interactions() if lo <= it.time <= hi)
            assert shard.num_events == expected

    def test_offsets_map_slices_back_to_parent(self):
        graph = _grid_graph()
        ts = graph.to_time_series()
        for shard in partition_time_range(graph, 4, halo=2.0):
            for series in shard.graph.all_series():
                parent = ts.series(series.src, series.dst)
                offset = shard.offsets[(series.src, series.dst)]
                for i in range(len(series)):
                    assert parent.time(i + offset) == series.time(i)
                    assert parent.flow(i + offset) == series.flow(i)

    def test_zero_halo_allowed(self):
        graph = _grid_graph()
        shards = partition_time_range(graph, 2, halo=0.0)
        assert sum(
            1 for s in shards for it in graph.interactions() if s.owns_anchor(it.time)
        ) == graph.num_edges


class TestStrategiesAndErrors:
    def test_events_strategy_balances_load(self):
        # Heavily skewed timeline: most events in one narrow burst.
        tuples = [("a", "b", 0.001 * i, 1.0) for i in range(90)]
        tuples += [("a", "b", 100.0 + i, 1.0) for i in range(10)]
        graph = InteractionGraph.from_tuples(tuples)
        by_events = partition_time_range(graph, 2, halo=0.0, strategy="events")
        by_width = partition_time_range(graph, 2, halo=0.0, strategy="width")
        events_core_counts = [
            sum(1 for it in graph.interactions() if s.owns_anchor(it.time))
            for s in by_events
        ]
        width_core_counts = [
            sum(1 for it in graph.interactions() if s.owns_anchor(it.time))
            for s in by_width
        ]
        assert max(events_core_counts) < max(width_core_counts)

    def test_width_strategy_cuts_equal_intervals(self):
        graph = _grid_graph()
        shards = partition_time_range(graph, 4, halo=0.0, strategy="width")
        interior = [s.core_start for s in shards[1:]]
        diffs = [b - a for a, b in zip(interior, interior[1:])]
        assert all(abs(d - diffs[0]) < 1e-9 for d in diffs)

    def test_accepts_time_series_graph(self):
        graph = _grid_graph()
        shards = partition_time_range(graph.to_time_series(), 2, halo=1.0)
        assert len(shards) == 2

    @pytest.mark.parametrize(
        "kwargs, error",
        [
            (dict(num_shards=0, halo=1.0), ValueError),
            (dict(num_shards=2, halo=-1.0), ValueError),
            (dict(num_shards=2, halo=1.0, strategy="bogus"), ValueError),
        ],
    )
    def test_invalid_arguments(self, kwargs, error):
        with pytest.raises(error):
            partition_time_range(_grid_graph(), **kwargs)

    def test_rejects_non_graph(self):
        with pytest.raises(TypeError):
            partition_time_range([("a", "b", 1.0, 1.0)], 2, halo=1.0)
