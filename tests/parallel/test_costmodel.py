"""The EWMA shard cost model: learning, cutting, and the adaptive loop.

Two layers of property:

1. **Mechanism** (deterministic, no wall clocks): fed synthetic per-shard
   costs drawn from a known skewed cost function, the model's
   cost-weighted cuts must partition the *true* cost more evenly than
   event quantiles do.
2. **End to end** (real timings): on a skewed workload,
   :class:`BatchRunner` with the cost model keeps parallel output
   multiset-identical to serial — the δ-halo ownership argument holds
   for any strictly increasing cuts — and lowers the measured shard
   imbalance ratio vs the quantile partitioner.
"""

from __future__ import annotations

import math
import random
import statistics
from collections import Counter
from dataclasses import dataclass

import pytest

from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph
from repro.parallel.batch import BatchRunner, MotifConfig
from repro.parallel.costmodel import ShardCostModel
from repro.utils.timing import ShardTiming


# ----------------------------------------------------------------------
# Synthetic scaffolding: shards + costs without running any search
# ----------------------------------------------------------------------


@dataclass
class FakeShard:
    index: int
    core_start: float
    core_end: float


def _cores_from_cuts(cuts):
    bounds = [-math.inf] + list(cuts) + [math.inf]
    return [
        FakeShard(i, a, b)
        for i, (a, b) in enumerate(zip(bounds[:-1], bounds[1:]))
    ]


def _quantile_cuts(times, num_shards):
    n = len(times)
    cuts = []
    for k in range(1, num_shards):
        t = times[k * n // num_shards]
        if not cuts or t > cuts[-1]:
            cuts.append(t)
    return cuts


def _true_costs(times, cuts, cost_of):
    """True per-shard cost of the partition induced by ``cuts``."""
    bounds = [-math.inf] + list(cuts) + [math.inf]
    costs = []
    for a, b in zip(bounds[:-1], bounds[1:]):
        costs.append(sum(cost_of(t) for t in times if a <= t < b))
    return costs


def _imbalance(costs):
    mean = sum(costs) / len(costs)
    return max(costs) / mean if mean > 0 else 1.0


def _skewed_times(rng, n=4000, horizon=1000.0):
    """Power-law gradient: density decays continuously along the line."""
    return sorted(horizon * rng.random() ** 2 for _ in range(n))


def _teach(model, times, cuts, cost_of, scale=1e-4):
    """One observation round: per-shard seconds from the true cost fn."""
    shards = _cores_from_cuts(cuts)
    timings = [
        ShardTiming(s.index, p2_seconds=scale * cost)
        for s, cost in zip(shards, _true_costs(times, cuts, cost_of))
    ]
    model.observe(shards, timings, times)
    return shards


class TestValidation:
    def test_alpha_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ShardCostModel(alpha=0.0)
        with pytest.raises(ValueError):
            ShardCostModel(alpha=1.5)

    def test_nonpositive_bins_rejected(self):
        with pytest.raises(ValueError):
            ShardCostModel(num_bins=0)

    def test_not_ready_until_observed(self):
        model = ShardCostModel()
        assert not model.ready
        assert model.cut_points([1.0, 2.0, 3.0], 2) is None

    def test_single_shard_never_cut(self):
        model = ShardCostModel()
        times = [float(i) for i in range(100)]
        _teach(model, times, [50.0], lambda t: 1.0)
        assert model.cut_points(times, 1) is None

    def test_empty_observation_is_noop(self):
        model = ShardCostModel()
        model.observe([], [], [])
        assert model.version == 0


class TestLearning:
    def test_observation_bumps_version(self):
        model = ShardCostModel()
        times = [float(i) for i in range(200)]
        _teach(model, times, _quantile_cuts(times, 4), lambda t: 1.0)
        assert model.version == 1
        assert model.ready

    def test_cuts_strictly_increasing(self):
        rng = random.Random(3)
        model = ShardCostModel()
        times = _skewed_times(rng)
        cost = lambda t: 1.0 / math.sqrt(t / 1000.0 + 0.01)
        _teach(model, times, _quantile_cuts(times, 8), cost)
        cuts = model.cut_points(times, 8)
        assert cuts is not None
        assert all(a < b for a, b in zip(cuts, cuts[1:]))
        assert len(cuts) <= 7

    def test_new_timeline_resets_densities(self):
        model = ShardCostModel()
        times_a = [float(i) for i in range(100)]
        _teach(model, times_a, _quantile_cuts(times_a, 4), lambda t: 1.0)
        # A disjoint timeline (different graph) must invalidate learned
        # densities but keep the model usable after re-observation.
        times_b = [1000.0 + float(i) for i in range(100)]
        _teach(model, times_b, _quantile_cuts(times_b, 4), lambda t: 1.0)
        cuts = model.cut_points(times_b, 4)
        assert cuts is not None
        assert all(times_b[0] < c < times_b[-1] for c in cuts)

    def test_prediction_is_scored_by_next_observation(self):
        rng = random.Random(5)
        model = ShardCostModel()
        times = _skewed_times(rng, n=2000)
        cost = lambda t: 1.0 / math.sqrt(t / 1000.0 + 0.01)
        _teach(model, times, _quantile_cuts(times, 6), cost)
        cuts = model.cut_points(times, 6)
        assert model.scored_predictions == 0
        _teach(model, times, cuts, cost)
        assert model.scored_predictions > 0
        # Densities came straight from the true cost fn, so predictions
        # should be close (bin discretization is the only error source).
        assert model.mean_abs_rel_error < 0.5


class TestCostBalancedCuts:
    @pytest.mark.parametrize("seed", range(5))
    def test_adaptive_cuts_beat_quantile_cuts_on_true_cost(self, seed):
        """Property: for skewed cost functions, cost-weighted cuts
        partition the true cost more evenly than event quantiles."""
        rng = random.Random(seed)
        times = _skewed_times(rng)
        # Per-event cost tracks the local density of the power-law
        # gradient (as P2 cost does), with a seed-varying exponent.
        exponent = rng.uniform(0.3, 0.7)
        cost = lambda t: 1.0 / (t / 1000.0 + 0.01) ** exponent
        model = ShardCostModel()
        quantile = _quantile_cuts(times, 8)
        _teach(model, times, quantile, cost)
        adaptive = model.cut_points(times, 8)
        assert adaptive is not None
        q_imb = _imbalance(_true_costs(times, quantile, cost))
        a_imb = _imbalance(_true_costs(times, adaptive, cost))
        assert a_imb < q_imb

    def test_uniform_cost_keeps_roughly_quantile_cuts(self):
        """With flat density the model must not invent skew."""
        model = ShardCostModel()
        times = [float(i) for i in range(1000)]
        _teach(model, times, _quantile_cuts(times, 4), lambda t: 1.0)
        cuts = model.cut_points(times, 4)
        costs = _true_costs(times, cuts, lambda t: 1.0)
        assert _imbalance(costs) < 1.1


class TestAdaptiveBatchRunner:
    @pytest.fixture(scope="class")
    def skewed_graph(self):
        rng = random.Random(7)
        g = InteractionGraph()
        nodes = [f"n{i}" for i in range(12)]
        for _ in range(6000):
            u, v = rng.sample(nodes, 2)
            g.add_interaction(
                u, v, 4000.0 * rng.random() ** 2, rng.uniform(0.5, 5.0)
            )
        return g

    @pytest.fixture(scope="class")
    def grid(self):
        base = Motif.chain(3, delta=5.0, phi=0.0)
        return [
            MotifConfig(base),
            MotifConfig(base, phi=0.5),
            MotifConfig(base, phi=1.0),
            MotifConfig(base, delta=4.0),
            MotifConfig(base, delta=4.0, phi=1.0),
        ]

    def test_adaptive_output_multiset_identical_to_serial(
        self, skewed_graph, grid
    ):
        serial = BatchRunner(skewed_graph, jobs=1).run(grid)
        adaptive = BatchRunner(
            skewed_graph, jobs=1, shards=8, backend="serial", adaptive=True
        ).run(grid)
        for s, a in zip(serial, adaptive):
            assert Counter(i.canonical_key() for i in s.instances) == Counter(
                i.canonical_key() for i in a.instances
            )

    def test_adaptive_lowers_measured_imbalance(self, skewed_graph, grid):
        def median_imbalance(runner):
            results = runner.run(grid, collect=False)
            # Skip index 0: under adaptive it is the quantile probe.
            return statistics.median(
                r.shard_timings.imbalance_ratio for r in results[1:]
            )

        quantile = median_imbalance(
            BatchRunner(skewed_graph, jobs=1, shards=8, backend="serial")
        )
        adaptive = median_imbalance(
            BatchRunner(
                skewed_graph, jobs=1, shards=8, backend="serial", adaptive=True
            )
        )
        assert adaptive < quantile

    def test_adaptive_stats_and_gauges_published(self, skewed_graph, grid):
        from repro.obs import metrics

        reg = metrics.MetricsRegistry()
        prev = metrics.activate(reg)
        try:
            runner = BatchRunner(
                skewed_graph, jobs=1, shards=8, backend="serial", adaptive=True
            )
            runner.run(grid, collect=False)
        finally:
            metrics.activate(prev)
        stats = runner.last_stats
        assert stats["imbalance_before"] >= 1.0
        assert stats["imbalance_after"] >= 1.0
        gauges = reg.snapshot()["gauges"]
        assert gauges["parallel.adaptive.imbalance_before"] == pytest.approx(
            stats["imbalance_before"]
        )
        assert gauges["parallel.adaptive.imbalance_after"] == pytest.approx(
            stats["imbalance_after"]
        )
        assert "parallel.adaptive.prediction_error" in gauges

    def test_explicit_model_is_reused_and_warms_up(self, skewed_graph, grid):
        model = ShardCostModel()
        runner = BatchRunner(
            skewed_graph,
            jobs=1,
            shards=8,
            backend="serial",
            cost_model=model,
        )
        assert runner.adaptive
        runner.run(grid[:2], collect=False)
        version_after_first = model.version
        assert version_after_first > 0
        runner.run(grid[:2], collect=False)
        assert model.version > version_after_first
