"""Property tests: parallel output ≡ serial output, any sharding.

Seeded-random interaction graphs (seeds derived from the shared
``base_seed`` fixture in ``tests/conftest.py`` — failures print the exact
seed, ``REPRO_TEST_SEED`` reproduces it) stress the partitioner where it
can go wrong: duplicate parallel edges (including identical (src, dst, time)
triples), tied timestamps, δ-windows straddling shard boundaries, and
anchors landing exactly on cut points (integer timestamps + the "events"
strategy cut at event times guarantee boundary anchors). For every graph,
motif, shard count and job count, the parallel engine must return exactly
the serial engine's instance set, flows, and counts.
"""

from __future__ import annotations

import random

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph
from repro.parallel import ParallelFlowMotifEngine

SHARD_COUNTS = [1, 2, 3, 8]
JOB_COUNTS = [1, 2, 4]


def _random_graph(seed: int, num_events: int = 90) -> InteractionGraph:
    """Dense random multigraph with duplicate edges and many tied times."""
    rng = random.Random(seed)
    nodes = ["n%d" % i for i in range(6)]
    graph = InteractionGraph()
    for _ in range(num_events):
        src, dst = rng.sample(nodes, 2)
        time = float(rng.randrange(0, 40))  # integer grid: ties + boundary hits
        flow = float(rng.randint(1, 9))
        graph.add_interaction(src, dst, time, flow)
        if rng.random() < 0.2:
            # Exact duplicate edge: same pair, same timestamp.
            graph.add_interaction(src, dst, time, float(rng.randint(1, 9)))
    return graph


def _motifs():
    return [
        Motif.chain(2, delta=6, phi=3),
        Motif.chain(3, delta=9, phi=4),
        Motif.cycle(3, delta=14, phi=0),
    ]


def _keys(instances):
    return sorted(i.canonical_key() for i in instances)


@pytest.mark.parametrize("case", [0, 1, 2])
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_find_instances_equals_serial(case, shards, base_seed):
    graph = _random_graph(base_seed + case)
    serial_engine = FlowMotifEngine(graph)
    parallel_engine = ParallelFlowMotifEngine(graph, jobs=1, shards=shards)
    for motif in _motifs():
        serial = serial_engine.find_instances(motif)
        parallel = parallel_engine.find_instances(motif)
        assert parallel.count == serial.count
        assert _keys(parallel.instances) == _keys(serial.instances)
        assert sorted(parallel.flows()) == sorted(serial.flows())


@pytest.mark.parametrize("jobs", JOB_COUNTS)
def test_jobs_do_not_change_results(jobs, base_seed):
    graph = _random_graph(seed=base_seed + 3)
    motif = Motif.chain(3, delta=9, phi=4)
    serial = FlowMotifEngine(graph).find_instances(motif)
    backend = "serial" if jobs == 1 else "thread"
    parallel = ParallelFlowMotifEngine(
        graph, jobs=jobs, shards=4, backend=backend
    ).find_instances(motif)
    assert _keys(parallel.instances) == _keys(serial.instances)


@pytest.mark.parametrize("strategy", ["events", "width"])
@pytest.mark.parametrize("case", [4, 5])
def test_strategies_are_output_equivalent(case, strategy, base_seed):
    graph = _random_graph(base_seed + case)
    motif = Motif.cycle(3, delta=12, phi=2)
    serial = FlowMotifEngine(graph).find_instances(motif)
    parallel = ParallelFlowMotifEngine(
        graph, jobs=1, shards=3, partition_strategy=strategy
    ).find_instances(motif)
    assert _keys(parallel.instances) == _keys(serial.instances)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_counts_and_top_k_equal_serial(shards, base_seed):
    graph = _random_graph(seed=base_seed + 6)
    serial_engine = FlowMotifEngine(graph)
    parallel_engine = ParallelFlowMotifEngine(graph, jobs=1, shards=shards)
    for motif in _motifs():
        assert (
            parallel_engine.count_instances(motif).count
            == serial_engine.count_instances(motif).count
        )
        serial_top = serial_engine.top_k(motif, 7)
        parallel_top = parallel_engine.top_k(motif, 7)
        assert [i.flow for i in parallel_top] == [i.flow for i in serial_top]


@pytest.mark.parametrize("shards", [2, 3, 8])
def test_ablation_flags_equal_serial(shards, base_seed):
    """skip_rule/prefix_pruning ablations shard identically (they change
    only how the search works, never its output)."""
    graph = _random_graph(seed=base_seed + 7, num_events=60)
    motif = Motif.chain(3, delta=8, phi=3)
    serial_engine = FlowMotifEngine(graph)
    parallel_engine = ParallelFlowMotifEngine(graph, jobs=1, shards=shards)
    for skip_rule, prefix_pruning in [(False, True), (True, False)]:
        serial = serial_engine.find_instances(
            motif, skip_rule=skip_rule, prefix_pruning=prefix_pruning
        )
        parallel = parallel_engine.find_instances(
            motif, skip_rule=skip_rule, prefix_pruning=prefix_pruning
        )
        assert _keys(parallel.instances) == _keys(serial.instances)


def test_parallel_runs_are_mutually_deterministic(base_seed):
    """Same query, different job counts/backends → byte-identical order."""
    graph = _random_graph(seed=base_seed + 8)
    motif = Motif.chain(3, delta=9, phi=2)
    reference = ParallelFlowMotifEngine(
        graph, jobs=1, shards=4
    ).find_instances(motif)
    again = ParallelFlowMotifEngine(
        graph, jobs=2, shards=4, backend="thread"
    ).find_instances(motif)
    assert [i.canonical_key() for i in again.instances] == [
        i.canonical_key() for i in reference.instances
    ]
