"""ParallelFlowMotifEngine — equivalence with the serial engine and API."""

from __future__ import annotations

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.instance import is_maximal, is_valid_instance
from repro.core.motif import Motif
from repro.parallel import ParallelFlowMotifEngine
from repro.utils.timing import ShardTimingReport


def _keys(instances):
    return sorted(i.canonical_key() for i in instances)


class TestEquivalenceOnFixtures:
    @pytest.mark.parametrize("shards", [1, 2, 3, 8])
    def test_find_instances_matches_serial(self, fig2_graph, triangle, shards):
        serial = FlowMotifEngine(fig2_graph).find_instances(triangle)
        parallel = ParallelFlowMotifEngine(
            fig2_graph, jobs=1, shards=shards
        ).find_instances(triangle)
        assert parallel.count == serial.count
        assert _keys(parallel.instances) == _keys(serial.instances)

    @pytest.mark.parametrize("shards", [2, 3])
    def test_delta_phi_overrides_match_serial(self, fig7_graph, shards):
        motif = Motif.cycle(3, delta=10, phi=0)
        serial = FlowMotifEngine(fig7_graph).find_instances(motif, delta=6, phi=2)
        parallel = ParallelFlowMotifEngine(
            fig7_graph, jobs=1, shards=shards
        ).find_instances(motif, delta=6, phi=2)
        assert _keys(parallel.instances) == _keys(serial.instances)

    def test_count_instances_matches_serial(self, fig2_graph, triangle_phi0):
        serial = FlowMotifEngine(fig2_graph).count_instances(triangle_phi0)
        parallel = ParallelFlowMotifEngine(
            fig2_graph, jobs=1, shards=3
        ).count_instances(triangle_phi0)
        assert parallel.count == serial.count
        assert parallel.instances == []

    def test_top_k_flows_match_serial(self, fig2_graph, triangle_phi0):
        serial = FlowMotifEngine(fig2_graph).top_k(triangle_phi0, 3)
        parallel = ParallelFlowMotifEngine(fig2_graph, jobs=1, shards=3).top_k(
            triangle_phi0, 3
        )
        assert [i.flow for i in parallel] == [i.flow for i in serial]

    def test_collect_false_counts_exactly(self, fig2_graph, triangle_phi0):
        serial = FlowMotifEngine(fig2_graph).find_instances(triangle_phi0)
        parallel = ParallelFlowMotifEngine(
            fig2_graph, jobs=1, shards=4
        ).find_instances(triangle_phi0, collect=False)
        assert parallel.count == serial.count
        assert parallel.instances == []


class TestRebinding:
    def test_instances_backed_by_parent_series(self, fig2_graph, triangle_phi0):
        ts = fig2_graph.to_time_series()
        result = ParallelFlowMotifEngine(
            fig2_graph, jobs=1, shards=4
        ).find_instances(triangle_phi0)
        assert result.count > 0
        for instance in result.instances:
            ok, reason = is_valid_instance(instance, ts)
            assert ok, reason
            assert is_maximal(instance)
            for run in instance.runs:
                assert ts.series(run.series.src, run.series.dst) is run.series


class TestHaloNecessity:
    """The regression case where a halo-free shard would emit a spurious,
    globally non-maximal instance (first-series element just across the
    shard boundary is addable to the first edge-set)."""

    def _graph_and_motif(self):
        from repro.graph.interaction import InteractionGraph

        graph = InteractionGraph.from_tuples(
            [("a", "b", 0.0, 3.0), ("a", "b", 4.0, 2.0), ("b", "c", 5.0, 1.0)]
        )
        return graph, Motif.chain(3, delta=6, phi=0)

    def test_serial_reference(self):
        graph, motif = self._graph_and_motif()
        result = FlowMotifEngine(graph).find_instances(motif)
        assert result.count == 1
        (instance,) = result.instances
        assert instance.start_time == 0.0  # anchored at the earliest event

    @pytest.mark.parametrize("strategy", ["events", "width"])
    def test_sharded_search_suppresses_boundary_duplicate(self, strategy):
        graph, motif = self._graph_and_motif()
        engine = ParallelFlowMotifEngine(
            graph, jobs=1, shards=2, partition_strategy=strategy
        )
        result = engine.find_instances(motif)
        serial = FlowMotifEngine(graph).find_instances(motif)
        assert _keys(result.instances) == _keys(serial.instances)

    def test_shards_contain_left_halo_events(self):
        graph, motif = self._graph_and_motif()
        engine = ParallelFlowMotifEngine(graph, jobs=1, shards=2)
        shards = engine.partition(motif.delta)
        last = shards[-1]
        if last.core_start > 0.0:  # the boundary split the series
            series = last.graph.series("a", "b")
            assert series is not None
            assert series.first_time < last.core_start


class TestBackendsAndConfig:
    def test_thread_backend_matches_serial(self, fig2_graph, triangle_phi0):
        serial = FlowMotifEngine(fig2_graph).find_instances(triangle_phi0)
        parallel = ParallelFlowMotifEngine(
            fig2_graph, jobs=2, shards=3, backend="thread"
        ).find_instances(triangle_phi0)
        assert _keys(parallel.instances) == _keys(serial.instances)

    def test_process_backend_matches_serial(self, fig2_graph, triangle_phi0):
        serial = FlowMotifEngine(fig2_graph).find_instances(triangle_phi0)
        parallel = ParallelFlowMotifEngine(
            fig2_graph, jobs=2, shards=2, backend="process"
        ).find_instances(triangle_phi0)
        assert _keys(parallel.instances) == _keys(serial.instances)

    def test_engine_parallel_constructor(self, fig2_engine, triangle_phi0):
        serial = fig2_engine.find_instances(triangle_phi0)
        parallel = fig2_engine.parallel(jobs=1, shards=3).find_instances(
            triangle_phi0
        )
        assert _keys(parallel.instances) == _keys(serial.instances)

    def test_invalid_backend_rejected(self, fig2_graph):
        with pytest.raises(ValueError):
            ParallelFlowMotifEngine(fig2_graph, jobs=1, backend="gpu")

    def test_invalid_graph_rejected(self):
        with pytest.raises(TypeError):
            ParallelFlowMotifEngine(object(), jobs=1)

    def test_partition_is_memoized(self, fig2_graph):
        engine = ParallelFlowMotifEngine(fig2_graph, jobs=1, shards=2)
        first = engine.partition(10.0)
        assert engine.partition(10.0) is first
        engine.clear_cache()
        assert engine.partition(10.0) is not first


class TestShardTimings:
    def test_report_shape(self, fig2_graph, triangle_phi0):
        result = ParallelFlowMotifEngine(
            fig2_graph, jobs=1, shards=3
        ).find_instances(triangle_phi0)
        report = result.shard_timings
        assert isinstance(report, ShardTimingReport)
        assert report.num_shards == len(report.shards) > 0
        assert report.max_seconds <= report.sum_seconds + 1e-12
        assert report.imbalance_ratio >= 1.0
        assert report.wall_seconds >= 0.0
        summary = report.summary()
        assert set(summary) == {
            "num_shards",
            "wall_seconds",
            "max_seconds",
            "sum_seconds",
            "mean_seconds",
            "imbalance_ratio",
        }
        assert sum(s.num_instances for s in report.shards) == result.count

    def test_serial_engine_has_no_report(self, fig2_engine, triangle_phi0):
        assert fig2_engine.find_instances(triangle_phi0).shard_timings is None


class TestPartitionCacheBound:
    def test_lru_keeps_recent_partitions_only(self, fig2_graph):
        from repro.parallel.engine import _PARTITION_CACHE_SIZE

        engine = ParallelFlowMotifEngine(fig2_graph, jobs=1, shards=2)
        for halo in (1.0, 2.0, 3.0, 4.0):
            engine.partition(halo)
        assert len(engine._partition_cache) == _PARTITION_CACHE_SIZE
        recent = engine.partition(4.0)
        assert engine.partition(4.0) is recent  # still memoized
