"""Zero-copy process fan-out: parity, payload size, export lifecycle.

The ISSUE 3 acceptance property: columnar-backed search results
(find/count/top_k, all backends) must be identical to list-backed results
on randomized graphs, and the process backend's per-worker spawn payload
must shrink by ≥10× versus pickled shard slices.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif
from repro.graph.columnar import columnarize
from repro.graph.interaction import InteractionGraph
from repro.parallel import BatchRunner, MotifConfig, ParallelFlowMotifEngine
from repro.parallel.partition import partition_time_range


def _random_graph(seed: int, num_events: int = 90) -> InteractionGraph:
    rng = random.Random(seed)
    nodes = ["n%d" % i for i in range(6)]
    graph = InteractionGraph()
    for _ in range(num_events):
        src, dst = rng.sample(nodes, 2)
        time = float(rng.randrange(0, 40))  # ties + boundary anchors
        graph.add_interaction(src, dst, time, float(rng.randint(1, 9)))
    return graph


def _keys(instances):
    return sorted(i.canonical_key() for i in instances)


MOTIFS = [
    Motif.chain(2, delta=6, phi=3),
    Motif.chain(3, delta=9, phi=4),
    Motif.cycle(3, delta=14, phi=0),
]


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_columnar_graph_matches_list_backed_all_backends(seed, backend):
    """find/count/top_k on a columnar-backed graph ≡ list-backed results."""
    graph = _random_graph(seed)
    ts = graph.to_time_series()
    columnar = columnarize(ts)
    for motif in MOTIFS:
        reference = FlowMotifEngine(ts).find_instances(motif)
        with ParallelFlowMotifEngine(
            columnar, jobs=2, shards=3, backend=backend
        ) as engine:
            found = engine.find_instances(motif)
            assert found.count == reference.count
            assert _keys(found.instances) == _keys(reference.instances)
            counted = engine.count_instances(motif)
            assert counted.count == reference.count
            top = engine.top_k(motif, 4)
            top_reference = FlowMotifEngine(ts).top_k(motif, 4)
            assert [pytest.approx(i.flow) for i in top] == [
                i.flow for i in top_reference
            ]


@pytest.mark.parametrize("seed", [0, 1])
def test_zero_copy_process_equals_pickled_process(seed):
    """The shm transport and the pickled-shard transport agree exactly."""
    graph = _random_graph(seed)
    motif = Motif.chain(3, delta=9, phi=4)
    with ParallelFlowMotifEngine(
        graph, jobs=2, shards=3, backend="process"
    ) as shm_engine, ParallelFlowMotifEngine(
        graph, jobs=2, shards=3, backend="process", use_shared_memory=False
    ) as pickled_engine:
        assert shm_engine._zero_copy and not pickled_engine._zero_copy
        a = shm_engine.find_instances(motif)
        b = pickled_engine.find_instances(motif)
        assert a.count == b.count
        assert _keys(a.instances) == _keys(b.instances)


def test_spawn_payload_at_least_10x_smaller():
    """Per-worker task payloads: (shm_name, bounds) vs pickled slices."""
    graph = _random_graph(0, num_events=600)
    ts = graph.to_time_series()
    motif = Motif.chain(3, delta=9, phi=4)
    pickled_shards = partition_time_range(ts, 4, 9.0)
    pickled_bytes = sum(
        len(pickle.dumps(("search", s, motif, 9.0, 4.0, True, True, True)))
        for s in pickled_shards
    )
    with ParallelFlowMotifEngine(
        graph, jobs=2, shards=4, backend="process"
    ) as engine:
        tasks = engine._shard_tasks(
            engine.partition(9.0), "search", motif, 9.0, 4.0, True, True, True
        )
        zero_copy_bytes = sum(len(pickle.dumps(t)) for t in tasks)
    assert pickled_bytes >= 10 * zero_copy_bytes, (
        f"payload only shrank {pickled_bytes / zero_copy_bytes:.1f}x "
        f"({pickled_bytes} -> {zero_copy_bytes} bytes)"
    )


def test_export_created_lazily_and_reused_across_queries():
    graph = _random_graph(1)
    engine = ParallelFlowMotifEngine(graph, jobs=2, shards=2, backend="process")
    try:
        assert engine._export is None  # nothing exported before a query
        engine.find_instances(MOTIFS[0])
        first = engine._shared_store().shm_name
        engine.count_instances(MOTIFS[1])
        assert engine._shared_store().shm_name == first  # one block, reused
    finally:
        engine.close()
    assert engine._export is None
    engine.close()  # idempotent


def test_columnar_graph_with_shm_disabled_still_pickles():
    """The documented no-shm fallback must work even when the *parent*
    graph is columnar-backed: materialized shards are list-backed copies
    (memoryview slices cannot pickle)."""
    graph = _random_graph(5)
    ts = graph.to_time_series()
    motif = Motif.chain(3, delta=9, phi=4)
    reference = FlowMotifEngine(ts).find_instances(motif)
    with ParallelFlowMotifEngine(
        columnarize(ts), jobs=2, shards=3, backend="process",
        use_shared_memory=False,
    ) as engine:
        result = engine.find_instances(motif)
    assert result.count == reference.count
    assert _keys(result.instances) == _keys(reference.instances)


def test_huge_int_timestamps_fall_back_to_pickled_transport():
    """int values past 2^53 cannot live in float64 columns bit-exactly;
    the engine must keep the pickled transport rather than silently
    altering timestamps."""
    base = 2 ** 53
    graph = InteractionGraph.from_tuples([
        ("a", "b", base + 1, 5.0),
        ("b", "c", base + 3, 4.0),
        ("b", "c", base + 5, 2.0),
    ])
    motif = Motif.chain(3, delta=10, phi=3)
    reference = FlowMotifEngine(graph).find_instances(motif)
    with ParallelFlowMotifEngine(
        graph, jobs=2, shards=2, backend="process"
    ) as engine:
        result = engine.find_instances(motif)
        assert not engine._zero_copy  # export attempt flipped the flag
    assert result.count == reference.count == 1


def test_single_shard_runs_inline_without_export():
    """One shard never leaves the parent process, so the engine must not
    pay a shared-memory export (nor attach to its own block)."""
    graph = _random_graph(4)
    motif = Motif.chain(3, delta=9, phi=4)
    reference = FlowMotifEngine(graph).find_instances(motif)
    with ParallelFlowMotifEngine(
        graph, jobs=4, shards=1, backend="process"
    ) as engine:
        assert engine._zero_copy  # zero-copy configured...
        result = engine.find_instances(motif)
        assert engine._export is None  # ...but never exported
    assert result.count == reference.count
    assert _keys(result.instances) == _keys(reference.instances)


def test_exotic_node_ids_fall_back_to_pickled_transport():
    """Tuple node ids cannot live in the JSON pair table; the process
    backend must silently keep the pickled-shard transport (the PR-2
    behaviour) instead of failing at query time."""
    graph = InteractionGraph.from_tuples([
        ((0, "a"), (1, "b"), 1.0, 5.0),
        ((1, "b"), (2, "c"), 2.0, 4.0),
        ((1, "b"), (2, "c"), 3.0, 2.0),
    ])
    motif = Motif.chain(3, delta=10, phi=3)
    reference = FlowMotifEngine(graph).find_instances(motif)
    with ParallelFlowMotifEngine(
        graph, jobs=2, shards=2, backend="process"
    ) as engine:
        result = engine.find_instances(motif)
        assert not engine._zero_copy  # export attempt flipped the flag
        assert engine._export is None
        again = engine.find_instances(motif)  # pickled path, post-fallback
    assert result.count == again.count == reference.count == 1


def test_thread_and_serial_backends_skip_shared_memory():
    graph = _random_graph(2)
    for backend in ("thread", "serial"):
        with ParallelFlowMotifEngine(
            graph, jobs=2, shards=2, backend=backend
        ) as engine:
            assert not engine._zero_copy
            engine.find_instances(MOTIFS[0])
            assert engine._export is None


def test_batch_runner_zero_copy_parity():
    graph = _random_graph(3)
    configs = [
        MotifConfig(Motif.chain(3, delta=9, phi=0)),
        MotifConfig(Motif.chain(3, delta=9, phi=0), delta=5.0),
        MotifConfig(Motif.cycle(3, delta=14, phi=0)),
    ]
    serial = BatchRunner(graph, jobs=1).run(configs)
    sharded = BatchRunner(graph, jobs=2, shards=3, backend="process").run(configs)
    for a, b in zip(serial, sharded):
        assert a.count == b.count
        assert _keys(a.instances) == _keys(b.instances)
