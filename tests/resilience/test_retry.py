"""Unit tests for retry policies and failure classification."""

from __future__ import annotations

import pickle

import pytest

from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError

from repro.resilience import (
    DispatchReport,
    RetryPolicy,
    ShardTimeoutError,
    classify_error,
)


class TestRetryPolicyValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2
        assert policy.degrade is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"base_delay": -0.1},
            {"max_delay": -1.0},
            {"backoff_factor": 0.5},
            {"jitter": -0.01},
            {"jitter": 1.5},
            {"timeout": 0.0},
            {"timeout": -3.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_frozen(self):
        policy = RetryPolicy()
        with pytest.raises(Exception):
            policy.max_retries = 5


class TestDelaySchedule:
    def test_deterministic_across_instances(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        for attempt in range(5):
            assert a.delay_for(attempt) == b.delay_for(attempt)

    def test_seed_changes_jitter(self):
        a = RetryPolicy(seed=1, jitter=0.5)
        b = RetryPolicy(seed=2, jitter=0.5)
        assert a.delay_for(0) != b.delay_for(0)

    def test_token_changes_jitter(self):
        policy = RetryPolicy(jitter=0.5)
        assert policy.delay_for(0, token=0) != policy.delay_for(0, token=1)

    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            base_delay=0.1, backoff_factor=2.0, max_delay=100.0, jitter=0.0
        )
        assert policy.delay_for(0) == pytest.approx(0.1)
        assert policy.delay_for(1) == pytest.approx(0.2)
        assert policy.delay_for(3) == pytest.approx(0.8)

    def test_capped_at_max_delay(self):
        policy = RetryPolicy(
            base_delay=1.0, backoff_factor=10.0, max_delay=2.5, jitter=0.0
        )
        assert policy.delay_for(5) == 2.5

    def test_jitter_bounded_by_fraction(self):
        policy = RetryPolicy(
            base_delay=1.0, backoff_factor=1.0, max_delay=1.0, jitter=0.25
        )
        for attempt in range(20):
            delay = policy.delay_for(attempt)
            assert 1.0 <= delay <= 1.25


class TestClassifyError:
    @pytest.mark.parametrize(
        "exc,expected",
        [
            (FuturesTimeoutError(), "timeout"),
            (ShardTimeoutError("late"), "timeout"),
            (TimeoutError(), "timeout"),
            (BrokenExecutor("pool died"), "worker-crash"),
            (pickle.PicklingError("nope"), "serialization"),
            (FileNotFoundError("/psm_gone"), "shared-memory"),
            (OSError("cannot map shared memory segment"), "shared-memory"),
            (ValueError("shared memory truncated"), "shared-memory"),
            (RuntimeError("boom"), "task-error"),
            (ValueError("bad motif"), "task-error"),
        ],
    )
    def test_categories(self, exc, expected):
        assert classify_error(exc) == expected


class TestDispatchReport:
    def test_record_classifies_and_retains(self):
        report = DispatchReport(backend="process", final_backend="process")
        event = report.record(3, "process", 1, RuntimeError("boom"))
        assert event.category == "task-error"
        assert event.shard_index == 3
        assert report.fault_categories == ("task-error",)
        assert "shard 3" in str(event)
        assert "boom" in str(event)
