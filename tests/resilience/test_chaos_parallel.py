"""Chaos property tests: the parallel engine under injected faults.

Every test follows the same shape — build a seeded random graph, compute
the serial oracle, then run the parallel engine while the fault-injection
harness kills, delays, or breaks shard tasks — and asserts the recovered
output is *multiset-identical* to serial. Fault tolerance that changes
answers is worse than no fault tolerance.
"""

from __future__ import annotations

import random

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph
from repro.parallel import ParallelFlowMotifEngine
from repro.resilience import (
    FaultSpec,
    RetryPolicy,
    ShardExecutionError,
    active_segments,
    inject,
)

#: Fast, deterministic retry schedule for tests.
FAST = dict(base_delay=0.01, max_delay=0.05, jitter=0.0)


def _random_graph(seed: int, num_events: int = 80) -> InteractionGraph:
    rng = random.Random(seed)
    nodes = ["n%d" % i for i in range(6)]
    graph = InteractionGraph()
    for _ in range(num_events):
        src, dst = rng.sample(nodes, 2)
        graph.add_interaction(
            src, dst, float(rng.randrange(0, 40)), float(rng.randint(1, 9))
        )
    return graph


def _keys(instances):
    return sorted(i.canonical_key() for i in instances)


@pytest.fixture
def motif():
    return Motif.chain(3, delta=9, phi=4)


@pytest.fixture
def graph(base_seed):
    return _random_graph(base_seed)


@pytest.fixture
def serial(graph, motif):
    return FlowMotifEngine(graph).find_instances(motif)


def test_transient_worker_kill_is_retried(graph, motif, serial):
    """A worker killed mid-shard breaks the pool; the retry round must
    re-run the lost shards and merge to exactly the serial answer."""
    with ParallelFlowMotifEngine(
        graph, jobs=2, shards=3, backend="process",
        retry_policy=RetryPolicy(max_retries=2, **FAST),
    ) as engine:
        with inject(FaultSpec(kind="kill", shards=(1,), times=1)):
            result = engine.find_instances(motif)
        report = engine.last_dispatch
    assert _keys(result.instances) == _keys(serial.instances)
    assert sorted(result.flows()) == sorted(serial.flows())
    assert report.retry_rounds >= 1
    assert "worker-crash" in report.fault_categories
    assert report.final_backend == "process"
    assert report.degradations == []


def test_persistent_kill_degrades_to_thread(graph, motif, serial):
    """When every process round dies, the engine must fall back to the
    thread backend (where the kill fault cannot fire: same pid as the
    owner) and still produce the serial answer."""
    with ParallelFlowMotifEngine(
        graph, jobs=2, shards=3, backend="process",
        retry_policy=RetryPolicy(max_retries=1, **FAST),
    ) as engine:
        with inject(FaultSpec(kind="kill", times=10**9)):
            result = engine.find_instances(motif)
        report = engine.last_dispatch
    assert _keys(result.instances) == _keys(serial.instances)
    assert "thread" in report.degradations
    assert report.final_backend in ("thread", "serial")


def test_transient_raise_on_thread_backend(graph, motif, serial):
    with ParallelFlowMotifEngine(
        graph, jobs=2, shards=4, backend="thread",
        retry_policy=RetryPolicy(max_retries=2, **FAST),
    ) as engine:
        with inject(
            FaultSpec(kind="raise", shards=(0, 2), times=1, only_workers=False)
        ):
            result = engine.find_instances(motif)
        report = engine.last_dispatch
    assert _keys(result.instances) == _keys(serial.instances)
    assert report.retry_rounds >= 1
    assert "task-error" in report.fault_categories


def test_shard_timeout_is_classified_and_retried(graph, motif, serial):
    """A shard delayed past the round deadline times out, is retried
    (fault fires only once), and the merged output is unchanged."""
    with ParallelFlowMotifEngine(
        graph, jobs=2, shards=3, backend="thread",
        retry_policy=RetryPolicy(max_retries=2, timeout=0.5, **FAST),
    ) as engine:
        with inject(
            FaultSpec(
                kind="delay", shards=(1,), delay=2.0, times=1,
                only_workers=False,
            )
        ):
            result = engine.find_instances(motif)
        report = engine.last_dispatch
    assert _keys(result.instances) == _keys(serial.instances)
    assert "timeout" in report.fault_categories


def test_exhausted_retries_raise_with_fault_history(graph, motif):
    """With degradation disabled, a permanent fault must surface as
    ShardExecutionError carrying the classified history — never silently
    return partial results."""
    with ParallelFlowMotifEngine(
        graph, jobs=2, shards=3, backend="thread",
        retry_policy=RetryPolicy(max_retries=1, degrade=False, **FAST),
    ) as engine:
        with inject(
            FaultSpec(kind="raise", times=10**9, only_workers=False)
        ):
            with pytest.raises(ShardExecutionError) as excinfo:
                engine.find_instances(motif)
    assert excinfo.value.faults  # classified history travels with the error
    assert all(f.category == "task-error" for f in excinfo.value.faults)
    assert "task-error" in str(excinfo.value)


def test_count_and_top_k_survive_transient_kill(graph, motif, serial):
    with ParallelFlowMotifEngine(
        graph, jobs=2, shards=3, backend="process",
        retry_policy=RetryPolicy(max_retries=2, **FAST),
    ) as engine:
        with inject(FaultSpec(kind="kill", shards=(0,), times=1)):
            count = engine.count_instances(motif)
        with inject(FaultSpec(kind="kill", shards=(2,), times=1)):
            top = engine.top_k(motif, k=3)
    assert count.count == serial.count
    assert [i.flow for i in top] == [
        i.flow for i in FlowMotifEngine(graph).top_k(motif, k=3)
    ]


def test_no_shm_segments_survive_engine_exit(graph, motif):
    """Even when workers are killed mid-shard, closing the engine leaves
    no shared-memory segment registered in this process."""
    with ParallelFlowMotifEngine(
        graph, jobs=2, shards=3, backend="process",
        retry_policy=RetryPolicy(max_retries=2, **FAST),
    ) as engine:
        with inject(FaultSpec(kind="kill", shards=(1,), times=1)):
            engine.find_instances(motif)
    assert active_segments() == []


def test_retry_rounds_are_deterministic(graph, motif):
    """Same fault plan, same policy → same recovery path (retry counts
    and fault categories), run to run."""
    def run():
        with ParallelFlowMotifEngine(
            graph, jobs=2, shards=3, backend="thread",
            retry_policy=RetryPolicy(max_retries=2, seed=5, **FAST),
        ) as engine:
            with inject(
                FaultSpec(
                    kind="raise", shards=(1,), times=2, only_workers=False
                )
            ):
                engine.find_instances(motif)
            report = engine.last_dispatch
        return report.retry_rounds, report.fault_categories

    assert run() == run()
