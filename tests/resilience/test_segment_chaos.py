"""Durable-store chaos: SIGKILL at every protocol seam, then recover.

The acceptance property: a hard kill at **any** registered crash point
leaves a store that (after :func:`repro.graph.segments.fsck`) reopens
cleanly, has every manifested segment intact, and searches — serial and
parallel — multiset-identically to the oracle over the events that were
durably sealed. The only permitted loss is the unsealed memtable tail.

Each scenario runs a writer in a real subprocess with a crash plan armed
through ``REPRO_CRASH_POINTS`` (the arming process is immune), so the
death is a genuine ``SIGKILL`` mid-syscall-sequence, not an exception.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import textwrap

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph
from repro.graph.segments import SegmentStore, fsck, verify_segment
from repro.resilience.faultinject import (
    COMPACT_CRASH_POINTS,
    CRASH_ENV,
    KILL_EXIT_CODE,
    SEAL_CRASH_POINTS,
    InjectedFault,
    crash_at,
)

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

BATCHES = 4
BATCH_EVENTS = 25


def _batches(seed: int = 99):
    """Deterministic event batches — identical in parent and writer."""
    rng = random.Random(seed)
    t = 0.0
    out = []
    for _ in range(BATCHES):
        batch = []
        for _ in range(BATCH_EVENTS):
            u, v = rng.sample(range(5), 2)
            t += rng.random()
            batch.append((u, v, t, float(rng.randint(1, 9))))
        out.append(batch)
    return out


#: Writer harness: seals one segment per batch (printing a line as each
#: seal *returns*, i.e. is durable), then compacts. A crash plan armed by
#: the parent kills it somewhere in the middle of all that.
WRITER = textwrap.dedent(
    """
    import random, sys
    from repro.graph.segments import SegmentStore

    BATCHES, BATCH_EVENTS = %d, %d
    rng = random.Random(99)
    t = 0.0
    store = SegmentStore(sys.argv[1])
    for index in range(BATCHES):
        for _ in range(BATCH_EVENTS):
            u, v = rng.sample(range(5), 2)
            t += rng.random()
            store.append(u, v, t, float(rng.randint(1, 9)))
        store.seal()
        print("sealed %%d" %% index, flush=True)
    store.compact()
    print("compacted", flush=True)
    """
    % (BATCHES, BATCH_EVENTS)
)


def _run_writer(root: str, crash_plan: dict) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=SRC)
    env[CRASH_ENV] = json.dumps(crash_plan)
    return subprocess.run(
        [sys.executable, "-c", WRITER, root],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def _plan(point: str, state_dir: str) -> dict:
    return {
        "owner_pid": os.getpid(),  # never the child's: it always fires
        "state_dir": state_dir,
        "points": {point: {"kind": "kill", "times": 1}},
    }


def _digest(graph):
    return sorted(
        (s.src, s.dst, list(s.times), list(s.flows))
        for s in graph.all_series()
    )


def _oracle_graph(num_batches: int):
    events = [e for batch in _batches()[:num_batches] for e in batch]
    return InteractionGraph.from_tuples(events).to_time_series()


def _search_keys(graph, parallel: bool):
    motif = Motif.chain(3, delta=4, phi=2)
    if parallel:
        from repro.parallel import ParallelFlowMotifEngine

        engine = ParallelFlowMotifEngine(graph, jobs=2, backend="process")
    else:
        engine = FlowMotifEngine(graph)
    try:
        result = engine.find_instances(motif)
        return sorted(i.canonical_key() for i in result.instances)
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()


def _recover_and_check(root: str, sealed_reported: int) -> None:
    """The whole recovery contract, asserted after any crash."""
    # 1. fsck repairs the leftovers and ends with a healthy report
    report = fsck(root)
    assert report.ok, report.summary()
    assert fsck(root, repair=False).ok  # and it converged in one pass

    # 2. every surviving live segment's checksums verify
    store = SegmentStore(root, create=False)
    durable = 0
    for name in store.live_segments():
        verify_segment(store.segment_path(name))
        durable += 1

    # 3. durable data = a batch-prefix at least as long as what the
    #    writer saw committed (a seal can be durable without the writer
    #    having lived to report it, never the reverse)
    recovered = _digest(store.search_graph())
    candidates = {
        j: _digest(_oracle_graph(j))
        for j in range(sealed_reported, BATCHES + 1)
    }
    matching = [j for j, digest in candidates.items() if digest == recovered]
    assert matching, (
        f"recovered store matches no sealed-batch prefix >= "
        f"{sealed_reported}"
    )

    # 4. parallel search over the reopened store == serial oracle
    graph = store.search_graph()
    assert _search_keys(graph, parallel=True) == _search_keys(
        _oracle_graph(matching[0]), parallel=False
    )


class TestKillAtEverySeam:
    @pytest.mark.parametrize("point", SEAL_CRASH_POINTS)
    def test_sigkill_during_seal(self, tmp_path, point):
        root = str(tmp_path / "store")
        state = str(tmp_path / "state")
        os.makedirs(state)
        proc = _run_writer(root, _plan(point, state))
        assert proc.returncode in (-9, KILL_EXIT_CODE), proc.stderr
        sealed_reported = proc.stdout.count("sealed")
        assert sealed_reported < BATCHES  # it really died mid-run
        _recover_and_check(root, sealed_reported)

    @pytest.mark.parametrize("point", COMPACT_CRASH_POINTS)
    def test_sigkill_during_compaction(self, tmp_path, point):
        """Compaction crashes lose nothing: every batch was sealed."""
        root = str(tmp_path / "store")
        state = str(tmp_path / "state")
        os.makedirs(state)
        proc = _run_writer(root, _plan(point, state))
        assert proc.returncode in (-9, KILL_EXIT_CODE), proc.stderr
        assert proc.stdout.count("sealed") == BATCHES
        assert "compacted" not in proc.stdout
        _recover_and_check(root, BATCHES)

    def test_unharmed_writer_completes(self, tmp_path):
        """Control run: no plan, the writer seals, compacts and exits 0."""
        root = str(tmp_path / "store")
        env = dict(os.environ, PYTHONPATH=SRC)
        env.pop(CRASH_ENV, None)
        proc = subprocess.run(
            [sys.executable, "-c", WRITER, root],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        store = SegmentStore(root, create=False)
        assert len(store.live_segments()) == 1  # compacted steady state
        assert _digest(store.search_graph()) == _digest(
            _oracle_graph(BATCHES)
        )


class TestRaiseKind:
    """kind="raise" fires in-process — the retry-after-fault story."""

    def test_seal_raises_then_retry_succeeds(self, tmp_path):
        store = SegmentStore(str(tmp_path / "store"))
        for event in _batches()[0]:
            store.append(*event)
        with crash_at(
            "segments.seal.before_fsync", kind="raise", only_children=False
        ):
            with pytest.raises(InjectedFault):
                store.seal()
            # the marker budget (times=1) is spent: the retry goes through
            assert store.seal() is not None
        report = fsck(store.root)
        assert report.ok
        assert _digest(store.search_graph()) == _digest(_oracle_graph(1))

    def test_compact_raises_then_retry_succeeds(self, tmp_path):
        store = SegmentStore(str(tmp_path / "store"))
        for batch in _batches()[:2]:
            for event in batch:
                store.append(*event)
            store.seal()
        with crash_at(
            "segments.compact.after_seal", kind="raise", only_children=False
        ):
            with pytest.raises(InjectedFault):
                store.compact()
            fsck(store.root)  # quarantine the unmanifested merge output
            assert store.compact() is not None
        assert len(store.live_segments()) == 1
        assert _digest(store.search_graph()) == _digest(_oracle_graph(2))

    def test_owner_process_immune_by_default(self, tmp_path):
        store = SegmentStore(str(tmp_path / "store"))
        for event in _batches()[0]:
            store.append(*event)
        with crash_at("segments.seal.before_fsync", kind="raise"):
            assert store.seal() is not None  # only_children=True: no fire
