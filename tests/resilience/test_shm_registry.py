"""Crash-safe shared-memory lifecycle tests.

The interesting cases need real process death, so several tests run a
small exporter script in a subprocess and assert on what the segment
looks like from the outside afterwards.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.graph.columnar import ColumnStore
from repro.graph.interaction import InteractionGraph
from repro.resilience import (
    active_segments,
    cleanup_segments,
    reap_orphans,
    scan_orphans,
)
from repro.resilience.shm_registry import pid_alive

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

#: Exporter harness: exports a tiny ColumnStore into shm, prints the
#: segment name, then dies the way the parametrizing test asks.
EXPORTER = textwrap.dedent(
    """
    import os, sys, time
    from repro.graph.columnar import ColumnStore
    from repro.graph.interaction import InteractionGraph

    g = InteractionGraph()
    g.add_interaction("a", "b", 1.0, 2.0)
    g.add_interaction("b", "c", 2.0, 3.0)
    store = ColumnStore.from_graph(g).to_shared()
    print(store.shm_name, flush=True)
    mode = sys.argv[1]
    if "untrack" in sys.argv[2:]:
        # Simulate the stdlib resource tracker dying with the process
        # (OOM kill / SIGKILL of the whole group): without this, the
        # surviving tracker would unlink the "leaked" segment itself and
        # race the orphan scanner under test.
        from multiprocessing import resource_tracker
        resource_tracker.unregister("/" + store.shm_name, "shared_memory")
    if mode == "exit":
        sys.exit(0)             # atexit hooks run
    elif mode == "hard-exit":
        os._exit(0)             # nothing runs: simulates SIGKILL
    elif mode == "wait":
        time.sleep(30)          # parent will signal us
    """
)


def _segment_exists(name: str) -> bool:
    return os.path.exists(os.path.join("/dev/shm", name.lstrip("/")))


def _spawn_exporter(mode: str, *flags: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.Popen(
        [sys.executable, "-c", EXPORTER, mode, *flags],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )


@pytest.fixture
def tiny_store():
    graph = InteractionGraph()
    graph.add_interaction("a", "b", 1.0, 2.0)
    return ColumnStore.from_graph(graph)


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs POSIX /dev/shm"
)
class TestCrashCleanup:
    def test_normal_exit_unlinks_via_atexit(self):
        with _spawn_exporter("exit") as proc:
            name = proc.stdout.readline().strip()
            proc.wait(timeout=30)
        assert proc.returncode == 0
        assert name
        assert not _segment_exists(name)

    def test_sigterm_unlinks_via_signal_handler(self):
        with _spawn_exporter("wait") as proc:
            name = proc.stdout.readline().strip()
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
        assert name
        assert not _segment_exists(name)

    def test_hard_kill_leaks_then_reap_orphans_recovers(self):
        with _spawn_exporter("hard-exit", "untrack") as proc:
            name = proc.stdout.readline().strip()
            proc.wait(timeout=30)
        assert name
        # os._exit skipped every hook: the segment leaked...
        assert _segment_exists(name)
        bare = name.lstrip("/")
        # ...the scanner sees it (creator pid recorded and dead)...
        assert bare in scan_orphans()
        # ...and the reaper removes exactly it.
        assert bare in reap_orphans([bare])
        assert not _segment_exists(name)

    def test_attach_warns_on_orphaned_segment(self, tiny_store, caplog):
        try:
            with _spawn_exporter("wait", "untrack") as proc:
                name = proc.stdout.readline().strip()
                proc.send_signal(signal.SIGSTOP)  # keep it mapped but idle
                proc.kill()  # SIGKILL: no cleanup runs
                proc.wait(timeout=30)
            assert _segment_exists(name)
            with caplog.at_level("WARNING", logger="repro.graph.columnar"):
                attached = ColumnStore.attach(name)
            assert attached.creator_pid == proc.pid
            assert not pid_alive(proc.pid)
            assert any("orphan" in r.message for r in caplog.records)
            attached.close()
        finally:
            reap_orphans([name.lstrip("/")])


class TestRegistry:
    def test_register_unregister_cycle(self, tiny_store):
        shared = tiny_store.to_shared()
        name = shared.shm_name
        assert name in active_segments()
        shared.close(unlink=True)  # close() unregisters before unlinking
        assert name not in active_segments()
        assert not _segment_exists(name)

    def test_cleanup_segments_unlinks_registered(self, tiny_store):
        shared = tiny_store.to_shared()
        name = shared.shm_name
        assert cleanup_segments() >= 1
        assert name not in active_segments()
        assert not _segment_exists(name)

    def test_cleanup_is_idempotent(self, tiny_store):
        shared = tiny_store.to_shared()
        shared.close(unlink=True)
        assert cleanup_segments() == 0

    def test_creator_pid_travels_with_the_segment(self, tiny_store):
        shared = tiny_store.to_shared()
        try:
            attached = ColumnStore.attach(shared.shm_name)
            assert attached.creator_pid == os.getpid()
            attached.close()
        finally:
            shared.close(unlink=True)


class TestPidAlive:
    def test_own_pid(self):
        assert pid_alive(os.getpid())

    def test_dead_pid(self):
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait(timeout=30)
        assert not pid_alive(proc.pid)

    def test_garbage_pids(self):
        assert not pid_alive(None)
        assert not pid_alive(0)
        assert not pid_alive(-5)


class TestStoreOrphans:
    """reap_orphans also sweeps durable segment-store directories."""

    DEAD_PID = 999999999  # far above any real pid_max

    def _leftovers(self, tmp_path):
        from repro.resilience.shm_registry import (
            QUARANTINE_MARKER,
            TMP_MARKER,
        )

        dead_tmp = tmp_path / f"seg-000003.seg{TMP_MARKER}{self.DEAD_PID}"
        live_tmp = tmp_path / f"seg-000004.seg{TMP_MARKER}{os.getpid()}"
        dead_q = tmp_path / (
            f"seg-000001.seg{QUARANTINE_MARKER}{self.DEAD_PID}"
        )
        live_q = tmp_path / f"seg-000002.seg{QUARANTINE_MARKER}{os.getpid()}"
        sealed = tmp_path / "seg-000000.seg"
        for path in (dead_tmp, live_tmp, dead_q, live_q, sealed):
            path.write_bytes(b"x")
        return dead_tmp, live_tmp, dead_q, live_q, sealed

    def test_scan_reports_only_dead_pid_files(self, tmp_path):
        from repro.resilience import scan_store_orphans

        dead_tmp, live_tmp, dead_q, live_q, sealed = self._leftovers(tmp_path)
        found = scan_store_orphans(str(tmp_path))
        assert sorted(found) == sorted([str(dead_tmp), str(dead_q)])

    def test_reap_removes_dead_keeps_live_and_sealed(self, tmp_path):
        dead_tmp, live_tmp, dead_q, live_q, sealed = self._leftovers(tmp_path)
        reaped = reap_orphans(names=[], store_dirs=[str(tmp_path)])
        assert sorted(reaped) == sorted([str(dead_tmp), str(dead_q)])
        assert not dead_tmp.exists() and not dead_q.exists()
        assert live_tmp.exists() and live_q.exists() and sealed.exists()

    def test_missing_store_dir_is_quietly_empty(self, tmp_path):
        from repro.resilience import scan_store_orphans

        assert scan_store_orphans(str(tmp_path / "nope")) == []
        assert reap_orphans(names=[], store_dirs=[str(tmp_path / "nope")]) == []
