"""Streaming durability: checkpoint → restore → continue ≡ uninterrupted.

Every round-trip test serializes through ``json.dumps``/``json.loads`` —
a checkpoint that only survives in-process dict form is worthless for
crash recovery.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif
from repro.core.streaming import StreamingDetector
from repro.graph.interaction import InteractionGraph
from repro.resilience import reorder_within_slack
from repro.resilience.checkpoint import (
    FORMAT,
    VERSION,
    CheckpointError,
    load_checkpoint,
    restore_detector,
)


def random_stream(rng, nodes=6, events=60, horizon=60):
    stream = []
    for _ in range(events):
        src = rng.randrange(nodes)
        dst = rng.randrange(nodes)
        while dst == src:
            dst = rng.randrange(nodes)
        stream.append((src, dst, rng.uniform(0, horizon), rng.uniform(0.5, 5)))
    stream.sort(key=lambda e: e[2])
    return stream


def _drive(detector, stream, poll_every=5):
    emitted = []
    for i, (src, dst, t, f) in enumerate(stream):
        detector.add(src, dst, t, f)
        if poll_every and i % poll_every == 0:
            emitted.extend(detector.poll())
    return emitted


def _round_trip(detector):
    """Checkpoint through real JSON, like the CLI does."""
    return StreamingDetector.restore(
        json.loads(json.dumps(detector.checkpoint()))
    )


def _keys(instances):
    return sorted(i.canonical_key() for i in instances)


class TestRoundTripEquivalence:
    @pytest.mark.parametrize("mode", ["incremental", "rebuild"])
    @pytest.mark.parametrize("cut", [1, 20, 59])
    def test_interrupted_equals_uninterrupted(self, mode, cut, base_seed):
        rng = random.Random(base_seed + cut)
        stream = random_stream(rng)
        motif = Motif.chain(3, delta=12, phi=3)

        whole = StreamingDetector(motif, mode=mode)
        expected = _drive(whole, stream) + whole.flush()

        first = StreamingDetector(motif, mode=mode)
        emitted = _drive(first, stream[:cut])
        resumed = _round_trip(first)
        emitted += _drive(resumed, stream[cut:]) + resumed.flush()

        assert _keys(emitted) == _keys(expected)
        # ...and both agree with offline search.
        offline = FlowMotifEngine(
            InteractionGraph.from_tuples(stream)
        ).find_instances(motif)
        assert set(_keys(emitted)) == {
            i.canonical_key() for i in offline.instances
        }

    @pytest.mark.parametrize("mode", ["incremental", "rebuild"])
    def test_round_trip_with_reorder_buffer_pending(self, mode, base_seed):
        """A checkpoint taken while events sit in the slack buffer must
        carry them: they have been accepted, losing them is data loss."""
        rng = random.Random(base_seed)
        stream = random_stream(rng)
        slack = 6.0
        perturbed = reorder_within_slack(stream, slack, rng)
        motif = Motif.chain(2, delta=8, phi=2)

        first = StreamingDetector(motif, mode=mode, slack=slack)
        emitted = _drive(first, perturbed[:30])
        assert first.pending_count > 0  # the interesting precondition
        resumed = _round_trip(first)
        assert resumed.pending_count == first.pending_count
        emitted += _drive(resumed, perturbed[30:]) + resumed.flush()

        offline = FlowMotifEngine(
            InteractionGraph.from_tuples(stream)
        ).find_instances(motif)
        assert set(_keys(emitted)) == {
            i.canonical_key() for i in offline.instances
        }

    def test_double_checkpoint_is_stable(self, base_seed):
        rng = random.Random(base_seed)
        stream = random_stream(rng, events=30)
        detector = StreamingDetector(Motif.chain(2, delta=8, phi=1))
        _drive(detector, stream)
        once = _round_trip(detector)
        twice = _round_trip(once)
        assert _keys(once.flush()) == _keys(twice.flush())


class TestStatePreservation:
    def _fed(self, **kwargs):
        detector = StreamingDetector(
            Motif.chain(2, delta=4, phi=0), late="drop", slack=2.0, **kwargs
        )
        detector.add("a", "b", 1.0, 2.0)
        detector.add("a", "b", 5.0, 2.0)
        detector.add("a", "b", 0.5, 2.0)  # late beyond slack: dropped
        detector.poll()
        return detector

    def test_counters_and_config_survive(self):
        detector = self._fed()
        resumed = _round_trip(detector)
        assert resumed.watermark == detector.watermark
        assert resumed.slack == detector.slack
        assert resumed.late == detector.late
        assert resumed.mode == detector.mode
        assert resumed.late_dropped == detector.late_dropped == 1
        assert resumed.emitted_count == detector.emitted_count
        assert resumed.num_events == detector.num_events

    def test_no_duplicate_emissions_after_restore(self):
        """Instances emitted before the checkpoint must not be emitted
        again by the restored detector."""
        motif = Motif.chain(2, delta=4, phi=0)
        detector = StreamingDetector(motif)
        detector.add("a", "b", 1.0, 2.0)
        detector.add("z", "w", 50.0, 1.0)  # pushes the watermark far out
        first = detector.poll()
        assert first  # the a->b window closed and emitted
        resumed = _round_trip(detector)
        later = resumed.poll() + resumed.flush()
        # The open z->w window may still emit, but nothing already
        # emitted before the checkpoint may appear again.
        assert not set(_keys(first)) & set(_keys(later))

    def test_flushed_detector_stays_flushed(self):
        detector = StreamingDetector(Motif.chain(2, delta=4, phi=0))
        detector.add("a", "b", 1.0, 2.0)
        detector.flush()
        resumed = _round_trip(detector)
        with pytest.raises(ValueError, match="flushed"):
            resumed.add("a", "b", 2.0, 1.0)

    def test_checkpoint_is_plain_json(self, base_seed):
        rng = random.Random(base_seed)
        detector = StreamingDetector(Motif.chain(3, delta=10, phi=2))
        _drive(detector, random_stream(rng, events=40))
        payload = json.dumps(detector.checkpoint())
        assert "-Infinity" not in payload and "Infinity" not in payload
        assert json.loads(payload)["format"] == FORMAT


class TestMalformedCheckpoints:
    def _valid(self):
        detector = StreamingDetector(Motif.chain(2, delta=4, phi=0))
        detector.add("a", "b", 1.0, 2.0)
        return detector.checkpoint()

    def test_wrong_format_rejected(self):
        state = self._valid()
        state["format"] = "something-else"
        with pytest.raises(CheckpointError):
            restore_detector(state)

    def test_future_version_rejected(self):
        state = self._valid()
        state["version"] = VERSION + 1
        with pytest.raises(CheckpointError):
            restore_detector(state)

    def test_missing_keys_rejected(self):
        state = self._valid()
        del state["series"]
        with pytest.raises(CheckpointError):
            restore_detector(state)

    def test_garbage_rejected(self):
        with pytest.raises(CheckpointError):
            restore_detector({"hello": "world"})

    def test_truncated_payload_rejected(self):
        state = self._valid()
        state["motif"] = {"path": state["motif"]["path"]}
        with pytest.raises(CheckpointError):
            restore_detector(state)


class TestCorruptedCheckpointText:
    """Torn/rotted checkpoint *files* surface only CheckpointError.

    A crash mid-write leaves a truncated JSON document; bit rot leaves a
    scrambled one. Restoring through either must raise the typed error —
    never a raw ``json.JSONDecodeError``/``KeyError``/``TypeError`` from
    deeper in the stack.
    """

    def _valid_text(self) -> str:
        detector = StreamingDetector(Motif.chain(3, delta=10, phi=2))
        _drive(detector, random_stream(random.Random(13), events=30))
        return json.dumps(detector.checkpoint())

    def test_truncation_at_any_length_raises_typed_error(self):
        text = self._valid_text()
        # every 7th prefix plus the all-important near-complete tails
        cuts = list(range(0, len(text), 7)) + [len(text) - 2, len(text) - 1]
        for cut in cuts:
            with pytest.raises(CheckpointError):
                StreamingDetector.restore(load_checkpoint(text[:cut]))

    def test_corrupted_byte_raises_typed_error_or_restores(self):
        text = self._valid_text()
        rng = random.Random(31)
        for _ in range(60):
            index = rng.randrange(len(text))
            mangled = text[:index] + chr(33 + rng.randrange(90)) + text[index + 1:]
            try:
                restored = StreamingDetector.restore(load_checkpoint(mangled))
            except CheckpointError:
                continue  # typed rejection: the contract
            # a flip inside a value can legitimately still parse — but it
            # must then restore to a *working* detector, never crash later
            restored.poll()

    def test_not_json_raises_typed_error(self):
        for garbage in ("", "{", "nul", "\x00\xff", "[1, 2", '{"a": '):
            with pytest.raises(CheckpointError, match="not valid JSON"):
                load_checkpoint(garbage)

    def test_json_but_not_a_checkpoint_raises_typed_error(self):
        for payload in ("[]", "42", '"hi"', "{}", '{"format": "other"}'):
            with pytest.raises(CheckpointError, match="format"):
                load_checkpoint(payload)

    def test_valid_text_round_trips(self):
        text = self._valid_text()
        original = json.loads(text)
        restored = StreamingDetector.restore(load_checkpoint(text)).checkpoint()
        for key in ("format", "version", "watermark", "emitted", "series"):
            assert restored[key] == original[key]
        # progress cursors survive as a set (rediscovery order may differ)
        assert sorted(map(json.dumps, restored["progress"])) == sorted(
            map(json.dumps, original["progress"])
        )
