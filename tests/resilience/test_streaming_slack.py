"""Bounded out-of-order tolerance: the reorder buffer vs the oracle.

The contract: with ``slack=S``, any stream whose events are each late by
at most ``S`` time units must produce exactly the emissions of the
time-ordered stream — which in turn equal offline search. Events later
than ``S`` are refused (raise) or counted and dropped, never silently
absorbed wrong.
"""

from __future__ import annotations

import random

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif
from repro.core.streaming import StreamingDetector
from repro.graph.interaction import InteractionGraph
from repro.resilience import duplicate_events, reorder_within_slack


def random_stream(rng, nodes=6, events=60, horizon=60):
    stream = []
    for _ in range(events):
        src = rng.randrange(nodes)
        dst = rng.randrange(nodes)
        while dst == src:
            dst = rng.randrange(nodes)
        stream.append((src, dst, rng.uniform(0, horizon), rng.uniform(0.5, 5)))
    stream.sort(key=lambda e: e[2])
    return stream


def offline_keys(stream, motif):
    graph = InteractionGraph.from_tuples(stream)
    result = FlowMotifEngine(graph).find_instances(motif)
    return {i.canonical_key() for i in result.instances}


def streamed_keys(stream, motif, poll_every=7, **kwargs):
    detector = StreamingDetector(motif, **kwargs)
    emitted = []
    for i, (src, dst, t, f) in enumerate(stream):
        detector.add(src, dst, t, f)
        if poll_every and i % poll_every == 0:
            emitted.extend(detector.poll())
    emitted.extend(detector.flush())
    keys = [i.canonical_key() for i in emitted]
    assert len(keys) == len(set(keys)), "duplicate emission"
    return set(keys)


class TestSlackEqualsOracle:
    @pytest.mark.parametrize("case", range(4))
    @pytest.mark.parametrize("mode", ["incremental", "rebuild"])
    def test_perturbed_stream_matches_offline(self, case, mode, base_seed):
        rng = random.Random(base_seed + case)
        stream = random_stream(rng)
        motif = Motif.chain(3, delta=12, phi=3)
        slack = 5.0
        perturbed = reorder_within_slack(stream, slack, rng)
        assert streamed_keys(
            perturbed, motif, mode=mode, slack=slack
        ) == offline_keys(stream, motif)

    def test_perturbed_with_duplicates_matches_perturbed_oracle(
        self, base_seed
    ):
        rng = random.Random(base_seed)
        stream = duplicate_events(random_stream(rng), 0.2, rng)
        motif = Motif.chain(2, delta=8, phi=2)
        perturbed = reorder_within_slack(stream, 3.0, rng)
        assert streamed_keys(perturbed, motif, slack=3.0) == offline_keys(
            stream, motif
        )

    def test_zero_slack_on_ordered_stream_unchanged(self, base_seed):
        rng = random.Random(base_seed)
        stream = random_stream(rng)
        motif = Motif.chain(3, delta=10, phi=3)
        assert streamed_keys(stream, motif, slack=0.0) == offline_keys(
            stream, motif
        )

    def test_slack_delays_but_never_loses_emissions(self):
        """Within-slack events are buffered, so a poll may emit later
        than the slack-free run — but the flush totals agree."""
        motif = Motif.chain(2, delta=4, phi=0)
        detector = StreamingDetector(motif, slack=10.0)
        detector.add("a", "b", 1.0, 2.0)
        detector.add("a", "b", 8.0, 2.0)
        # Watermark 8, emission horizon 8 - 10 < 1: nothing certain yet.
        assert detector.poll() == []
        assert detector.pending_count > 0
        emitted = detector.flush()
        assert detector.pending_count == 0
        baseline = StreamingDetector(motif)
        baseline.add("a", "b", 1.0, 2.0)
        baseline.add("a", "b", 8.0, 2.0)
        assert {i.canonical_key() for i in emitted} == {
            i.canonical_key() for i in baseline.flush()
        }


class TestLateEvents:
    def _fed(self, **kwargs):
        detector = StreamingDetector(Motif.chain(2, delta=4, phi=0), **kwargs)
        detector.add("a", "b", 10.0, 1.0)
        return detector

    def test_within_slack_accepted(self):
        detector = self._fed(slack=5.0)
        assert detector.add("a", "b", 6.0, 1.0) is True
        assert detector.late_dropped == 0

    def test_exactly_at_slack_boundary_accepted(self):
        detector = self._fed(slack=5.0)
        assert detector.add("a", "b", 5.0, 1.0) is True

    def test_beyond_slack_raises_by_default(self):
        detector = self._fed(slack=5.0)
        with pytest.raises(ValueError, match="out-of-order"):
            detector.add("a", "b", 4.9, 1.0)

    def test_beyond_slack_dropped_and_counted(self):
        detector = self._fed(slack=5.0, late="drop")
        assert detector.add("a", "b", 4.9, 1.0) is False
        assert detector.add("a", "b", 3.0, 1.0) is False
        assert detector.late_dropped == 2
        # ...and the dropped events contributed nothing: only the first
        # event exists, still sitting in the reorder buffer.
        assert detector.num_events + detector.pending_count == 1

    def test_zero_slack_rejects_any_regression(self):
        detector = self._fed()
        with pytest.raises(ValueError, match="out-of-order"):
            detector.add("a", "b", 9.999, 1.0)

    def test_metrics_surface_resilience_counters(self):
        detector = self._fed(slack=5.0, late="drop")
        detector.add("a", "b", 2.0, 1.0)
        detector.add("a", "b", 7.0, 1.0)
        snapshot = detector.metrics().snapshot()
        assert snapshot["gauges"]["stream.slack"] == 5.0
        assert snapshot["counters"]["stream.late_dropped"] == 1
        assert snapshot["gauges"]["stream.reorder_depth"] >= detector.pending_count

    def test_stats_adapter_still_warns(self):
        # The deprecated dict adapter must keep warning until removal.
        detector = self._fed(slack=5.0, late="drop")
        with pytest.warns(DeprecationWarning, match="metrics"):
            stats = detector.stats()
        assert stats["slack"] == 5.0
        assert stats["pending"] == detector.pending_count


class TestValidation:
    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError):
            StreamingDetector(Motif.chain(2, delta=4), slack=-1.0)

    def test_unknown_late_policy_rejected(self):
        with pytest.raises(ValueError):
            StreamingDetector(Motif.chain(2, delta=4), late="ignore")
