"""Unit tests for the fault-injection harness itself.

The harness is test infrastructure — if its spec matching, attempt
counting, or stream perturbations are wrong, the chaos tests prove
nothing. So it gets its own direct tests.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.resilience import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupt_lines,
    drop_events,
    duplicate_events,
    inject,
    reorder_within_slack,
)
from repro.resilience.faultinject import ENV_VAR, maybe_inject


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="explode")

    def test_rejects_nonpositive_times(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="raise", times=0)

    def test_matches_any_by_default(self):
        spec = FaultSpec(kind="raise")
        assert spec.matches(0, "search")
        assert spec.matches(99, "batch")

    def test_matches_filters_shard_and_kind(self):
        spec = FaultSpec(kind="raise", shards=(1, 3), task_kinds=("count",))
        assert spec.matches(1, "count")
        assert not spec.matches(2, "count")
        assert not spec.matches(1, "search")


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec(kind="delay", shards=(0,), delay=0.5, times=3)],
            state_dir=str(tmp_path),
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.specs == plan.specs
        assert restored.state_dir == plan.state_dir
        assert restored.owner_pid == plan.owner_pid

    def test_attempt_counter_is_cross_process_safe(self, tmp_path):
        plan = FaultPlan([FaultSpec(kind="raise")], state_dir=str(tmp_path))
        claims = [plan._claim_attempt(0, 7) for _ in range(5)]
        assert claims == [0, 1, 2, 3, 4]
        # A "different process" (fresh plan object, same state dir)
        # continues the same sequence.
        other = FaultPlan.from_json(plan.to_json())
        assert other._claim_attempt(0, 7) == 5

    def test_fires_exactly_times_then_clean(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec(kind="raise", times=2, only_workers=False)],
            state_dir=str(tmp_path),
        )
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plan.fire(0, "search")
        plan.fire(0, "search")  # attempt 2 >= times: clean

    def test_only_workers_skips_the_owner_process(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec(kind="kill", only_workers=True)], state_dir=str(tmp_path)
        )
        plan.fire(0, "search")  # must not kill or raise in the owner

    def test_kill_downgrades_to_raise_in_owner(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec(kind="kill", only_workers=False)], state_dir=str(tmp_path)
        )
        with pytest.raises(InjectedFault):
            plan.fire(0, "search")

    def test_inject_sets_and_restores_env(self, tmp_path):
        assert os.environ.get(ENV_VAR) is None
        with inject(FaultSpec(kind="raise", only_workers=False)) as plan:
            assert FaultPlan.from_json(os.environ[ENV_VAR]).specs == plan.specs
            with pytest.raises(InjectedFault):
                maybe_inject(3, "search")
        assert os.environ.get(ENV_VAR) is None
        maybe_inject(3, "search")  # disarmed: no-op

    def test_maybe_inject_noop_without_plan(self):
        maybe_inject(0, "search")


class TestStreamPerturbations:
    def _events(self, n=50):
        return [("a", "b", float(t), 1.0) for t in range(n)]

    def test_drop_events_rate_zero_and_one(self):
        events = self._events()
        rng = random.Random(0)
        assert drop_events(events, 0.0, rng) == events
        assert drop_events(events, 1.0, rng) == []

    def test_duplicate_events_adjacent_same_time(self):
        events = self._events(20)
        out = duplicate_events(events, 0.5, random.Random(1))
        assert len(out) > len(events)
        # Every duplicate sits immediately after its original.
        for i in range(1, len(out)):
            if out[i] == out[i - 1]:
                assert out[i][2] == out[i - 1][2]
        # Stream stays time-ordered.
        times = [e[2] for e in out]
        assert times == sorted(times)

    def test_reorder_within_slack_bounds_lateness(self):
        events = self._events(200)
        slack = 5.0
        shuffled = reorder_within_slack(events, slack, random.Random(2))
        assert sorted(shuffled) == events  # permutation, nothing lost
        assert shuffled != events  # actually perturbed at this size
        watermark = float("-inf")
        for _, _, time, _ in shuffled:
            watermark = max(watermark, time)
            assert time >= watermark - slack  # lateness never exceeds slack

    def test_reorder_with_zero_slack_is_identity(self):
        events = self._events(50)
        assert reorder_within_slack(events, 0.0, random.Random(3)) == events

    def test_corrupt_lines_counts_and_breaks_parsing(self):
        from io import StringIO

        from repro.graph.io import iter_csv_interactions

        lines = ["a,b,%d,1.0" % t for t in range(100)]
        corrupted, count = corrupt_lines(lines, 0.3, random.Random(4))
        assert len(corrupted) == len(lines)
        assert 0 < count < len(lines)
        # Every clean line parses; the reader quarantines exactly the rest.
        sink_calls = []
        parsed = list(
            iter_csv_interactions(
                StringIO("\n".join(corrupted) + "\n"),
                delimiter=",",
                on_error="skip",
                error_sink=lambda n, msg, raw: sink_calls.append(n),
            )
        )
        assert len(parsed) + len(sink_calls) == len(lines)
        assert len(parsed) == len(lines) - count
