"""Dataset transformations (bucketing, filtering, sampling, merging)."""

from __future__ import annotations

import pytest

from repro.graph.interaction import InteractionGraph
from repro.graph.transform import (
    bucket_interactions,
    filter_min_flow,
    induced_subgraph,
    merge_addresses,
    relabel_nodes,
    time_prefix,
    time_prefix_samples,
)


class TestBucketing:
    def test_aggregates_within_bucket(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 3, 1.0), ("a", "b", 17, 2.0), ("a", "b", 31, 4.0)]
        )
        out = bucket_interactions(g, 30.0)
        series = out.to_time_series().series("a", "b")
        assert list(series) == [(0.0, 3.0), (30.0, 4.0)]

    def test_pairs_bucketed_independently(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 3, 1.0), ("b", "a", 4, 2.0)]
        )
        out = bucket_interactions(g, 30.0)
        assert out.num_edges == 2

    def test_origin_shifts_grid(self):
        g = InteractionGraph.from_tuples([("a", "b", 29, 1.0)])
        out = bucket_interactions(g, 30.0, origin=29.0)
        assert [it.time for it in out.interactions()] == [29.0]

    def test_negative_times_floor_correctly(self):
        g = InteractionGraph.from_tuples([("a", "b", -1, 1.0)])
        out = bucket_interactions(g, 30.0)
        assert [it.time for it in out.interactions()] == [-30.0]

    def test_invalid_width(self):
        g = InteractionGraph.from_tuples([("a", "b", 1, 1.0)])
        with pytest.raises(ValueError, match="bucket_seconds"):
            bucket_interactions(g, 0)


class TestFilters:
    def test_min_flow_filter(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 1, 0.00005), ("a", "b", 2, 1.0)]
        )
        out = filter_min_flow(g, 0.0001)
        assert out.num_edges == 1

    def test_induced_subgraph(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 1, 1.0), ("b", "c", 2, 1.0), ("c", "a", 3, 1.0)]
        )
        out = induced_subgraph(g, {"a", "b"})
        assert out.num_edges == 1
        assert ("a", "b") in out.connected_pairs


class TestTimePrefix:
    @pytest.fixture
    def spread_graph(self):
        return InteractionGraph.from_tuples(
            [("a", "b", float(t), 1.0) for t in range(0, 100, 10)]
        )

    def test_half_prefix(self, spread_graph):
        out = time_prefix(spread_graph, 0.5)
        assert all(it.time <= 45 for it in out.interactions())
        assert out.num_edges == 5

    def test_full_prefix_is_identity(self, spread_graph):
        assert time_prefix(spread_graph, 1.0).num_edges == 10

    def test_invalid_fraction(self, spread_graph):
        with pytest.raises(ValueError):
            time_prefix(spread_graph, 0.0)
        with pytest.raises(ValueError):
            time_prefix(spread_graph, 1.5)

    def test_named_samples_grow(self, spread_graph):
        samples = time_prefix_samples(
            spread_graph, [0.25, 0.5, 1.0], ["S1", "S2", "S3"]
        )
        sizes = [g.num_edges for _, g in samples]
        assert sizes == sorted(sizes)
        assert [name for name, _ in samples] == ["S1", "S2", "S3"]

    def test_mismatched_names(self, spread_graph):
        with pytest.raises(ValueError, match="equal length"):
            time_prefix_samples(spread_graph, [0.5], ["A", "B"])


class TestRelabeling:
    def test_relabel(self):
        g = InteractionGraph.from_tuples([("a", "b", 1, 1.0)])
        out = relabel_nodes(g, {"a": "x"})
        assert ("x", "b") in out.connected_pairs

    def test_merge_addresses_transitive(self):
        g = InteractionGraph.from_tuples(
            [("a1", "m", 1, 1.0), ("a2", "m", 2, 1.0), ("a3", "m", 3, 1.0)]
        )
        # a1+a2 co-spent, a2+a3 co-spent → one user controls all three.
        out = merge_addresses(g, [["a1", "a2"], ["a2", "a3"]])
        assert out.num_nodes == 2  # merged user + m
        assert out.num_edges == 3  # parallel edges preserved

    def test_merge_keeps_unrelated(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 1, 1.0), ("c", "d", 2, 1.0)]
        )
        out = merge_addresses(g, [["a", "c"]])
        assert out.num_nodes == 3
