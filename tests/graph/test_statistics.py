"""Dataset statistics (Table 3 machinery)."""

from __future__ import annotations

import pytest

from repro.graph.interaction import InteractionGraph
from repro.graph.statistics import (
    dataset_statistics,
    degree_distribution,
    flow_distribution_quantiles,
    inter_event_times,
)


@pytest.fixture
def graph():
    return InteractionGraph.from_tuples(
        [
            ("a", "b", 0, 1.0),
            ("a", "b", 10, 3.0),
            ("b", "c", 5, 2.0),
            ("c", "a", 20, 6.0),
        ]
    )


class TestDatasetStatistics:
    def test_table3_columns(self, graph):
        stats = dataset_statistics(graph)
        assert stats.num_nodes == 3
        assert stats.num_connected_pairs == 3
        assert stats.num_edges == 4
        assert stats.average_flow == 3.0
        assert stats.edges_per_pair == pytest.approx(4 / 3)
        assert stats.density == pytest.approx(3 / 6)
        assert stats.time_span == 20

    def test_as_dict(self, graph):
        d = dataset_statistics(graph).as_dict()
        assert d["num_nodes"] == 3
        assert set(d) == {
            "num_nodes", "num_connected_pairs", "num_edges", "average_flow",
            "edges_per_pair", "density", "time_span",
        }

    def test_empty_graph_raises(self):
        with pytest.raises(ValueError, match="empty"):
            dataset_statistics(InteractionGraph())


class TestDistributions:
    def test_degrees(self, graph):
        degrees = degree_distribution(graph)
        assert degrees["a"] == (1, 1)
        assert degrees["b"] == (1, 1)
        assert degrees["c"] == (1, 1)

    def test_quantiles(self, graph):
        q = flow_distribution_quantiles(graph, (0.0, 0.5, 0.99))
        assert q[0.0] == 1.0
        assert q[0.99] == 6.0

    def test_invalid_quantile(self, graph):
        with pytest.raises(ValueError):
            flow_distribution_quantiles(graph, (1.5,))

    def test_inter_event_times(self, graph):
        gaps = inter_event_times(graph)
        assert gaps == [10.0]  # only (a,b) has two events
