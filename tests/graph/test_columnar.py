"""The columnar zero-copy store: view parity, shared-memory round trips.

The contract under test is strong: a :class:`ColumnarEdgeSeries` view must
be *indistinguishable* from the list-backed :class:`EdgeSeries` it
flattened — same equality (both directions), same hash, same accessor
values, same slicing behaviour — and a shared-memory export must
round-trip the whole graph bit-exactly, including across a freshly
``spawn``-ed process that shares nothing with the exporter but the block
name.
"""

from __future__ import annotations

import multiprocessing
import random

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif
from repro.graph.columnar import ColumnarEdgeSeries, ColumnStore, columnarize
from repro.graph.interaction import InteractionGraph
from repro.graph.timeseries import EdgeSeries, TimeSeriesGraph


def _random_graph(seed: int, num_events: int = 80) -> InteractionGraph:
    rng = random.Random(seed)
    nodes = ["n%d" % i for i in range(6)] + [0, 1, 2]  # mixed str/int ids
    graph = InteractionGraph()
    for _ in range(num_events):
        src, dst = rng.sample(nodes, 2)
        time = float(rng.randrange(0, 50))  # integer grid: many ties
        graph.add_interaction(src, dst, time, float(rng.randint(1, 9)))
    return graph


class TestViewParity:
    def test_series_equal_and_hash_both_directions(self):
        ts = _random_graph(0).to_time_series()
        cg = columnarize(ts)
        assert cg.num_series == ts.num_series
        for series in ts.all_series():
            view = cg.series(series.src, series.dst)
            assert isinstance(view, ColumnarEdgeSeries)
            assert view == series
            assert series == view
            assert hash(view) == hash(series)

    def test_accessors_match(self):
        ts = _random_graph(1).to_time_series()
        cg = columnarize(ts)
        for series in ts.all_series():
            view = cg.series(series.src, series.dst)
            assert len(view) == len(series)
            assert list(view) == [(t, f) for t, f in series]
            assert view.total_flow == pytest.approx(series.total_flow)
            assert view.first_time == series.first_time
            assert view.last_time == series.last_time
            for idx in range(len(series)):
                assert view.time(idx) == series.time(idx)
                assert view.flow(idx) == series.flow(idx)
                assert view.item(idx) == series.item(idx)
            for t in (-1.0, 0.0, 10.0, 25.5, 100.0):
                assert view.first_index_at_or_after(t) == series.first_index_at_or_after(t)
                assert view.first_index_after(t) == series.first_index_after(t)
                assert view.last_index_at_or_before(t) == series.last_index_at_or_before(t)
                assert view.flow_in_interval(t, t + 7) == pytest.approx(
                    series.flow_in_interval(t, t + 7)
                )

    def test_slicing_parity(self):
        ts = _random_graph(2).to_time_series()
        cg = columnarize(ts)
        for series in ts.all_series():
            if len(series) < 3:
                continue
            view = cg.series(series.src, series.dst)
            lo, hi = 1, len(series) - 2
            sliced_view = view.slice(lo, hi)
            sliced_list = series.slice(lo, hi)
            # zero-copy slices stay columnar and equal the copied slice
            assert isinstance(sliced_view, ColumnarEdgeSeries)
            assert sliced_view == sliced_list
            assert hash(sliced_view) == hash(sliced_list)
            assert sliced_view.total_flow == pytest.approx(sliced_list.total_flow)
            assert sliced_view.flow_between(0, hi - lo) == pytest.approx(
                sliced_list.flow_between(0, hi - lo)
            )

    def test_columnar_graph_search_parity(self):
        graph = _random_graph(3)
        ts = graph.to_time_series()
        cg = columnarize(ts)
        motif = Motif.chain(3, delta=12, phi=2)
        reference = FlowMotifEngine(ts).find_instances(motif)
        columnar = FlowMotifEngine(cg).find_instances(motif)
        assert columnar.count == reference.count
        assert [i.canonical_key() for i in columnar.instances] == [
            i.canonical_key() for i in reference.instances
        ]

    def test_store_layout_invariants(self):
        ts = _random_graph(4).to_time_series()
        store = ColumnStore.from_graph(ts)
        assert store.num_series == ts.num_series
        assert store.num_events == ts.num_events
        assert len(store.offsets) == store.num_series + 1
        assert store.offsets[0] == 0
        assert store.offsets[store.num_series] == store.num_events
        assert len(store.cum) == store.num_events + store.num_series
        for slot, (src, dst) in enumerate(store.pairs):
            assert store.slot(src, dst) == slot
        assert store.slot("nope", "nothere") is None

    def test_rejects_unhashable_node_types(self):
        series = EdgeSeries(("tuple", "node"), "b", [1.0], [2.0])
        with pytest.raises(TypeError):
            ColumnStore.from_graph(TimeSeriesGraph([series]))

    def test_rejects_values_not_exact_in_float64(self):
        series = EdgeSeries("a", "b", [2 ** 53 + 1], [2.0])
        with pytest.raises(ValueError, match="float64"):
            ColumnStore.from_graph(TimeSeriesGraph([series]))

    def test_empty_graph_round_trips(self):
        store = ColumnStore.from_graph(TimeSeriesGraph([]))
        assert store.num_series == 0 and store.num_events == 0
        shared = store.to_shared()
        try:
            attached = ColumnStore.attach(shared.shm_name)
            assert attached.num_series == 0
            attached.close()
        finally:
            shared.close(unlink=True)


def _digest(graph: TimeSeriesGraph):
    """A value-complete fingerprint of a graph's series contents."""
    return [
        (s.src, s.dst, list(s.times), list(s.flows), s.total_flow)
        for s in graph.all_series()
    ]


def _attach_and_digest(name, queue):
    """Spawn target: attach by name only, fingerprint, report back."""
    store = ColumnStore.attach(name)
    try:
        queue.put(_digest(store.to_graph()))
    finally:
        # Views pin the mapping; let process exit reclaim it.
        pass


class TestSharedMemory:
    def test_in_process_round_trip_bit_exact(self):
        ts = _random_graph(5).to_time_series()
        store = ColumnStore.from_graph(ts)
        shared = store.to_shared()
        try:
            attached = ColumnStore.attach(shared.shm_name)
            assert _digest(attached.to_graph()) == _digest(ts)
        finally:
            shared.close(unlink=True)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_spawned_process_round_trip_bit_exact(self, seed):
        """Property: attach() in a spawned process reproduces the graph
        bit-exactly — the zero-copy fan-out's correctness foundation."""
        ts = _random_graph(seed).to_time_series()
        shared = ColumnStore.from_graph(ts).to_shared()
        try:
            ctx = multiprocessing.get_context("spawn")
            queue = ctx.Queue()
            proc = ctx.Process(
                target=_attach_and_digest, args=(shared.shm_name, queue)
            )
            proc.start()
            remote = queue.get(timeout=60)
            proc.join(timeout=60)
            assert proc.exitcode == 0
            assert remote == _digest(ts)
        finally:
            shared.close(unlink=True)

    def test_attach_missing_block_raises(self):
        with pytest.raises((FileNotFoundError, OSError)):
            ColumnStore.attach("flow_motifs_no_such_block")

    def test_close_is_idempotent_and_unlinks(self):
        ts = _random_graph(6).to_time_series()
        shared = ColumnStore.from_graph(ts).to_shared()
        name = shared.shm_name
        shared.close(unlink=True)
        shared.close(unlink=True)  # second close is a no-op
        with pytest.raises((FileNotFoundError, OSError)):
            ColumnStore.attach(name)

    def test_plain_close_keeps_block_for_other_attachments(self):
        """close() without unlink drops only the local mapping — the
        exporter's crash-recovery story and the attach-side contract."""
        ts = _random_graph(7).to_time_series()
        shared = ColumnStore.from_graph(ts).to_shared()
        name = shared.shm_name
        shared.close()  # no unlink: the block must survive
        try:
            attached = ColumnStore.attach(name)
            assert attached.num_events == ts.num_events
            attached.close()
        finally:
            ColumnStore.attach(name).close(unlink=True)


class TestGrowableColumnStore:
    def _filled(self):
        from repro.graph.columnar import GrowableColumnStore

        store = GrowableColumnStore()
        events = [
            ("a", "b", 1.0, 2.0),
            ("b", "c", 2.0, 3.0),
            ("a", "b", 4.0, 1.0),
            ("c", "a", 4.0, 5.0),
        ]
        assert store.extend(events) == 4
        return store

    def test_append_and_snapshot_layout(self):
        store = self._filled()
        assert store.num_events == 4
        assert store.num_series == 3
        frozen = store.snapshot()
        graph = frozen.to_graph()
        ab = graph.series("a", "b")
        assert list(ab.times) == [1.0, 4.0]
        assert ab.total_flow == 3.0
        assert graph.num_events == 4

    def test_snapshot_equals_batch_columnarization(self):
        import random

        from repro.graph.columnar import ColumnStore, GrowableColumnStore
        from repro.graph.interaction import InteractionGraph

        rng = random.Random(9)
        events = []
        for _ in range(70):
            u, v = rng.sample(range(6), 2)
            events.append((u, v, float(rng.randrange(0, 40)), float(rng.randint(1, 7))))
        events.sort(key=lambda e: e[2])
        grow = GrowableColumnStore()
        grow.extend(events)
        grown_graph = grow.to_graph()
        batch_graph = ColumnStore.from_graph(
            InteractionGraph.from_tuples(events).to_time_series()
        ).to_graph()
        assert grown_graph.all_series() == batch_graph.all_series()

    def test_snapshot_is_independent_of_later_appends(self):
        store = self._filled()
        frozen = store.snapshot()
        before = list(frozen.to_graph().series("a", "b").times)
        store.append("a", "b", 9.0, 1.0)
        assert list(frozen.to_graph().series("a", "b").times) == before
        assert store.snapshot().to_graph().series("a", "b").times[-1] == 9.0

    def test_validation(self):
        from fractions import Fraction

        from repro.graph.columnar import GrowableColumnStore

        store = GrowableColumnStore()
        store.append("a", "b", 5.0, 1.0)
        with pytest.raises(ValueError, match="out of order"):
            store.append("a", "b", 4.0, 1.0)
        with pytest.raises(ValueError, match="positive"):
            store.append("a", "b", 6.0, 0.0)
        with pytest.raises(ValueError, match="float64"):
            store.append("a", "b", Fraction(1, 3), 1.0)
        with pytest.raises(TypeError, match="int or str"):
            store.append(("tuple", "node"), "b", 6.0, 1.0)

    def test_empty_snapshot(self):
        from repro.graph.columnar import GrowableColumnStore

        frozen = GrowableColumnStore().snapshot()
        assert frozen.num_events == 0
        assert frozen.num_series == 0
        assert frozen.to_graph().num_nodes == 0

    def test_search_parity_on_snapshot(self):
        """Search on a grown snapshot equals search on the list-backed graph."""
        from repro.core.engine import FlowMotifEngine
        from repro.core.motif import Motif
        from repro.graph.columnar import GrowableColumnStore
        from repro.graph.interaction import InteractionGraph

        events = [
            ("u3", "u1", 10.0, 10.0), ("u1", "u2", 13.0, 5.0),
            ("u1", "u2", 15.0, 7.0),  ("u2", "u3", 18.0, 20.0),
        ]
        grow = GrowableColumnStore()
        grow.extend(events)
        motif = Motif.cycle(3, delta=10, phi=7)
        columnar = FlowMotifEngine(grow.to_graph()).find_instances(motif)
        listed = FlowMotifEngine(
            InteractionGraph.from_tuples(events)
        ).find_instances(motif)
        assert columnar.count == listed.count == 1
        assert {i.canonical_key() for i in columnar.instances} == {
            i.canonical_key() for i in listed.instances
        }


def test_columnar_view_append_refused():
    from repro.graph.columnar import columnarize
    from repro.graph.interaction import InteractionGraph

    graph = columnarize(
        InteractionGraph.from_tuples([("a", "b", 1.0, 2.0)]).to_time_series()
    )
    with pytest.raises(TypeError, match="zero-copy"):
        graph.series("a", "b").append(2.0, 1.0)


class TestAttachTypedErrors:
    """attach() on a corrupted/foreign block raises the typed error.

    Without these checks, foreign bytes in a same-named block would be
    misread as graph data (or crash as a KeyError deep in carving).
    """

    def _export(self, seed=8):
        ts = _random_graph(seed).to_time_series()
        return ColumnStore.from_graph(ts).to_shared()

    def _corrupt(self, shared, offset, payload):
        from multiprocessing import shared_memory

        block = shared_memory.SharedMemory(shared.shm_name)
        try:
            block.buf[offset : offset + len(payload)] = payload
        finally:
            block.close()

    def test_bad_magic(self):
        from repro.resilience import SegmentCorruptionError

        shared = self._export()
        try:
            self._corrupt(shared, 0, b"NOTOURS!")
            with pytest.raises(SegmentCorruptionError, match="magic"):
                ColumnStore.attach(shared.shm_name)
        finally:
            shared.close(unlink=True)

    def test_wrong_format_version(self):
        import struct

        from repro.resilience import SegmentCorruptionError

        shared = self._export()
        try:
            self._corrupt(shared, 8, struct.pack("<Q", 999))
            with pytest.raises(SegmentCorruptionError, match="version"):
                ColumnStore.attach(shared.shm_name)
        finally:
            shared.close(unlink=True)

    def test_metadata_overruns_block(self):
        import struct

        from repro.resilience import SegmentCorruptionError

        shared = self._export()
        try:
            self._corrupt(shared, 16, struct.pack("<Q", 2**40))
            with pytest.raises(SegmentCorruptionError, match="overruns"):
                ColumnStore.attach(shared.shm_name)
        finally:
            shared.close(unlink=True)

    def test_metadata_garbage(self):
        from repro.resilience import SegmentCorruptionError

        shared = self._export()
        try:
            self._corrupt(shared, 24, b"\xff\xfe{{{{")
            with pytest.raises(SegmentCorruptionError, match="decode"):
                ColumnStore.attach(shared.shm_name)
        finally:
            shared.close(unlink=True)

    def test_foreign_tiny_block(self):
        from multiprocessing import shared_memory

        from repro.resilience import SegmentCorruptionError

        block = shared_memory.SharedMemory(create=True, size=4)
        try:
            with pytest.raises(SegmentCorruptionError, match="too"):
                ColumnStore.attach(block.name)
        finally:
            block.close()
            block.unlink()

    def test_typed_error_is_a_value_error(self):
        """Compat: pre-existing `except ValueError` call sites still work."""
        from repro.resilience import SegmentCorruptionError

        assert issubclass(SegmentCorruptionError, ValueError)
