"""EdgeSeries and TimeSeriesGraph behaviour."""

from __future__ import annotations

import pytest

from repro.graph.events import Interaction
from repro.graph.timeseries import EdgeSeries, TimeSeriesGraph


@pytest.fixture
def series():
    # Deliberately unsorted input; constructor must sort by time.
    return EdgeSeries("u", "v", [15, 10, 13, 18], [7, 5, 2, 3])


class TestEdgeSeriesConstruction:
    def test_sorted_by_time(self, series):
        assert series.times == [10, 13, 15, 18]
        assert series.flows == [5, 2, 7, 3]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            EdgeSeries("u", "v", [1, 2], [1.0])

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            EdgeSeries("u", "v", [], [])

    def test_non_positive_flow_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            EdgeSeries("u", "v", [1, 2], [1.0, 0.0])

    def test_stable_order_for_ties(self):
        s = EdgeSeries("u", "v", [5, 5, 5], [1.0, 2.0, 3.0])
        assert s.flows == [1.0, 2.0, 3.0]

    def test_iteration_yields_pairs(self, series):
        assert list(series) == [(10, 5), (13, 2), (15, 7), (18, 3)]

    def test_equality_and_hash(self):
        a = EdgeSeries("u", "v", [1, 2], [1.0, 2.0])
        b = EdgeSeries("u", "v", [2, 1], [2.0, 1.0])  # same after sorting
        assert a == b
        assert hash(a) == hash(b)
        assert a != EdgeSeries("u", "w", [1, 2], [1.0, 2.0])


class TestEdgeSeriesQueries:
    def test_total_flow(self, series):
        assert series.total_flow == 17

    def test_first_last_time(self, series):
        assert series.first_time == 10
        assert series.last_time == 18

    def test_first_index_at_or_after(self, series):
        assert series.first_index_at_or_after(10) == 0
        assert series.first_index_at_or_after(10.5) == 1
        assert series.first_index_at_or_after(18) == 3
        assert series.first_index_at_or_after(19) == 4  # past the end

    def test_first_index_after(self, series):
        assert series.first_index_after(10) == 1
        assert series.first_index_after(9.9) == 0
        assert series.first_index_after(18) == 4

    def test_last_index_at_or_before(self, series):
        assert series.last_index_at_or_before(9) == -1
        assert series.last_index_at_or_before(10) == 0
        assert series.last_index_at_or_before(100) == 3

    def test_flow_between_inclusive(self, series):
        assert series.flow_between(0, 3) == 17
        assert series.flow_between(1, 2) == 9
        assert series.flow_between(2, 2) == 7

    def test_flow_between_empty_range(self, series):
        assert series.flow_between(2, 1) == 0.0

    def test_flow_in_interval(self, series):
        assert series.flow_in_interval(10, 15) == 14
        assert series.flow_in_interval(11, 14) == 2
        assert series.flow_in_interval(19, 30) == 0.0

    def test_indices_in_interval(self, series):
        assert series.indices_in_interval(13, 18) == (1, 3)
        lo, hi = series.indices_in_interval(19, 30)
        assert hi < lo

    def test_items_range(self, series):
        assert series.items(1, 2) == [(13, 2), (15, 7)]

    def test_tied_timestamps_flow_queries(self):
        s = EdgeSeries("u", "v", [5, 5, 7], [1.0, 2.0, 4.0])
        assert s.flow_in_interval(5, 5) == 3.0
        assert s.first_index_after(5) == 2


class TestTimeSeriesGraph:
    @pytest.fixture
    def graph(self):
        return TimeSeriesGraph.from_interactions(
            [
                Interaction("a", "b", 1, 1.0),
                Interaction("a", "b", 3, 2.0),
                Interaction("b", "c", 2, 5.0),
                Interaction("c", "a", 4, 1.0),
            ]
        )

    def test_series_lookup(self, graph):
        s = graph.series("a", "b")
        assert s is not None
        assert list(s) == [(1, 1.0), (3, 2.0)]
        assert graph.series("b", "a") is None

    def test_counts(self, graph):
        assert graph.num_nodes == 3
        assert graph.num_series == 3
        assert graph.num_events == 4

    def test_adjacency(self, graph):
        assert [s.dst for s in graph.out_series("a")] == ["b"]
        assert [s.src for s in graph.in_series("a")] == ["c"]
        assert graph.out_series("missing") == []

    def test_has_edge(self, graph):
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("a", "c")

    def test_all_series_deterministic(self, graph):
        pairs = [(s.src, s.dst) for s in graph.all_series()]
        assert pairs == sorted(pairs, key=repr)

    def test_duplicate_series_rejected(self):
        s1 = EdgeSeries("a", "b", [1], [1.0])
        s2 = EdgeSeries("a", "b", [2], [2.0])
        with pytest.raises(ValueError, match="duplicate"):
            TimeSeriesGraph([s1, s2])

    def test_empty_graph(self):
        g = TimeSeriesGraph([])
        assert g.num_nodes == 0
        assert g.num_series == 0
        assert g.all_series() == []


class TestEdgeSeriesAppend:
    """Streaming growth: O(1) amortized, in-place, order-validated."""

    def test_append_extends_everything_in_place(self):
        series = EdgeSeries("a", "b", [1.0, 3.0], [2.0, 4.0])
        series.append(5.0, 6.0)
        assert len(series) == 3
        assert series.times == [1.0, 3.0, 5.0]
        assert series.total_flow == 12.0
        assert series.flow_between(0, 2) == 12.0
        assert series.last_index_at_or_before(5.0) == 2
        assert series.flow_in_interval(3.0, 5.0) == 10.0

    def test_append_tied_timestamp_allowed(self):
        series = EdgeSeries("a", "b", [1.0], [2.0])
        series.append(1.0, 3.0)
        assert series.times == [1.0, 1.0]
        assert series.total_flow == 5.0

    def test_append_out_of_order_rejected(self):
        series = EdgeSeries("a", "b", [5.0], [1.0])
        with pytest.raises(ValueError, match="out of order"):
            series.append(4.0, 1.0)

    def test_append_non_positive_flow_rejected(self):
        series = EdgeSeries("a", "b", [1.0], [1.0])
        with pytest.raises(ValueError, match="positive"):
            series.append(2.0, 0.0)

    def test_cached_reference_sees_new_elements(self):
        """Holders of the series object (cached structural matches)
        observe appends immediately — the identity never changes."""
        series = EdgeSeries("a", "b", [1.0], [1.0])
        alias = series
        series.append(2.0, 3.0)
        assert alias.flow_in_interval(0.0, 10.0) == 4.0


class TestGrowableTimeSeriesGraph:
    def test_append_existing_pair_keeps_identity(self):
        from repro.graph.timeseries import GrowableTimeSeriesGraph

        graph = GrowableTimeSeriesGraph()
        assert graph.append("a", "b", 1.0, 2.0) is True
        series = graph.series("a", "b")
        assert graph.append("a", "b", 3.0, 4.0) is False
        assert graph.series("a", "b") is series
        assert len(series) == 2
        assert graph.num_events == 2

    def test_new_pair_splices_adjacency_and_order(self):
        from repro.graph.timeseries import GrowableTimeSeriesGraph

        graph = GrowableTimeSeriesGraph()
        for src, dst, t in [("c", "d", 1.0), ("a", "b", 2.0), ("a", "d", 3.0), ("b", "d", 4.0)]:
            graph.append(src, dst, t, 1.0)
        # all_series order must match a from-scratch construction
        rebuilt = TimeSeriesGraph(
            EdgeSeries(s.src, s.dst, list(s.times), list(s.flows))
            for s in graph.all_series()
        )
        assert [(s.src, s.dst) for s in graph.all_series()] == [
            (s.src, s.dst) for s in rebuilt.all_series()
        ]
        assert [
            (s.src, s.dst) for s in graph.out_series("a")
        ] == [(s.src, s.dst) for s in rebuilt.out_series("a")]
        assert [
            (s.src, s.dst) for s in graph.in_series("d")
        ] == [(s.src, s.dst) for s in rebuilt.in_series("d")]
        assert graph.nodes == rebuilt.nodes
        assert graph.num_series == 4

    def test_growable_equals_from_interactions(self):
        """Growing event-by-event must give the same graph as batch
        construction on the full stream."""
        import random

        from repro.graph.events import Interaction
        from repro.graph.timeseries import GrowableTimeSeriesGraph

        rng = random.Random(5)
        stream = []
        for _ in range(60):
            u, v = rng.sample("abcde", 2)
            stream.append((u, v, float(rng.randrange(0, 30)), float(rng.randint(1, 5))))
        stream.sort(key=lambda e: e[2])
        grown = GrowableTimeSeriesGraph()
        for src, dst, t, f in stream:
            grown.append(src, dst, t, f)
        batch = TimeSeriesGraph.from_interactions(
            Interaction(*e) for e in stream
        )
        assert grown.num_events == batch.num_events
        assert grown.nodes == batch.nodes
        assert grown.all_series() == batch.all_series()

    def test_per_pair_out_of_order_rejected(self):
        from repro.graph.timeseries import GrowableTimeSeriesGraph

        graph = GrowableTimeSeriesGraph()
        graph.append("a", "b", 5.0, 1.0)
        with pytest.raises(ValueError, match="out of order"):
            graph.append("a", "b", 4.0, 1.0)
