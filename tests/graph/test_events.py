"""Interaction record validation."""

from __future__ import annotations

import math

import pytest

from repro.graph.events import Interaction


class TestInteractionValidation:
    def test_valid_interaction_passes(self):
        it = Interaction("a", "b", 1.5, 2.0)
        assert it.validate() is it

    def test_integer_nodes_allowed(self):
        Interaction(1, 2, 0.0, 1.0).validate()

    def test_zero_flow_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Interaction("a", "b", 1.0, 0.0).validate()

    def test_negative_flow_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Interaction("a", "b", 1.0, -3.0).validate()

    def test_nan_flow_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Interaction("a", "b", 1.0, math.nan).validate()

    def test_infinite_time_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Interaction("a", "b", math.inf, 1.0).validate()

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Interaction("a", "b", math.nan, 1.0).validate()

    def test_non_numeric_time_rejected(self):
        with pytest.raises(ValueError, match="number"):
            Interaction("a", "b", "soon", 1.0).validate()

    def test_non_numeric_flow_rejected(self):
        with pytest.raises(ValueError, match="number"):
            Interaction("a", "b", 1.0, "big").validate()

    def test_bool_flow_rejected(self):
        with pytest.raises(ValueError, match="number"):
            Interaction("a", "b", 1.0, True).validate()

    def test_negative_time_allowed(self):
        # The time domain is continuous and unrestricted.
        Interaction("a", "b", -5.0, 1.0).validate()

    def test_error_mentions_endpoints(self):
        with pytest.raises(ValueError, match="a->b"):
            Interaction("a", "b", 1.0, -1.0).validate()
