"""Durable segment tier: byte-flip detection, atomic seal, LSM lifecycle.

The acceptance property tested exhaustively here: flipping **any single
byte** of a sealed segment is detected at open time by a CRC (or length)
check and surfaces as the typed
:class:`~repro.resilience.shm_registry.SegmentCorruptionError` — never a
crash deeper in the stack or a silently wrong search result.
"""

from __future__ import annotations

import gc
import json
import os
import random

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif
from repro.graph.columnar import GrowableColumnStore
from repro.graph.interaction import InteractionGraph
from repro.graph.segments import (
    MANIFEST_NAME,
    FsckReport,
    SegmentColumnStore,
    SegmentCorruptionError,
    SegmentManifest,
    SegmentStore,
    fsck,
    open_segment,
    quarantine_segment,
    verify_segment,
    write_segment,
)
from repro.resilience.shm_registry import QUARANTINE_MARKER, TMP_MARKER


def _random_events(seed: int, num_events: int = 60, nodes: int = 6):
    rng = random.Random(seed)
    events = []
    t = 0.0
    for _ in range(num_events):
        u, v = rng.sample(range(nodes), 2)
        t += rng.random() * 2
        events.append((u, v, t, float(rng.randint(1, 9))))
    return events


def _store_from(events) -> GrowableColumnStore:
    grow = GrowableColumnStore()
    grow.extend(events)
    return grow


def _digest(graph):
    return sorted(
        (s.src, s.dst, list(s.times), list(s.flows))
        for s in graph.all_series()
    )


def _seal(tmp_path, events, name="one.seg"):
    path = str(tmp_path / name)
    write_segment(_store_from(events).snapshot(), path)
    return path


class TestSealOpenRoundTrip:
    def test_graph_round_trips_bit_exact(self, tmp_path):
        events = _random_events(0)
        path = _seal(tmp_path, events)
        store = open_segment(path)
        try:
            assert isinstance(store, SegmentColumnStore)
            assert store.path == path
            assert store.shm_name is None  # a file is not shared memory
            assert _digest(store.to_graph()) == _digest(
                _store_from(events).to_graph()
            )
        finally:
            store.close()

    def test_search_parity_with_list_backed_graph(self, tmp_path):
        events = _random_events(1, num_events=120)
        path = _seal(tmp_path, events)
        motif = Motif.chain(3, delta=6, phi=2)
        reference = FlowMotifEngine(
            InteractionGraph.from_tuples(events)
        ).find_instances(motif)
        store = open_segment(path)
        try:
            mapped = FlowMotifEngine(store.to_graph()).find_instances(motif)
            count = mapped.count
            keys = sorted(i.canonical_key() for i in mapped.instances)
            # instances hold zero-copy runs that pin the mapping: drop
            # them (and any cycles) before close(), same contract as shm
            del mapped
            gc.collect()
        finally:
            store.close()
        assert count == reference.count
        assert keys == sorted(i.canonical_key() for i in reference.instances)

    def test_empty_store_round_trips(self, tmp_path):
        path = str(tmp_path / "empty.seg")
        write_segment(GrowableColumnStore().snapshot(), path)
        assert verify_segment(path)["num_events"] == 0
        store = open_segment(path)
        try:
            assert store.num_series == 0
        finally:
            store.close()

    def test_seal_leaves_no_tmp_file(self, tmp_path):
        _seal(tmp_path, _random_events(2))
        assert [e for e in os.listdir(tmp_path) if TMP_MARKER in e] == []

    def test_seal_to_on_growable_store(self, tmp_path):
        grow = _store_from(_random_events(3))
        path = str(tmp_path / "grown.seg")
        grow.seal_to(path)
        store = open_segment(path)
        try:
            assert _digest(store.to_graph()) == _digest(grow.to_graph())
        finally:
            store.close()

    def test_metadata_contents(self, tmp_path):
        events = _random_events(4)
        path = _seal(tmp_path, events)
        meta = verify_segment(path)
        snapshot = _store_from(events).snapshot()
        assert meta["num_events"] == snapshot.num_events
        assert meta["num_series"] == snapshot.num_series
        assert meta["pid"] == os.getpid()
        assert set(meta["crc"]) == {"offsets", "times", "flows", "cum"}


class TestEveryByteFlipIsDetected:
    def test_flip_any_single_byte_raises_typed_error(self, tmp_path):
        """The headline durability property, exhaustively: every byte."""
        path = _seal(tmp_path, _random_events(5, num_events=8, nodes=4))
        with open(path, "rb") as fh:
            pristine = fh.read()
        assert len(pristine) < 2000  # keep the exhaustive sweep fast
        for index in range(len(pristine)):
            damaged = bytearray(pristine)
            damaged[index] ^= 0x40
            with open(path, "wb") as fh:
                fh.write(damaged)
            with pytest.raises(SegmentCorruptionError):
                verify_segment(path)
        # restore and prove the pristine bytes still verify
        with open(path, "wb") as fh:
            fh.write(pristine)
        verify_segment(path)

    @pytest.mark.parametrize("cut", [0, 7, 23, 24, 31, 40, -8, -1])
    def test_truncation_detected(self, tmp_path, cut):
        path = _seal(tmp_path, _random_events(6))
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[: cut if cut >= 0 else len(data) + cut])
        with pytest.raises(SegmentCorruptionError):
            verify_segment(path)

    def test_appended_garbage_detected(self, tmp_path):
        path = _seal(tmp_path, _random_events(7))
        with open(path, "ab") as fh:
            fh.write(b"\x00" * 8)
        with pytest.raises(SegmentCorruptionError, match="promises"):
            verify_segment(path)

    def test_empty_file_detected(self, tmp_path):
        path = str(tmp_path / "zero.seg")
        with open(path, "wb"):
            pass
        with pytest.raises(SegmentCorruptionError, match="empty"):
            open_segment(path, quarantine=False)

    def test_not_a_segment_detected(self, tmp_path):
        path = str(tmp_path / "noise.seg")
        with open(path, "wb") as fh:
            fh.write(b"definitely not a sealed ColumnStore segment file")
        with pytest.raises(SegmentCorruptionError, match="magic"):
            verify_segment(path)


class TestQuarantine:
    def _damaged(self, tmp_path):
        path = _seal(tmp_path, _random_events(8))
        with open(path, "r+b") as fh:
            fh.seek(-5, os.SEEK_END)
            byte = fh.read(1)
            fh.seek(-5, os.SEEK_END)
            fh.write(bytes([byte[0] ^ 0xFF]))
        return path

    def test_open_quarantines_damage(self, tmp_path):
        path = self._damaged(tmp_path)
        with pytest.raises(SegmentCorruptionError, match="CRC mismatch"):
            open_segment(path)
        assert not os.path.exists(path)
        leftovers = [
            e for e in os.listdir(tmp_path) if QUARANTINE_MARKER in e
        ]
        assert leftovers == [
            f"{os.path.basename(path)}{QUARANTINE_MARKER}{os.getpid()}"
        ]

    def test_quarantine_false_leaves_file_alone(self, tmp_path):
        path = self._damaged(tmp_path)
        with pytest.raises(SegmentCorruptionError):
            open_segment(path, quarantine=False)
        assert os.path.exists(path)

    def test_verify_never_renames(self, tmp_path):
        path = self._damaged(tmp_path)
        with pytest.raises(SegmentCorruptionError):
            verify_segment(path)
        assert os.path.exists(path)

    def test_quarantine_segment_names_the_pid(self, tmp_path):
        path = _seal(tmp_path, _random_events(9))
        target = quarantine_segment(path)
        assert target.endswith(f"{QUARANTINE_MARKER}{os.getpid()}")
        assert os.path.exists(target) and not os.path.exists(path)

    def test_validate_false_skips_column_crc_only(self, tmp_path):
        """validate=False trusts column bytes but still parses structure."""
        path = self._damaged(tmp_path)  # damage is in the cum column
        store = open_segment(path, validate=False)
        try:
            assert store.num_events > 0
        finally:
            store.close()


class TestManifest:
    def test_append_load_round_trip(self, tmp_path):
        manifest = SegmentManifest(str(tmp_path / MANIFEST_NAME))
        manifest.append({"op": "seal", "name": "a.seg", "num_events": 3})
        manifest.append({"op": "seal", "name": "b.seg", "num_events": 5})
        records, torn = manifest.load()
        assert not torn
        assert [r["name"] for r in records] == ["a.seg", "b.seg"]
        assert all("crc" in r for r in records)

    def test_replay_folds_compactions(self, tmp_path):
        manifest = SegmentManifest(str(tmp_path / MANIFEST_NAME))
        manifest.append({"op": "seal", "name": "a.seg"})
        manifest.append({"op": "seal", "name": "b.seg"})
        manifest.append(
            {"op": "compact", "name": "c.seg", "replaces": ["a.seg", "b.seg"]}
        )
        live, superseded, torn = manifest.replay()
        assert live == ["c.seg"]
        assert sorted(superseded) == ["a.seg", "b.seg"]
        assert not torn

    def test_missing_manifest_is_empty(self, tmp_path):
        manifest = SegmentManifest(str(tmp_path / MANIFEST_NAME))
        assert manifest.load() == ([], False)
        assert manifest.replay() == ([], [], False)

    def test_torn_tail_is_dropped_and_truncated(self, tmp_path):
        manifest = SegmentManifest(str(tmp_path / MANIFEST_NAME))
        manifest.append({"op": "seal", "name": "a.seg"})
        with open(manifest.path, "a", encoding="utf-8") as fh:
            fh.write('{"op":"seal","name":"b.se')  # crashed mid-write
        records, torn = manifest.load()
        assert torn and [r["name"] for r in records] == ["a.seg"]
        assert manifest.truncate_torn_tail()
        records, torn = manifest.load()
        assert not torn and [r["name"] for r in records] == ["a.seg"]
        assert not manifest.truncate_torn_tail()  # idempotent

    def test_crc_catches_tampered_record(self, tmp_path):
        manifest = SegmentManifest(str(tmp_path / MANIFEST_NAME))
        manifest.append({"op": "seal", "name": "a.seg", "num_events": 3})
        with open(manifest.path, "r", encoding="utf-8") as fh:
            record = json.loads(fh.read())
        record["num_events"] = 9999  # rewrite history, keep old crc
        with open(manifest.path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(record) + "\n")
            fh.write('{"torn"')  # ensure the bad line is not final
        with pytest.raises(SegmentCorruptionError, match="ledger"):
            manifest.load()

    def test_unknown_op_rejected(self, tmp_path):
        manifest = SegmentManifest(str(tmp_path / MANIFEST_NAME))
        manifest.append({"op": "upsert", "name": "a.seg"})
        with pytest.raises(SegmentCorruptionError, match="unknown record"):
            manifest.replay()


class TestSegmentStore:
    def test_seal_empty_memtable_is_noop(self, tmp_path):
        store = SegmentStore(str(tmp_path / "store"))
        assert store.seal() is None
        assert store.live_segments() == []

    def test_open_missing_store_without_create(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SegmentStore(str(tmp_path / "nope"), create=False)

    def test_lifecycle_parity_with_oracle(self, tmp_path):
        """Seals + compact must reproduce exactly the single-seal graph."""
        events = _random_events(10, num_events=150)
        store = SegmentStore(str(tmp_path / "store"))
        for index, event in enumerate(events):
            store.append(*event)
            if index % 40 == 39:
                store.seal()
        assert store.seal() is not None
        assert len(store.live_segments()) == 4
        oracle = _digest(InteractionGraph.from_tuples(events).to_time_series())
        assert _digest(store.search_graph()) == oracle
        merged = store.compact()
        assert merged is not None
        assert store.live_segments() == [merged]
        assert _digest(store.search_graph()) == oracle
        assert store.num_sealed_events == len(events)
        # steady state: reopen from disk alone, still the same graph
        reopened = SegmentStore(str(tmp_path / "store"), create=False)
        assert _digest(reopened.search_graph()) == oracle

    def test_compact_single_segment_is_noop(self, tmp_path):
        store = SegmentStore(str(tmp_path / "store"))
        store.extend(_random_events(11, num_events=10))
        store.seal()
        assert store.compact() is None

    def test_compact_removes_superseded_files(self, tmp_path):
        store = SegmentStore(str(tmp_path / "store"))
        for chunk in range(3):
            store.extend(_random_events(chunk, num_events=10))
            store.seal()
        merged = store.compact()
        on_disk = [
            e for e in os.listdir(store.root) if e.endswith(".seg")
        ]
        assert on_disk == [merged]

    def test_search_graph_includes_memtable_on_request(self, tmp_path):
        events = _random_events(12, num_events=30)
        store = SegmentStore(str(tmp_path / "store"))
        store.extend(events[:20])
        store.seal()
        store.extend(events[20:])
        sealed_only = _digest(store.search_graph())
        assert sealed_only == _digest(
            InteractionGraph.from_tuples(events[:20]).to_time_series()
        )
        everything = _digest(store.search_graph(include_memtable=True))
        assert everything == _digest(
            InteractionGraph.from_tuples(events).to_time_series()
        )
        assert store.memtable_events == 10  # memtable untouched by reads

    def test_names_never_reused_after_compaction(self, tmp_path):
        store = SegmentStore(str(tmp_path / "store"))
        for chunk in range(2):
            store.extend(_random_events(20 + chunk, num_events=5))
            store.seal()
        merged = store.compact()
        store.extend(_random_events(23, num_events=5))
        sealed = store.seal()
        assert sealed not in {"seg-000000.seg", "seg-000001.seg", merged}


class TestFsck:
    def _populated(self, tmp_path, seals=3) -> SegmentStore:
        store = SegmentStore(str(tmp_path / "store"))
        for chunk in range(seals):
            store.extend(_random_events(30 + chunk, num_events=12))
            store.seal()
        return store

    def test_clean_store(self, tmp_path):
        store = self._populated(tmp_path)
        report = fsck(store.root)
        assert isinstance(report, FsckReport)
        assert report.ok and report.valid == report.checked == 3
        assert "clean" in report.summary()

    def test_corrupt_segment_quarantined(self, tmp_path):
        store = self._populated(tmp_path)
        victim = store.live_segments()[1]
        path = store.segment_path(victim)
        with open(path, "r+b") as fh:
            fh.seek(-3, os.SEEK_END)
            fh.write(b"\xff")
        report = fsck(store.root)
        assert not report.ok
        assert [name for name, _ in report.corrupted] == [victim]
        assert len(report.quarantined) == 1
        assert not os.path.exists(path)
        assert "DAMAGED" in report.summary()
        # second pass: the quarantined segment is now missing, not corrupt
        report = fsck(store.root)
        assert report.missing == [victim] and not report.corrupted

    def test_dry_run_reports_without_touching(self, tmp_path):
        store = self._populated(tmp_path)
        victim = store.live_segments()[0]
        path = store.segment_path(victim)
        with open(path, "r+b") as fh:
            fh.seek(-3, os.SEEK_END)
            fh.write(b"\xff")
        report = fsck(store.root, repair=False)
        assert not report.ok and report.quarantined == []
        assert os.path.exists(path)

    def test_stale_tmp_reaped_live_tmp_kept(self, tmp_path):
        store = self._populated(tmp_path, seals=1)
        dead = str(tmp_path / "store" / f"seg-000009.seg{TMP_MARKER}999999999")
        live = str(
            tmp_path / "store" / f"seg-000008.seg{TMP_MARKER}{os.getpid()}"
        )
        for path in (dead, live):
            with open(path, "wb") as fh:
                fh.write(b"partial")
        report = fsck(store.root)
        assert report.ok
        assert report.tmp_reaped == [os.path.basename(dead)]
        assert not os.path.exists(dead)
        assert os.path.exists(live)  # its writer (us) is still alive

    def test_unmanifested_segment_quarantined(self, tmp_path):
        """A seal that crashed before its manifest fsync never happened."""
        store = self._populated(tmp_path, seals=1)
        stray = store.segment_path("seg-000007.seg")
        write_segment(_store_from(_random_events(40)).snapshot(), stray)
        report = fsck(store.root)
        assert report.ok  # every *manifested* segment is fine
        assert report.unmanifested == ["seg-000007.seg"]
        assert not os.path.exists(stray)
        assert len(report.quarantined) == 1

    def test_superseded_leftover_reaped(self, tmp_path):
        """Compaction crashed after its manifest record, before the reap."""
        store = self._populated(tmp_path, seals=2)
        old = store.live_segments()
        store.compact()
        # resurrect one superseded file, as a crash-before-reap would leave
        write_segment(_store_from(_random_events(41)).snapshot(),
                      store.segment_path(old[0]))
        report = fsck(store.root)
        assert report.ok
        assert report.superseded_reaped == [old[0]]
        assert not os.path.exists(store.segment_path(old[0]))

    def test_torn_manifest_tail_repaired(self, tmp_path):
        store = self._populated(tmp_path, seals=2)
        with open(store.manifest.path, "a", encoding="utf-8") as fh:
            fh.write('{"op":"seal","na')
        report = fsck(store.root)
        assert report.manifest_torn and report.ok
        assert not fsck(store.root).manifest_torn  # tail was truncated

    def test_missing_store_dir(self, tmp_path):
        report = fsck(str(tmp_path / "void"))
        assert report.ok and report.checked == 0
