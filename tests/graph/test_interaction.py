"""The InteractionGraph container."""

from __future__ import annotations

import pytest

from repro.graph.events import Interaction
from repro.graph.interaction import InteractionGraph


class TestConstruction:
    def test_from_tuples(self):
        g = InteractionGraph.from_tuples([("a", "b", 1, 2.0), ("b", "c", 3, 4.0)])
        assert g.num_edges == 2
        assert g.num_nodes == 3
        assert g.num_connected_pairs == 2

    def test_add_validates(self):
        g = InteractionGraph()
        with pytest.raises(ValueError, match="positive"):
            g.add_interaction("a", "b", 1, 0.0)
        assert g.num_edges == 0

    def test_parallel_edges_counted(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 1, 1.0), ("a", "b", 2, 1.0), ("a", "b", 3, 1.0)]
        )
        assert g.num_edges == 3
        assert g.num_connected_pairs == 1

    def test_copy_is_independent(self):
        g = InteractionGraph.from_tuples([("a", "b", 1, 1.0)])
        h = g.copy()
        h.add_interaction("b", "c", 2, 1.0)
        assert g.num_edges == 1 and h.num_edges == 2


class TestDerivedQuantities:
    def test_time_span(self):
        g = InteractionGraph.from_tuples([("a", "b", 5, 1.0), ("b", "c", 2, 1.0)])
        assert g.time_span == (2, 5)

    def test_time_span_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            InteractionGraph().time_span

    def test_total_and_average_flow(self):
        g = InteractionGraph.from_tuples([("a", "b", 1, 2.0), ("a", "b", 2, 4.0)])
        assert g.total_flow == 6.0
        assert g.average_flow == 3.0

    def test_average_flow_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            InteractionGraph().average_flow

    def test_interactions_sorted(self):
        g = InteractionGraph.from_tuples(
            [("b", "c", 5, 1.0), ("a", "b", 1, 1.0), ("a", "c", 3, 1.0)]
        )
        assert [it.time for it in g.interactions_sorted()] == [1, 3, 5]


class TestTimeSeriesConversion:
    def test_conversion_merges_pairs(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 3, 1.0), ("a", "b", 1, 2.0), ("b", "a", 2, 5.0)]
        )
        ts = g.to_time_series()
        assert ts.num_series == 2
        assert list(ts.series("a", "b")) == [(1, 2.0), (3, 1.0)]

    def test_cache_invalidated_on_mutation(self):
        g = InteractionGraph.from_tuples([("a", "b", 1, 1.0)])
        first = g.to_time_series()
        assert g.to_time_series() is first  # cached
        g.add_interaction("b", "c", 2, 1.0)
        second = g.to_time_series()
        assert second is not first
        assert second.num_series == 2
