"""Edge-list I/O: CSV/TSV/JSONL round-trips and malformed input."""

from __future__ import annotations

import io

import pytest

from repro.graph.interaction import InteractionGraph
from repro.graph.io import (
    InteractionFormatError,
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)


@pytest.fixture
def sample_graph():
    return InteractionGraph.from_tuples(
        [("u1", "u2", 13.0, 5.0), ("u1", "u2", 15.0, 7.0), (3, 4, 1.0, 0.5)]
    )


class TestCsvRoundTrip:
    def test_round_trip(self, sample_graph, tmp_path):
        path = tmp_path / "edges.csv"
        write_csv(sample_graph, str(path))
        loaded = read_csv(str(path))
        assert sorted(loaded.interactions_sorted(), key=repr) == sorted(
            sample_graph.interactions_sorted(), key=repr
        )

    def test_integer_nodes_preserved(self, sample_graph, tmp_path):
        path = tmp_path / "edges.csv"
        write_csv(sample_graph, str(path))
        loaded = read_csv(str(path))
        assert (3, 4) in loaded.connected_pairs

    def test_header_skipped(self):
        content = "src,dst,time,flow\na,b,1,2\n"
        assert read_csv(io.StringIO(content)).num_edges == 1

    def test_no_header_works(self):
        content = "a,b,1,2\nb,c,2,3\n"
        assert read_csv(io.StringIO(content)).num_edges == 2

    def test_tsv_sniffed(self):
        content = "a\tb\t1\t2\n"
        g = read_csv(io.StringIO(content))
        assert ("a", "b") in g.connected_pairs

    def test_comments_and_blanks_ignored(self):
        content = "# edge list\n\na,b,1,2\n"
        assert read_csv(io.StringIO(content)).num_edges == 1

    def test_write_no_header(self, sample_graph):
        buffer = io.StringIO()
        write_csv(sample_graph, buffer, header=False)
        first_line = buffer.getvalue().splitlines()[0]
        assert first_line.split(",")[0] != "src"


class TestCsvErrors:
    def test_wrong_field_count_raises_with_line(self):
        content = "a,b,1,2\na,b,1\n"
        with pytest.raises(InteractionFormatError, match="line 2"):
            read_csv(io.StringIO(content))

    def test_bad_number_raises(self):
        with pytest.raises(InteractionFormatError, match="line 1"):
            read_csv(io.StringIO("a,b,not_a_time,2\n"))

    def test_non_positive_flow_raises(self):
        with pytest.raises(InteractionFormatError, match="positive"):
            read_csv(io.StringIO("a,b,1,0\n"))

    def test_skip_mode_drops_bad_rows(self):
        content = "a,b,1,2\nbroken row\nb,c,2,3\n"
        g = read_csv(io.StringIO(content), on_error="skip")
        assert g.num_edges == 2

    def test_invalid_on_error_value(self):
        with pytest.raises(ValueError, match="on_error"):
            read_csv(io.StringIO("a,b,1,2\n"), on_error="ignore")


class TestJsonl:
    def test_round_trip(self, sample_graph, tmp_path):
        path = tmp_path / "edges.jsonl"
        write_jsonl(sample_graph, str(path))
        loaded = read_jsonl(str(path))
        assert sorted(loaded.interactions_sorted(), key=repr) == sorted(
            sample_graph.interactions_sorted(), key=repr
        )

    def test_malformed_json_raises(self):
        with pytest.raises(InteractionFormatError, match="line 1"):
            read_jsonl(io.StringIO("{not json}\n"))

    def test_missing_key_raises(self):
        with pytest.raises(InteractionFormatError):
            read_jsonl(io.StringIO('{"src": "a", "dst": "b", "time": 1}\n'))

    def test_skip_mode(self):
        content = '{"src":"a","dst":"b","time":1,"flow":2}\n{bad}\n'
        assert read_jsonl(io.StringIO(content), on_error="skip").num_edges == 1


class TestGzipTransparency:
    """``.gz`` suffix detection: compressed edge lists round-trip."""

    def test_csv_gz_round_trip(self, sample_graph, tmp_path):
        path = tmp_path / "edges.csv.gz"
        write_csv(sample_graph, str(path))
        loaded = read_csv(str(path))
        assert sorted(loaded.interactions_sorted(), key=repr) == sorted(
            sample_graph.interactions_sorted(), key=repr
        )

    def test_jsonl_gz_round_trip(self, sample_graph, tmp_path):
        path = tmp_path / "edges.jsonl.gz"
        write_jsonl(sample_graph, str(path))
        loaded = read_jsonl(str(path))
        assert sorted(loaded.interactions_sorted(), key=repr) == sorted(
            sample_graph.interactions_sorted(), key=repr
        )

    def test_written_file_is_actually_gzipped(self, sample_graph, tmp_path):
        import gzip

        path = tmp_path / "edges.csv.gz"
        write_csv(sample_graph, str(path))
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"  # gzip magic
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            assert handle.readline().strip() == "src,dst,time,flow"

    def test_gz_accepts_pathlike(self, sample_graph, tmp_path):
        path = tmp_path / "edges.csv.gz"
        write_csv(sample_graph, path)  # pathlib.Path, not str
        assert read_csv(path).num_edges == sample_graph.num_edges

    def test_gz_errors_carry_line_numbers(self, tmp_path):
        import gzip

        path = tmp_path / "bad.csv.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("a,b,1,2\na,b,not_a_time,2\n")
        with pytest.raises(InteractionFormatError) as excinfo:
            read_csv(str(path))
        assert excinfo.value.line_number == 2
        assert read_csv(str(path), on_error="skip").num_edges == 1
