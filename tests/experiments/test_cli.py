"""Command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.datasets.fixtures import figure2_graph
from repro.graph.io import write_csv


class TestExperimentCommands:
    def test_table3(self, capsys):
        code = main(["table3", "--scale", "0.15", "--datasets", "Facebook"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Facebook" in out

    def test_result_saved(self, tmp_path, capsys):
        code = main(
            [
                "table3", "--scale", "0.15", "--datasets", "Facebook",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        saved = json.loads((tmp_path / "table3.json").read_text())
        assert saved["name"] == "table3"

    def test_motif_filter(self, capsys):
        code = main(
            [
                "table4", "--scale", "0.15", "--datasets", "Facebook",
                "--motifs", "M(3,2)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "M(3,2)" in out
        assert "M(5,4)" not in out

    def test_markdown_flag(self, capsys):
        main(["table3", "--scale", "0.15", "--datasets", "Facebook", "--markdown"])
        out = capsys.readouterr().out
        assert "|" in out


class TestFindCommand:
    @pytest.fixture
    def edges_file(self, tmp_path):
        path = tmp_path / "edges.csv"
        write_csv(figure2_graph(), str(path))
        return str(path)

    def test_find_catalog_motif(self, edges_file, capsys):
        code = main(
            ["find", edges_file, "--motif", "M(3,3)", "--delta", "10",
             "--phi", "7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 instances" in out
        record = json.loads(out.splitlines()[-1])
        assert record["flow"] == 10.0

    def test_find_custom_path(self, edges_file, capsys):
        code = main(
            ["find", edges_file, "--motif", "0-1-2-0", "--delta", "10",
             "--phi", "7"]
        )
        assert code == 0
        assert "1 instances" in capsys.readouterr().out

    def test_find_top_k(self, edges_file, capsys):
        code = main(
            ["find", edges_file, "--motif", "M(3,3)", "--delta", "10",
             "--top", "2"]
        )
        assert code == 0
        assert "top" in capsys.readouterr().out

    def test_bad_motif_spec(self, edges_file, capsys):
        code = main(
            ["find", edges_file, "--motif", "garbage", "--delta", "10"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err
