"""Command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.datasets.fixtures import figure2_graph
from repro.graph.io import write_csv


class TestExperimentCommands:
    def test_table3(self, capsys):
        code = main(["table3", "--scale", "0.15", "--datasets", "Facebook"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Facebook" in out

    def test_result_saved(self, tmp_path, capsys):
        code = main(
            [
                "table3", "--scale", "0.15", "--datasets", "Facebook",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        saved = json.loads((tmp_path / "table3.json").read_text())
        assert saved["name"] == "table3"

    def test_motif_filter(self, capsys):
        code = main(
            [
                "table4", "--scale", "0.15", "--datasets", "Facebook",
                "--motifs", "M(3,2)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "M(3,2)" in out
        assert "M(5,4)" not in out

    def test_markdown_flag(self, capsys):
        main(["table3", "--scale", "0.15", "--datasets", "Facebook", "--markdown"])
        out = capsys.readouterr().out
        assert "|" in out


class TestFindCommand:
    @pytest.fixture
    def edges_file(self, tmp_path):
        path = tmp_path / "edges.csv"
        write_csv(figure2_graph(), str(path))
        return str(path)

    def test_find_catalog_motif(self, edges_file, capsys):
        code = main(
            ["find", edges_file, "--motif", "M(3,3)", "--delta", "10",
             "--phi", "7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 instances" in out
        record = json.loads(out.splitlines()[-1])
        assert record["flow"] == 10.0

    def test_find_custom_path(self, edges_file, capsys):
        code = main(
            ["find", edges_file, "--motif", "0-1-2-0", "--delta", "10",
             "--phi", "7"]
        )
        assert code == 0
        assert "1 instances" in capsys.readouterr().out

    def test_find_top_k(self, edges_file, capsys):
        code = main(
            ["find", edges_file, "--motif", "M(3,3)", "--delta", "10",
             "--top", "2"]
        )
        assert code == 0
        assert "top" in capsys.readouterr().out

    def test_bad_motif_spec(self, edges_file, capsys):
        code = main(
            ["find", edges_file, "--motif", "garbage", "--delta", "10"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestStreamCommand:
    @pytest.fixture
    def edges_file(self, tmp_path):
        path = tmp_path / "edges.csv"
        write_csv(figure2_graph(), str(path))
        return str(path)

    def test_stream_equals_find(self, edges_file, capsys):
        code = main(
            ["stream", edges_file, "--motif", "M(3,3)", "--delta", "10",
             "--phi", "7"]
        )
        assert code == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines()]
        assert len(records) == 1
        assert records[0]["flow"] == 10.0
        assert "0 rebuilds" in captured.err

    def test_stream_batched_polling(self, edges_file, capsys):
        code = main(
            ["stream", edges_file, "--motif", "M(3,3)", "--delta", "10",
             "--phi", "7", "--batch", "5", "--mode", "rebuild"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert len(captured.out.splitlines()) == 1

    def test_stream_follow_drains_appended_rows(self, tmp_path, capsys):
        """--follow keeps reading rows appended after startup; --max-idle
        bounds the wait so the test terminates."""
        path = tmp_path / "live.csv"
        path.write_text("src,dst,time,flow\na,b,1,5\n")
        import threading

        def late_writer():
            import time

            time.sleep(0.2)
            with open(path, "a") as fh:
                fh.write("b,c,3,4\nz,w,50,1\n")

        writer = threading.Thread(target=late_writer)
        writer.start()
        code = main(
            ["stream", str(path), "--follow", "--interval", "0.05",
             "--max-idle", "0.6", "--motif", "0-1-2", "--delta", "10"]
        )
        writer.join()
        assert code == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines()]
        assert len(records) == 1  # a->b->c completed by the late rows
        assert records[0]["flow"] == 4.0

    def test_stream_out_of_order_dropped_by_default(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,5,1\na,b,4,1\nz,w,50,1\n")
        code = main(["stream", str(path), "--motif", "0-1", "--delta", "2"])
        assert code == 0
        captured = capsys.readouterr()
        assert "2 events" in captured.err  # the t=4 row was dropped
        assert "1 late events dropped" in captured.err

    def test_stream_out_of_order_raises_under_strict(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,5,1\na,b,4,1\n")
        code = main(
            ["stream", str(path), "--motif", "0-1", "--delta", "2", "--strict"]
        )
        assert code == 2
        assert "out-of-order" in capsys.readouterr().err

    def test_stream_on_error_skip_is_deprecated_alias(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,5,1\na,b,4,1\nz,w,50,1\n")
        code = main(
            ["stream", str(path), "--motif", "0-1", "--delta", "2",
             "--on-error", "skip"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "2 events" in captured.err  # the t=4 row was dropped
        assert "deprecated" in captured.err

    def test_stream_follow_rejects_stdin(self, capsys):
        code = main(["stream", "-", "--follow", "--motif", "0-1", "--delta", "2"])
        assert code == 2
        assert "follow" in capsys.readouterr().err

    def test_stream_malformed_row_quarantined_by_default(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,1,notaflow\na,b,2,1\nb,c,3,1\n")
        code = main(["stream", str(path), "--motif", "0-1", "--delta", "2"])
        assert code == 0
        captured = capsys.readouterr()
        assert "quarantined line 1" in captured.err
        assert "1 malformed lines quarantined" in captured.err
        assert len(captured.out.splitlines()) == 2  # both clean edges matched

    def test_stream_malformed_row_aborts_under_strict(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,1,notaflow\n")
        code = main(
            ["stream", str(path), "--motif", "0-1", "--delta", "2", "--strict"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestStreamResilience:
    """Error paths and durability features of the stream command."""

    def test_stream_truncated_gzip_reports_stream_failure(
        self, tmp_path, capsys
    ):
        import gzip

        path = tmp_path / "edges.csv.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("a,b,1,5\nb,c,2,5\n" * 200)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # cut the gzip stream
        code = main(["stream", str(path), "--motif", "0-1", "--delta", "2"])
        assert code == 1
        assert "input stream failed" in capsys.readouterr().err

    def test_stream_follow_survives_disappearing_file(self, tmp_path, capsys):
        """tail -F semantics: deletion followed by recreation must not
        kill the stream — rows from the new file generation are read."""
        import os
        import threading
        import time

        path = tmp_path / "live.csv"
        path.write_text("a,b,1,5\n")

        def rotate():
            time.sleep(0.3)
            os.remove(path)
            time.sleep(0.3)
            path.write_text("b,c,3,4\nz,w,50,1\n")

        rotator = threading.Thread(target=rotate)
        rotator.start()
        code = main(
            ["stream", str(path), "--follow", "--interval", "0.05",
             "--max-idle", "1.0", "--motif", "0-1-2", "--delta", "10"]
        )
        rotator.join()
        assert code == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines()]
        assert len(records) == 1  # a->b->c completed across the rotation
        assert records[0]["flow"] == 4.0

    def test_stream_slack_recovers_late_event(self, tmp_path, capsys):
        path = tmp_path / "ooo.csv"
        path.write_text("a,b,1,5\nb,c,4,5\na,b,3,5\nb,c,6,5\n")
        code = main(
            ["stream", str(path), "--motif", "0-1-2", "--delta", "10",
             "--slack", "2"]
        )
        assert code == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines()]
        assert len(records) == 1
        assert records[0]["flow"] == 10.0  # the t=3 event was re-sequenced
        assert "late events dropped" not in captured.err

    def test_stream_checkpoint_resume_equals_uninterrupted(
        self, tmp_path, capsys
    ):
        whole = "a,b,1,5\nb,c,2,5\na,b,3,5\nb,c,4,5\na,b,5,5\nb,c,6,5\n"
        (tmp_path / "whole.csv").write_text(whole)
        (tmp_path / "part1.csv").write_text(whole[: len(whole) // 2])
        (tmp_path / "part2.csv").write_text(whole[len(whole) // 2 :])
        ck = tmp_path / "state.json"

        assert main(
            ["stream", str(tmp_path / "whole.csv"), "--motif", "0-1-2",
             "--delta", "10"]
        ) == 0
        expected = sorted(capsys.readouterr().out.splitlines())

        assert main(
            ["stream", str(tmp_path / "part1.csv"), "--motif", "0-1-2",
             "--delta", "10", "--checkpoint", str(ck)]
        ) == 0
        captured = capsys.readouterr()
        assert ck.exists()
        assert "checkpoint" in captured.err
        out = captured.out.splitlines()

        assert main(
            ["stream", str(tmp_path / "part2.csv"), "--motif", "0-1-2",
             "--delta", "10", "--resume", str(ck)]
        ) == 0
        out += capsys.readouterr().out.splitlines()
        assert sorted(out) == expected

    def test_stream_resume_rejects_garbage_checkpoint(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"not\": \"a checkpoint\"}")
        (tmp_path / "in.csv").write_text("a,b,1,5\n")
        code = main(
            ["stream", str(tmp_path / "in.csv"), "--motif", "0-1",
             "--delta", "2", "--resume", str(bad)]
        )
        assert code == 2
        assert "checkpoint" in capsys.readouterr().err

    def test_stream_resume_rejects_missing_checkpoint(self, tmp_path, capsys):
        (tmp_path / "in.csv").write_text("a,b,1,5\n")
        code = main(
            ["stream", str(tmp_path / "in.csv"), "--motif", "0-1",
             "--delta", "2", "--resume", str(tmp_path / "nope.json")]
        )
        assert code == 2
