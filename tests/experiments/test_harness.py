"""Experiment harness: every runner produces well-formed, renderable
results at a tiny scale, with the paper's qualitative shape."""

from __future__ import annotations

import json

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.common import (
    DELTA_GRIDS,
    PHI_GRIDS,
    PREFIX_SAMPLES,
    build_datasets,
)
from repro.experiments.report import render, save_result

SMALL = dict(scale=0.15, seed=1)
FEW_MOTIFS = ["M(3,2)", "M(3,3)"]


class TestCommon:
    def test_build_datasets_all(self):
        bundles = build_datasets(**SMALL)
        assert [b.name for b in bundles] == ["Bitcoin", "Facebook", "Passenger"]
        for bundle in bundles:
            assert bundle.graph.num_edges > 0

    def test_build_datasets_selection(self):
        [bundle] = build_datasets(names=["Facebook"], **SMALL)
        assert bundle.name == "Facebook"
        assert bundle.delta == 600 and bundle.phi == 3

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            build_datasets(names=["Twitter"], **SMALL)

    def test_unknown_motif_rejected(self):
        [bundle] = build_datasets(names=["Bitcoin"], **SMALL)
        with pytest.raises(ValueError, match="unknown motifs"):
            bundle.motifs(["M(9,9)"])

    def test_grids_cover_all_datasets(self):
        for grids in (DELTA_GRIDS, PHI_GRIDS, PREFIX_SAMPLES):
            assert set(grids) == {"Bitcoin", "Facebook", "Passenger"}


class TestRunners:
    @pytest.mark.parametrize("name", ["table3", "table4", "fig8", "fig12"])
    def test_table_experiments_render(self, name):
        kwargs = dict(SMALL)
        kwargs["datasets"] = ["Facebook"]
        if name != "table3":
            kwargs["motifs"] = FEW_MOTIFS
        result = EXPERIMENTS[name](**kwargs)
        assert result["name"] == name
        assert result["tables"]
        text = render(result)
        assert name in text or result["title"] in text
        json.dumps(result)  # must be JSON-able

    @pytest.mark.parametrize("name", ["fig9", "fig10", "fig11", "fig13"])
    def test_series_experiments_render(self, name):
        result = EXPERIMENTS[name](
            datasets=["Facebook"], motifs=FEW_MOTIFS, **SMALL
        )
        assert result["series"]
        for series in result["series"]:
            for line in series["lines"].values():
                assert len(line) == len(series["x"])
        render(result, markdown=True)
        json.dumps(result)

    def test_fig14_small(self):
        result = EXPERIMENTS["fig14"](
            datasets=["Facebook"], motifs=["M(3,2)"], num_random=3, **SMALL
        )
        [table] = result["tables"]
        [row] = table["rows"]
        assert row[0] == "M(3,2)"
        json.dumps(result)


class TestQualitativeShape:
    """The paper's headline shapes at small scale."""

    def test_fig9_counts_grow_with_delta(self):
        result = EXPERIMENTS["fig9"](
            datasets=["Passenger"], motifs=["M(3,2)"], scale=0.3, seed=0
        )
        counts = result["series"][0]["lines"]["M(3,2)"]
        assert counts[-1] >= counts[0]

    def test_fig10_counts_drop_with_phi(self):
        result = EXPERIMENTS["fig10"](
            datasets=["Passenger"], motifs=["M(3,2)"], scale=0.3, seed=0
        )
        counts = result["series"][0]["lines"]["M(3,2)"]
        assert counts[0] >= counts[-1]

    def test_fig11_kth_flow_decreases(self):
        result = EXPERIMENTS["fig11"](
            datasets=["Passenger"], motifs=["M(3,2)"], scale=0.3, seed=0
        )
        flows = result["series"][0]["lines"]["M(3,2)"]
        assert flows == sorted(flows, reverse=True)


class TestPersistence:
    def test_save_result(self, tmp_path):
        result = EXPERIMENTS["table3"](datasets=["Facebook"], **SMALL)
        path = save_result(result, str(tmp_path))
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded["name"] == "table3"
