"""The documented public API surface."""

from __future__ import annotations

import doctest

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.baselines
        import repro.core
        import repro.datasets
        import repro.experiments
        import repro.graph
        import repro.parallel
        import repro.significance

        for module in (
            repro.analysis, repro.baselines, repro.core, repro.datasets,
            repro.experiments, repro.graph, repro.parallel,
            repro.significance,
        ):
            assert module.__doc__


class TestDocstrings:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.core.motif",
            "repro.core.engine",
            "repro.core.dag",
            "repro.utils.timing",
            "repro.parallel",
            "repro.parallel.engine",
            "repro.parallel.batch",
        ],
    )
    def test_doctests_pass(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        result = doctest.testmod(module, verbose=False)
        assert result.failed == 0

    def test_public_items_documented(self):
        """Every public class/function in core modules carries a docstring."""
        import inspect

        import repro.core.dp as dp
        import repro.core.enumeration as enumeration
        import repro.core.instance as instance
        import repro.core.matching as matching
        import repro.core.topk as topk
        import repro.core.windows as windows

        for module in (dp, enumeration, instance, matching, topk, windows):
            for name, item in vars(module).items():
                if name.startswith("_"):
                    continue
                if inspect.isclass(item) or inspect.isfunction(item):
                    if getattr(item, "__module__", None) != module.__name__:
                        continue  # re-export
                    assert item.__doc__, f"{module.__name__}.{name} undocumented"
