"""Flow-permutation null model invariants."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.matching import find_structural_matches
from repro.core.motif import Motif
from repro.datasets.synthetic import planted_cascade_graph
from repro.significance.randomization import permutation_ensemble, permute_flows


@pytest.fixture
def graph():
    g, _ = planted_cascade_graph((0, 1, 2, 0), seed=6, noise_edges=40)
    return g


class TestPermutationInvariants:
    def test_structure_preserved(self, graph):
        permuted = permute_flows(graph, 1)
        assert permuted.connected_pairs == graph.connected_pairs
        assert permuted.num_edges == graph.num_edges

    def test_timestamps_preserved(self, graph):
        permuted = permute_flows(graph, 1)
        original = sorted((it.src, it.dst, it.time) for it in graph.interactions())
        shuffled = sorted((it.src, it.dst, it.time) for it in permuted.interactions())
        assert original == shuffled

    def test_flow_multiset_preserved(self, graph):
        permuted = permute_flows(graph, 1)
        assert Counter(it.flow for it in graph.interactions()) == Counter(
            it.flow for it in permuted.interactions()
        )

    def test_seeded_determinism(self, graph):
        a = permute_flows(graph, 42)
        b = permute_flows(graph, 42)
        assert a.interactions_sorted() == b.interactions_sorted()

    def test_different_seeds_differ(self, graph):
        a = permute_flows(graph, 1)
        b = permute_flows(graph, 2)
        assert a.interactions_sorted() != b.interactions_sorted()

    def test_insertion_order_irrelevant(self, graph):
        reversed_graph = type(graph)(list(graph.interactions())[::-1])
        a = permute_flows(graph, 7)
        b = permute_flows(reversed_graph, 7)
        assert a.interactions_sorted() == b.interactions_sorted()


class TestStructuralConsequences:
    def test_same_structural_matches(self, graph):
        motif = Motif.cycle(3, delta=100, phi=0)
        original = find_structural_matches(graph.to_time_series(), motif)
        permuted = find_structural_matches(
            permute_flows(graph, 3).to_time_series(), motif
        )
        assert {m.vertex_map for m in original} == {
            m.vertex_map for m in permuted
        }

    def test_phi_zero_counts_equal(self, graph):
        """With φ=0, instance sets of G and G_r coincide (only flows moved)."""
        motif = Motif.cycle(3, delta=100, phi=0)
        real = FlowMotifEngine(graph).count_instances(motif).count
        rand = (
            FlowMotifEngine(permute_flows(graph, 3))
            .count_instances(motif)
            .count
        )
        assert real == rand


class TestEnsemble:
    def test_count_and_determinism(self, graph):
        first = [g for g in permutation_ensemble(graph, count=3, seed=9)]
        second = [g for g in permutation_ensemble(graph, count=3, seed=9)]
        assert len(first) == 3
        for a, b in zip(first, second):
            assert a.interactions_sorted() == b.interactions_sorted()

    def test_members_differ(self, graph):
        members = list(permutation_ensemble(graph, count=3, seed=9))
        assert (
            members[0].interactions_sorted() != members[1].interactions_sorted()
        )

    def test_invalid_count(self, graph):
        with pytest.raises(ValueError):
            list(permutation_ensemble(graph, count=0))
