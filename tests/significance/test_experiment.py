"""The Figure 14 significance routine (on a small planted graph)."""

from __future__ import annotations

import pytest

from repro.core.motif import Motif
from repro.datasets.synthetic import planted_cascade_graph
from repro.graph.interaction import InteractionGraph
from repro.significance.experiment import motif_significance


@pytest.fixture
def cascade_heavy_graph():
    """Several strong cascades over light noise: motif counts should
    collapse under flow permutation."""
    graph = InteractionGraph()
    for seed, path in [(1, (0, 1, 2)), (2, (3, 4, 5)), (3, (6, 7, 8)), (4, (1, 4, 7))]:
        g, _ = planted_cascade_graph(
            path, seed=seed, noise_edges=25, num_nodes=9, amount=60.0
        )
        for it in g.interactions():
            graph.add(it)
    return graph


class TestMotifSignificance:
    def test_real_exceeds_random(self, cascade_heavy_graph):
        motifs = {"M(3,2)": Motif.chain(3, delta=100, phi=25)}
        [record] = motif_significance(
            cascade_heavy_graph, motifs, num_random=10, seed=0
        )
        assert record.real_count > 0
        assert record.summary.mean < record.real_count
        assert record.summary.z > 0
        assert len(record.random_counts) == 10

    def test_deterministic(self, cascade_heavy_graph):
        motifs = {"M(3,2)": Motif.chain(3, delta=100, phi=25)}
        a = motif_significance(cascade_heavy_graph, motifs, num_random=5, seed=3)
        b = motif_significance(cascade_heavy_graph, motifs, num_random=5, seed=3)
        assert a[0].random_counts == b[0].random_counts

    def test_multiple_motifs_share_ensemble(self, cascade_heavy_graph):
        motifs = {
            "M(3,2)": Motif.chain(3, delta=100, phi=25),
            "M(4,3)": Motif.chain(4, delta=100, phi=25),
        }
        records = motif_significance(
            cascade_heavy_graph, motifs, num_random=4, seed=1
        )
        assert [r.motif_name for r in records] == ["M(3,2)", "M(4,3)"]

    def test_phi_zero_gives_no_signal(self, cascade_heavy_graph):
        """With φ=0 permutation cannot change counts: z must be 0."""
        motifs = {"M(3,2)": Motif.chain(3, delta=100, phi=0)}
        [record] = motif_significance(
            cascade_heavy_graph, motifs, num_random=4, seed=0
        )
        assert record.summary.z == 0.0
        assert record.summary.p_value == 1.0
