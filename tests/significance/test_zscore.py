"""z-scores, p-values and box-plot summaries."""

from __future__ import annotations

import math

import pytest

from repro.significance.zscore import (
    empirical_p_value,
    summarize_significance,
    z_score,
)


class TestZScore:
    def test_basic(self):
        # mean 2, population std sqrt(2/3)
        samples = [1, 2, 3]
        assert z_score(4, samples) == pytest.approx(
            (4 - 2) / math.sqrt(2 / 3)
        )

    def test_zero_sigma_equal(self):
        assert z_score(5, [5, 5, 5]) == 0.0

    def test_zero_sigma_above(self):
        assert z_score(9, [5, 5, 5]) == math.inf

    def test_zero_sigma_below(self):
        assert z_score(1, [5, 5, 5]) == -math.inf

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            z_score(1, [])


class TestPValue:
    def test_none_reach_real(self):
        assert empirical_p_value(10, [1, 2, 3]) == 0.0

    def test_some_reach_real(self):
        assert empirical_p_value(2, [1, 2, 3]) == pytest.approx(2 / 3)

    def test_all_reach_real(self):
        assert empirical_p_value(0, [1, 2, 3]) == 1.0


class TestSummary:
    def test_summary_fields(self):
        s = summarize_significance(100, [10, 20, 30, 40])
        assert s.real == 100
        assert s.mean == 25
        assert s.minimum == 10 and s.maximum == 40
        assert s.q1 == pytest.approx(17.5)
        assert s.median == pytest.approx(25)
        assert s.q3 == pytest.approx(32.5)
        assert s.p_value == 0.0
        assert s.z > 0

    def test_single_sample(self):
        s = summarize_significance(5, [3])
        assert s.median == 3
        assert s.z == math.inf
