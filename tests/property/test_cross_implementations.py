"""Cross-implementation properties on larger random graphs.

No oracle here — instead the independent implementations must agree with
each other, and structural invariants must hold on every output:

* join baseline ≡ two-phase enumeration;
* shared-prefix evaluation ≡ two-phase enumeration;
* memoized counting ≡ ``len`` of enumeration;
* DP top-1 flow ≡ max flow over enumeration;
* top-k flows ≡ sorted prefix of enumeration flows;
* every emitted instance is valid (Def. 3.2) and maximal (Def. 3.3).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.baselines.join import join_find_instances
from repro.core.counting import count_instances
from repro.core.dp import top_one_instance
from repro.core.enumeration import find_instances
from repro.core.instance import is_maximal, is_valid_instance
from repro.core.matching import find_structural_matches
from repro.core.motif import Motif
from repro.core.prefix_sharing import find_instances_shared
from repro.core.topk import top_k_instances
from repro.graph.interaction import InteractionGraph

times = st.integers(min_value=0, max_value=60).map(float)
flows = st.integers(min_value=1, max_value=8).map(float)


@st.composite
def graphs(draw):
    num_nodes = draw(st.integers(4, 7))
    events = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_nodes - 1),
                st.integers(0, num_nodes - 1),
                times,
                flows,
            ).filter(lambda e: e[0] != e[1]),
            min_size=5,
            max_size=40,
        )
    )
    return InteractionGraph.from_tuples(events)


MOTIFS = [
    Motif((0, 1, 2), delta=8.0, phi=0.0),
    Motif((0, 1, 2), delta=15.0, phi=3.0),
    Motif((0, 1, 2, 0), delta=12.0, phi=0.0),
    Motif((0, 1, 2, 3), delta=20.0, phi=2.0),
    Motif((0, 1, 2, 0, 3), delta=25.0, phi=0.0),
]


def instance_keys(instances):
    return {
        (i.vertex_map, tuple(tuple(sorted(r.items())) for r in i.runs))
        for i in instances
    }


@settings(max_examples=50, deadline=None)
@given(graph=graphs(), motif=st.sampled_from(MOTIFS))
def test_all_outputs_valid_and_maximal(graph, motif):
    ts = graph.to_time_series()
    matches = find_structural_matches(ts, motif)
    for instance in find_instances(matches):
        ok, reason = is_valid_instance(instance, ts)
        assert ok, reason
        assert is_maximal(instance)


@settings(max_examples=50, deadline=None)
@given(graph=graphs(), motif=st.sampled_from(MOTIFS))
def test_no_duplicate_instances(graph, motif):
    matches = find_structural_matches(graph.to_time_series(), motif)
    instances = find_instances(matches)
    assert len(instances) == len(instance_keys(instances))


@settings(max_examples=40, deadline=None)
@given(graph=graphs(), motif=st.sampled_from(MOTIFS))
def test_join_equals_two_phase(graph, motif):
    ts = graph.to_time_series()
    matches = find_structural_matches(ts, motif)
    assert instance_keys(join_find_instances(ts, motif)) == instance_keys(
        find_instances(matches)
    )


@settings(max_examples=40, deadline=None)
@given(graph=graphs(), motif=st.sampled_from(MOTIFS))
def test_shared_prefix_equals_two_phase(graph, motif):
    matches = find_structural_matches(graph.to_time_series(), motif)
    assert instance_keys(find_instances_shared(matches)) == instance_keys(
        find_instances(matches)
    )


@settings(max_examples=50, deadline=None)
@given(graph=graphs(), motif=st.sampled_from(MOTIFS))
def test_count_equals_enumeration_length(graph, motif):
    matches = find_structural_matches(graph.to_time_series(), motif)
    assert count_instances(matches) == len(find_instances(matches))


@settings(max_examples=40, deadline=None)
@given(graph=graphs(), motif=st.sampled_from(MOTIFS))
def test_dp_equals_enumeration_max(graph, motif):
    matches = find_structural_matches(graph.to_time_series(), motif)
    best_enum = max(
        (i.flow for i in find_instances(matches, phi=0.0)), default=0.0
    )
    assert top_one_instance(matches, reconstruct=False).flow == best_enum


@settings(max_examples=40, deadline=None)
@given(graph=graphs(), motif=st.sampled_from(MOTIFS))
def test_fused_pipeline_equals_two_phase(graph, motif):
    from repro.core.engine import FlowMotifEngine

    engine = FlowMotifEngine(graph)
    cached = engine.find_instances(motif, use_cache=True)
    fused = engine.find_instances(motif, use_cache=False)
    assert instance_keys(cached.instances) == instance_keys(fused.instances)


@settings(max_examples=40, deadline=None)
@given(
    graph=graphs(),
    motif=st.sampled_from(MOTIFS),
    k=st.sampled_from([1, 2, 5]),
)
def test_topk_equals_sorted_enumeration(graph, motif, k):
    matches = find_structural_matches(graph.to_time_series(), motif)
    all_flows = sorted(
        (i.flow for i in find_instances(matches, phi=0.0)), reverse=True
    )
    top_flows = [i.flow for i in top_k_instances(matches, k)]
    assert top_flows == all_flows[:k]
