"""Property-based equivalence with the brute-force oracle.

On random tiny graphs, the two-phase algorithm's output must equal the set
of maximal instances computed directly from Definitions 3.2/3.3 by the
exponential oracle of :mod:`repro.baselines.bruteforce` — for chains,
cycles, varying δ/φ, and tied timestamps.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.baselines.bruteforce import brute_force_instances
from repro.core.enumeration import find_instances
from repro.core.matching import find_structural_matches
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph

# Timestamps on a coarse grid so tied timestamps actually occur.
times = st.integers(min_value=0, max_value=24).map(lambda v: v / 2.0)
flows = st.sampled_from([0.5, 1.0, 2.0, 5.0])


@st.composite
def tiny_graphs(draw, max_events=11, num_nodes=4):
    events = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_nodes - 1),
                st.integers(0, num_nodes - 1),
                times,
                flows,
            ).filter(lambda e: e[0] != e[1]),
            min_size=2,
            max_size=max_events,
        )
    )
    return InteractionGraph.from_tuples(events)


MOTIF_SHAPES = [
    (0, 1),           # single edge
    (0, 1, 2),        # chain of 3
    (0, 1, 0),        # 2-cycle
    (0, 1, 2, 0),     # triangle
    (0, 1, 2, 3),     # chain of 4
]

motif_strategy = st.builds(
    Motif,
    st.sampled_from(MOTIF_SHAPES),
    delta=st.sampled_from([2.0, 5.0, 10.0]),
    phi=st.sampled_from([0.0, 1.0, 3.0]),
)


def fast_keys(graph, motif):
    ts = graph.to_time_series()
    matches = find_structural_matches(ts, motif)
    instances = find_instances(matches)
    return {
        (i.vertex_map, tuple(tuple(sorted(r.items())) for r in i.runs))
        for i in instances
    }


@settings(max_examples=120, deadline=None)
@given(graph=tiny_graphs(), motif=motif_strategy)
def test_two_phase_equals_brute_force(graph, motif):
    expected = brute_force_instances(graph.to_time_series(), motif)
    actual = fast_keys(graph, motif)
    assert actual == expected


@settings(max_examples=60, deadline=None)
@given(graph=tiny_graphs(max_events=9, num_nodes=3), motif=motif_strategy)
def test_two_phase_equals_brute_force_dense_pairs(graph, motif):
    """Fewer nodes → longer per-pair series → multi-element edge-sets."""
    expected = brute_force_instances(graph.to_time_series(), motif)
    actual = fast_keys(graph, motif)
    assert actual == expected
