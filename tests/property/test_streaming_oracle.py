"""Differential oracle: streaming emissions ≡ offline search, as multisets.

The tentpole contract of the incremental streaming matcher: for random
graphs and *random interleavings* of ``add``/``poll``/``flush``, the union
of everything the detector ever emits equals — as a multiset of canonical
instances — the offline :func:`find_instances` on the full stream, for
every tested motif topology, and without a single rebuild.

Seeds come from the shared ``base_seed`` fixture (tests/conftest.py), so
a failure report prints the exact seed to reproduce.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core.enumeration import find_instances
from repro.core.matching import find_structural_matches
from repro.core.motif import Motif
from repro.core.streaming import StreamingDetector
from repro.graph.interaction import InteractionGraph

#: The tested motif topologies of the ISSUE: chain-2, chain-3, triangle.
TOPOLOGIES = {
    "chain-2": lambda: Motif.chain(2, delta=6.0, phi=2.0),
    "chain-3": lambda: Motif.chain(3, delta=9.0, phi=1.0),
    "triangle": lambda: Motif.cycle(3, delta=12.0, phi=0.0),
}


def _random_stream(rng, nodes=6, events=70, horizon=40):
    """Time-ordered stream on an integer grid (ties are the point)."""
    stream = []
    for _ in range(events):
        src, dst = rng.sample(range(nodes), 2)
        stream.append(
            (src, dst, float(rng.randrange(0, horizon)), float(rng.randint(1, 8)))
        )
    stream.sort(key=lambda e: e[2])
    return stream


def _offline_multiset(stream, motif):
    graph = InteractionGraph.from_tuples(stream).to_time_series()
    matches = find_structural_matches(graph, motif)
    return Counter(i.canonical_key() for i in find_instances(matches))


def _streamed_multiset(stream, motif, rng, mode):
    """Replay with a random interleaving of polls; flush ends the run.

    Each emission batch is checked for internal duplicates too, so a
    multiset match here really means "each instance exactly once".
    """
    detector = StreamingDetector(motif, mode=mode)
    emitted = Counter()
    for src, dst, t, f in stream:
        detector.add(src, dst, t, f)
        # 0, 1 or several polls between adds, chosen at random.
        while rng.random() < 0.35:
            emitted.update(i.canonical_key() for i in detector.poll())
    if rng.random() < 0.5:
        emitted.update(i.canonical_key() for i in detector.poll())
    emitted.update(i.canonical_key() for i in detector.flush())
    if mode == "incremental":
        assert detector.rebuild_count == 0
    return emitted


@pytest.mark.parametrize("case", range(4))
@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
def test_streaming_equals_offline_multiset(topology, case, base_seed):
    rng = random.Random(base_seed + case)
    stream = _random_stream(rng)
    motif = TOPOLOGIES[topology]()
    offline = _offline_multiset(stream, motif)
    streamed = _streamed_multiset(stream, motif, rng, "incremental")
    assert streamed == offline
    assert max(streamed.values(), default=1) == 1  # exactly once


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
def test_rebuild_baseline_agrees_with_incremental(topology, base_seed):
    """Both modes share the window sweep; their emissions must coincide
    under *different* random interleavings of the same stream."""
    rng = random.Random(base_seed)
    stream = _random_stream(rng, nodes=5, events=60)
    motif = TOPOLOGIES[topology]()
    incremental = _streamed_multiset(
        stream, motif, random.Random(base_seed + 1), "incremental"
    )
    rebuild = _streamed_multiset(
        stream, motif, random.Random(base_seed + 2), "rebuild"
    )
    assert incremental == rebuild == _offline_multiset(stream, motif)


@pytest.mark.parametrize("case", range(3))
def test_dense_pair_streams(case, base_seed):
    """Few nodes → long per-pair series → multi-element edge-sets, tied
    anchors and heavy skip-rule traffic."""
    rng = random.Random(base_seed ^ case)
    stream = _random_stream(rng, nodes=3, events=50, horizon=20)
    for topology in sorted(TOPOLOGIES):
        motif = TOPOLOGIES[topology]()
        assert _streamed_multiset(
            stream, motif, rng, "incremental"
        ) == _offline_multiset(stream, motif), topology


def test_poll_heavy_and_poll_free_extremes(base_seed):
    """poll after every add, and a single flush with no polls at all."""
    rng = random.Random(base_seed)
    stream = _random_stream(rng, nodes=5, events=55)
    motif = TOPOLOGIES["chain-3"]()
    offline = _offline_multiset(stream, motif)

    chatty = StreamingDetector(motif)
    emitted = Counter()
    for src, dst, t, f in stream:
        chatty.add(src, dst, t, f)
        emitted.update(i.canonical_key() for i in chatty.poll())
    emitted.update(i.canonical_key() for i in chatty.flush())
    assert emitted == offline
    assert chatty.rebuild_count == 0

    silent = StreamingDetector(motif)
    for src, dst, t, f in stream:
        silent.add(src, dst, t, f)
    assert Counter(
        i.canonical_key() for i in silent.flush()
    ) == offline
