"""The window iterator against a definition-level oracle.

The skip rule's correctness argument (see :mod:`repro.core.windows`) is
checked empirically: the set of instances obtained from the iterator's
windows must equal the set of *maximal* instances obtained from ALL
anchor windows (no skip rule) after maximality filtering — i.e. the rule
removes exactly the redundant positions, never a productive one.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.enumeration import find_instances
from repro.core.instance import is_maximal
from repro.core.matching import find_structural_matches
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph

times = st.integers(min_value=0, max_value=40).map(float)
flows = st.integers(min_value=1, max_value=6).map(float)


@st.composite
def graphs(draw):
    num_nodes = draw(st.integers(3, 5))
    events = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_nodes - 1),
                st.integers(0, num_nodes - 1),
                times,
                flows,
            ).filter(lambda e: e[0] != e[1]),
            min_size=4,
            max_size=30,
        )
    )
    return InteractionGraph.from_tuples(events)


MOTIFS = [
    Motif((0, 1), delta=6.0, phi=0.0),
    Motif((0, 1, 2), delta=8.0, phi=0.0),
    Motif((0, 1, 2), delta=12.0, phi=4.0),
    Motif((0, 1, 2, 0), delta=10.0, phi=0.0),
]


def keys(instances):
    return {i.canonical_key() for i in instances}


@settings(max_examples=80, deadline=None)
@given(graph=graphs(), motif=st.sampled_from(MOTIFS))
def test_skip_rule_removes_exactly_the_non_maximal(graph, motif):
    matches = find_structural_matches(graph.to_time_series(), motif)
    with_rule = find_instances(matches)
    without_rule = find_instances(matches, skip_rule=False)
    maximal_without = [
        inst for inst in without_rule if is_maximal(inst, motif.delta)
    ]
    assert keys(with_rule) == keys(maximal_without)


@settings(max_examples=80, deadline=None)
@given(graph=graphs(), motif=st.sampled_from(MOTIFS))
def test_with_rule_output_all_maximal(graph, motif):
    matches = find_structural_matches(graph.to_time_series(), motif)
    for inst in find_instances(matches):
        assert is_maximal(inst, motif.delta)
