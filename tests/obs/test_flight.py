"""Flight recorder: ring semantics, bundle format, and fault wiring.

The recorder must never interfere with the run it is documenting: dumps
swallow I/O errors, installation is a single predicate on the hot path,
and the ring is bounded. The integration test arms a real injected
fault and asserts the retry path leaves a diagnostic bundle behind.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.obs import flight, metrics, tracing
from repro.obs.flight import FlightRecorder


@pytest.fixture(autouse=True)
def _clean_install():
    """Every test starts and ends with flight recording disarmed."""
    flight.uninstall()
    yield
    flight.uninstall()


def _read_bundle(path):
    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh]


class TestRing:
    def test_capacity_bounds_the_ring(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.note("tick", i=i)
        records = recorder.records()
        assert len(records) == 4
        assert [r["i"] for r in records] == [6, 7, 8, 9]

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(max_bundles=0)

    def test_note_fault_shape(self):
        recorder = FlightRecorder()
        recorder.note_fault(
            "crash", "boom", shard_index=3, backend="process", attempt=1
        )
        (record,) = recorder.records()
        assert record["kind"] == "fault"
        assert record["category"] == "crash"
        assert record["shard_index"] == 3
        assert "ts" in record


class TestBundles:
    def test_dump_writes_header_and_records(self, tmp_path):
        recorder = FlightRecorder(bundle_dir=str(tmp_path))
        recorder.note("tick", i=1)
        recorder.note_fault("timeout", "shard 2 stalled", shard_index=2)
        path = recorder.dump("shard-retry")
        assert path is not None
        assert os.path.basename(path).startswith(f"flight-{os.getpid()}-")
        assert path.endswith("-shard-retry.jsonl")
        lines = _read_bundle(path)
        assert lines[0]["kind"] == "flight-header"
        assert lines[0]["reason"] == "shard-retry"
        assert lines[0]["num_records"] == 2
        assert [r["kind"] for r in lines[1:]] == ["tick", "fault"]

    def test_dump_reason_is_sanitized(self, tmp_path):
        recorder = FlightRecorder(bundle_dir=str(tmp_path))
        path = recorder.dump("shard retry/0!")
        assert os.path.basename(path) == os.path.basename(path).replace(
            "/", "-"
        )
        assert " " not in os.path.basename(path)

    def test_dump_appends_active_metrics_snapshot(self, tmp_path):
        recorder = FlightRecorder(bundle_dir=str(tmp_path))
        recorder.note("tick")
        reg = metrics.MetricsRegistry()
        reg.counter("stream.events").inc(7)
        prev = metrics.activate(reg)
        try:
            path = recorder.dump("probe")
        finally:
            metrics.activate(prev)
        lines = _read_bundle(path)
        assert lines[-1]["kind"] == "metrics"
        assert lines[-1]["snapshot"]["counters"]["stream.events"] == 7

    def test_old_bundles_trimmed(self, tmp_path):
        recorder = FlightRecorder(bundle_dir=str(tmp_path), max_bundles=2)
        paths = [recorder.dump(f"r{i}") for i in range(4)]
        assert len(recorder.bundles) == 2
        assert not os.path.exists(paths[0])
        assert not os.path.exists(paths[1])
        assert os.path.exists(paths[2]) and os.path.exists(paths[3])

    def test_dump_never_raises_on_bad_directory(self):
        recorder = FlightRecorder(
            bundle_dir="/proc/definitely/not/writable"
        )
        recorder.note("tick")
        assert recorder.dump("oops") is None
        assert recorder.bundles == []


class TestInstallation:
    def test_off_by_default(self):
        assert flight.installed() is None

    def test_install_is_idempotent(self, tmp_path):
        first = flight.install(bundle_dir=str(tmp_path))
        second = flight.install(bundle_dir="/elsewhere")
        assert first is second
        assert flight.installed() is first

    def test_span_hook_feeds_the_ring(self, tmp_path):
        recorder = flight.install(bundle_dir=str(tmp_path))
        tracer = tracing.Tracer()
        prev = tracing.activate(tracer)
        try:
            with tracing.span("p2.enumerate", shard=1):
                pass
        finally:
            tracing.activate(prev)
        spans = [r for r in recorder.records() if r["kind"] == "span"]
        assert len(spans) == 1
        assert spans[0]["span"]["name"] == "p2.enumerate"

    def test_uninstall_disarms_hook(self, tmp_path):
        recorder = flight.install(bundle_dir=str(tmp_path))
        flight.uninstall()
        tracer = tracing.Tracer()
        prev = tracing.activate(tracer)
        try:
            with tracing.span("p1.match"):
                pass
        finally:
            tracing.activate(prev)
        assert flight.installed() is None
        assert recorder.records() == []

    def test_env_var_installs(self, tmp_path, monkeypatch):
        monkeypatch.setenv(flight.ENV_VAR, str(tmp_path))
        recorder = flight.maybe_install_from_env()
        assert recorder is not None
        assert recorder.bundle_dir == str(tmp_path)
        assert flight.installed() is recorder

    def test_env_var_unset_is_noop(self, monkeypatch):
        monkeypatch.delenv(flight.ENV_VAR, raising=False)
        assert flight.maybe_install_from_env() is None


class TestFaultIntegration:
    def test_shard_retry_dumps_a_bundle(self, tmp_path):
        """An injected shard fault must leave a shard-retry bundle with
        the fault context while the run still completes correctly."""
        from repro.core.engine import FlowMotifEngine
        from repro.core.motif import Motif
        from repro.graph.interaction import InteractionGraph
        from repro.parallel import ParallelFlowMotifEngine
        from repro.resilience import faultinject as fi

        rng = random.Random(11)
        g = InteractionGraph()
        nodes = [f"n{i}" for i in range(8)]
        for _ in range(400):
            u, v = rng.sample(nodes, 2)
            g.add_interaction(u, v, rng.uniform(0, 60.0), rng.uniform(0.5, 4))
        motif = Motif.chain(3, delta=6.0, phi=0.0)
        expected = FlowMotifEngine(g).find_instances(motif, collect=False).count

        flight.install(bundle_dir=str(tmp_path))
        with fi.inject(
            fi.FaultSpec("raise", shards=(0,), times=1, only_workers=False)
        ):
            with ParallelFlowMotifEngine(
                g, jobs=2, shards=4, backend="thread"
            ) as engine:
                count = engine.find_instances(motif, collect=False).count
        assert count == expected

        bundles = [
            name
            for name in os.listdir(str(tmp_path))
            if name.startswith("flight-") and "shard-retry" in name
        ]
        assert bundles, "no shard-retry bundle written"
        lines = _read_bundle(os.path.join(str(tmp_path), bundles[0]))
        kinds = {line["kind"] for line in lines}
        assert "flight-header" in kinds
        assert "fault" in kinds
