"""Span recording, cross-process stitching, and the no-op fast path."""

import threading

from repro.obs import tracing
from repro.obs.tracing import (
    NOOP_SPAN,
    Tracer,
    render_trace_tree,
    span_totals,
    stitch_trace,
)


class TestTracer:
    def test_nested_spans_record_parentage(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = tracer.spans()
        assert [s["name"] for s in spans] == ["outer", "inner"]
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        for record in spans:
            assert record["end"] >= record["start"]

    def test_span_ids_carry_pid_prefix(self):
        import os

        tracer = Tracer()
        with tracer.span("s"):
            pass
        span_id = tracer.spans()[0]["span_id"]
        assert span_id.startswith(f"{os.getpid():x}-")

    def test_explicit_parent_links_across_processes(self):
        """A worker tracer seeded with the dispatcher's context attaches
        its spans under the dispatcher's span id."""
        parent = Tracer()
        with parent.span("query"):
            trace_id, parent_id = parent.context()
            worker = Tracer(trace_id=trace_id, parent_id=parent_id)
            with worker.span("worker.shard_task", shard=0):
                pass
            parent.add_spans(worker.spans())
        spans = parent.spans()
        by_name = {s["name"]: s for s in spans}
        assert (
            by_name["worker.shard_task"]["parent_id"]
            == by_name["query"]["span_id"]
        )
        assert by_name["worker.shard_task"]["trace_id"] == trace_id

    def test_exception_marks_span_error(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        (record,) = tracer.spans()
        assert record["attrs"]["error"] == "RuntimeError"

    def test_ambient_stack_is_thread_local(self):
        tracer = Tracer()

        def worker():
            with tracer.span("t2"):
                pass

        with tracer.span("t1"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        by_name = {s["name"]: s for s in tracer.spans()}
        # The second thread's span must NOT nest under t1 (different stack).
        assert by_name["t2"]["parent_id"] is None


class TestNoopPath:
    def test_module_span_is_noop_when_inactive(self):
        assert tracing.active() is None
        with tracing.span("anything", k="v") as handle:
            assert handle is NOOP_SPAN

    def test_noop_span_is_reentrant_singleton(self):
        with tracing.span("a") as a, tracing.span("b") as b:
            assert a is b is NOOP_SPAN


class TestStitching:
    def _spans(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child_a"):
                pass
            with tracer.span("child_b"):
                pass
        return tracer.spans()

    def test_single_root_with_sorted_children(self):
        roots = stitch_trace(self._spans())
        assert len(roots) == 1
        assert roots[0].span.name == "root"
        assert [c.span.name for c in roots[0].children] == [
            "child_a",
            "child_b",
        ]

    def test_orphan_parent_becomes_root(self):
        spans = self._spans()
        kept = [s for s in spans if s["name"] != "root"]
        roots = stitch_trace(kept)
        assert sorted(r.span.name for r in roots) == ["child_a", "child_b"]

    def test_render_tree_indents_children(self):
        text = render_trace_tree(stitch_trace(self._spans()))
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child_a")
        assert lines[2].startswith("  child_b")

    def test_span_totals_sum_durations(self):
        totals = span_totals(self._spans())
        assert set(totals) == {"root", "child_a", "child_b"}
        assert totals["root"] >= totals["child_a"]
