"""Sampling profiler: report arithmetic, attribution, and activation.

The statistical parts keep their assertions loose (a sampler thread on a
loaded CI box may fire late); the deterministic parts — report merging,
serialization, collapsed-stack format, activation scoping, the
fork-ghost guard — are exact.
"""

from __future__ import annotations

import os
import threading
import time

from repro import obs
from repro.obs import profiler as profiler_mod
from repro.obs import tracing
from repro.obs.profiler import NO_SPAN, ProfileReport, Profiler


def _busy(seconds: float) -> int:
    deadline = time.perf_counter() + seconds
    acc = 0
    while time.perf_counter() < deadline:
        acc += sum(i * i for i in range(200))
    return acc


class TestProfileReport:
    def test_add_stack_aggregates(self):
        report = ProfileReport(hz=100.0)
        report.add_stack("p2.enumerate", ["a:f", "b:g"])
        report.add_stack("p2.enumerate", ["a:f", "b:g"])
        report.add_stack(None, ["a:f"])
        assert report.samples == 3
        assert report.by_span == {"p2.enumerate": 2, NO_SPAN: 1}
        assert report.collapsed["p2.enumerate;a:f;b:g"] == 2

    def test_merge_sums_everything(self):
        a = ProfileReport(hz=100.0)
        a.add_stack("p1.match", ["m:f"])
        b = ProfileReport(hz=100.0)
        b.add_stack("p1.match", ["m:f"])
        b.add_stack("p2.enumerate", ["m:g"])
        a.merge(b)
        assert a.samples == 3
        assert a.by_span == {"p1.match": 2, "p2.enumerate": 1}
        assert a.collapsed["p1.match;m:f"] == 2

    def test_dict_round_trip(self):
        report = ProfileReport(hz=50.0)
        report.add_stack("p2.enumerate", ["a:f", "b:g"])
        clone = ProfileReport.from_dict(report.to_dict())
        assert clone.hz == report.hz
        assert clone.samples == report.samples
        assert clone.collapsed == report.collapsed
        assert clone.by_span == report.by_span

    def test_dominant_span_restricted_to_prefixes(self):
        report = ProfileReport()
        for _ in range(5):
            report.add_stack("query.find_instances", ["q:f"])
        for _ in range(3):
            report.add_stack("p2.enumerate", ["e:g"])
        report.add_stack("p1.match", ["m:h"])
        # query.* holds the most samples but is not a phase span.
        assert report.dominant_span() == "p2.enumerate"
        assert report.dominant_span(prefixes=("query.",)) == (
            "query.find_instances"
        )
        assert ProfileReport().dominant_span() is None

    def test_write_collapsed_format(self, tmp_path):
        report = ProfileReport()
        report.add_stack("p2.enumerate", ["mod:outer", "mod:inner"])
        report.add_stack("p2.enumerate", ["mod:outer", "mod:inner"])
        path = str(tmp_path / "out.collapsed")
        report.write_collapsed(path)
        lines = open(path).read().splitlines()
        assert "p2.enumerate;mod:outer;mod:inner 2" in lines

    def test_render_text_mentions_samples_and_spans(self):
        report = ProfileReport(hz=97.0)
        report.add_stack("p2.enumerate", ["mod:f"])
        text = report.render_text()
        assert "1 samples" in text
        assert "p2.enumerate" in text


class TestSampling:
    def test_samples_attributed_to_ambient_span(self):
        with obs.observe(trace=True, profile=True, profile_hz=250.0) as o:
            with tracing.span("p2.test_hotspot"):
                _busy(0.25)
        report = o.profile()
        assert report is not None
        assert report.samples > 0
        assert report.by_span.get("p2.test_hotspot", 0) > 0
        assert report.dominant_span(prefixes=("p2.",)) == "p2.test_hotspot"

    def test_profile_off_by_default(self):
        assert profiler_mod.active() is None
        with obs.observe(trace=True) as o:
            _busy(0.02)
        assert o.profile() is None
        assert profiler_mod.active() is None

    def test_stop_is_idempotent_and_joins_thread(self):
        profiler = Profiler(hz=200.0)
        profiler.start()
        _busy(0.05)
        profiler.stop()
        profiler.stop()
        assert not profiler.sampling_here
        names = [t.name for t in threading.enumerate()]
        assert "repro-profiler" not in names


class TestActivation:
    def test_activate_returns_previous(self):
        profiler = Profiler()
        prev = profiler_mod.activate(profiler)
        try:
            assert profiler_mod.active() is profiler
        finally:
            profiler_mod.activate(prev)
        assert profiler_mod.active() is prev

    def test_activation_is_thread_local(self):
        profiler = Profiler()
        prev = profiler_mod.activate(profiler)
        seen = []
        try:
            t = threading.Thread(
                target=lambda: seen.append(profiler_mod.active())
            )
            t.start()
            t.join()
        finally:
            profiler_mod.activate(prev)
        assert seen == [None]


class TestForkGhostGuard:
    def test_sampling_here_requires_same_pid(self):
        """A forked worker inherits the dispatcher's thread-local
        profiler object, but not its sampler thread: ``sampling_here``
        must be False there so the worker arms its own profiler."""
        profiler = Profiler(hz=200.0)
        assert not profiler.sampling_here  # never started
        profiler.start()
        try:
            assert profiler.sampling_here
            real_pid = profiler._pid
            profiler._pid = os.getpid() + 1  # what a forked child sees
            assert not profiler.sampling_here
            profiler._pid = real_pid
        finally:
            profiler.stop()

    def test_worker_samples_cross_process_boundary(self):
        """End to end: a profiled process-backend search ships span-
        attributed samples back through the obs envelope."""
        import random

        from repro.core.motif import Motif
        from repro.graph.interaction import InteractionGraph
        from repro.parallel import ParallelFlowMotifEngine

        rng = random.Random(3)
        g = InteractionGraph()
        nodes = [f"n{i}" for i in range(10)]
        for _ in range(4000):
            u, v = rng.sample(nodes, 2)
            g.add_interaction(u, v, rng.uniform(0, 300.0), rng.uniform(0.5, 5))
        motif = Motif.chain(3, delta=5.0, phi=0.0)
        with obs.observe(trace=True, profile=True) as o:
            with ParallelFlowMotifEngine(
                g, jobs=2, shards=4, backend="process"
            ) as engine:
                count = engine.find_instances(motif, collect=False).count
        assert count > 0
        report = o.profile()
        assert report is not None
        assert report.samples > 0
        # At least one sample must carry a phase span recorded inside a
        # worker process (the dispatcher itself never runs P1/P2).
        assert any(
            name.startswith(("p1.", "p2.")) for name in report.by_span
        )
