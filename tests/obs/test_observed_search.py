"""End-to-end observability acceptance: one parallel search, one tree.

The ISSUE 7 acceptance criteria, as tests:

* a process-backend search over >= 2 shards yields a *single* stitched
  trace tree whose span ids provably cross the worker boundary (distinct
  pid prefixes);
* per-phase span totals reconcile with ``SearchResult.shard_timings``
  within 5%;
* with observability disabled nothing is recorded, nothing leaks onto
  the thread state, and task envelopes are passed through untouched.
"""

import os
import random

import pytest

from repro import obs
from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.obs.tracing import span_totals, stitch_trace
from repro.parallel import ParallelFlowMotifEngine


def _graph(num_events=2500, nodes=30, horizon=400.0, seed=5):
    rng = random.Random(seed)
    g = InteractionGraph()
    for _ in range(num_events):
        u, v = rng.sample(range(nodes), 2)
        g.add_interaction(
            f"n{u}", f"n{v}", rng.uniform(0.0, horizon), rng.uniform(1.0, 9.0)
        )
    return g


MOTIF = Motif.chain(3, delta=40.0, phi=0.0)


class TestStitchedParallelTrace:
    @pytest.fixture(scope="class")
    def observed(self):
        graph = _graph()
        with ParallelFlowMotifEngine(
            graph, jobs=2, shards=4, backend="process"
        ) as engine:
            with obs.observe() as observation:
                result = engine.find_instances(MOTIF, collect=False)
        return observation, result

    def test_single_stitched_root(self, observed):
        observation, _result = observed
        roots = stitch_trace(observation.spans())
        assert len(roots) == 1
        assert roots[0].span.name == "query.find_instances"
        shard_tasks = [
            c for c in roots[0].children
            if c.span.name == "worker.shard_task"
        ]
        assert len(shard_tasks) == 4
        for task in shard_tasks:
            names = sorted(c.span.name for c in task.children)
            assert names == ["p1.match", "p2.enumerate"]

    def test_span_ids_cross_worker_boundary(self, observed):
        observation, _result = observed
        spans = observation.spans()
        pids = {s["span_id"].split("-", 1)[0] for s in spans}
        assert len(pids) >= 2, "expected spans from at least two processes"
        here = f"{os.getpid():x}"
        assert here in pids  # the dispatcher's query span
        worker_pids = {
            s["span_id"].split("-", 1)[0]
            for s in spans
            if s["name"] == "worker.shard_task"
        }
        assert worker_pids and here not in worker_pids
        # Every span belongs to the one trace.
        assert len({s["trace_id"] for s in spans}) == 1

    def test_phase_totals_reconcile_with_shard_timings(self, observed):
        """P1/P2 span time must agree with the engine's own accounting
        (within 5%, the acceptance bound — same Timer blocks)."""
        observation, result = observed
        totals = span_totals(observation.spans())
        timings = result.shard_timings
        assert timings is not None
        p1_reported = sum(s.p1_seconds for s in timings.shards)
        p2_reported = sum(s.p2_seconds for s in timings.shards)
        assert totals["p1.match"] == pytest.approx(
            p1_reported, rel=0.05, abs=0.005
        )
        assert totals["p2.enumerate"] == pytest.approx(
            p2_reported, rel=0.05, abs=0.005
        )

    def test_counters_reconcile_with_result(self, observed):
        observation, result = observed
        counters = observation.snapshot()["counters"]
        assert counters["p1.matches"] == result.num_matches
        assert counters["p2.instances"] == result.count
        gauges = observation.snapshot()["gauges"]
        assert gauges["parallel.num_shards"] == 4
        assert gauges["parallel.shard_imbalance_ratio"] >= 1.0

    def test_observed_count_matches_unobserved(self, observed):
        _observation, result = observed
        serial = FlowMotifEngine(_graph()).find_instances(
            MOTIF, collect=False
        )
        assert result.count == serial.count


class TestThreadBackendTrace:
    def test_thread_backend_stitches_single_root(self):
        graph = _graph(num_events=600)
        with obs.observe() as observation:
            engine = ParallelFlowMotifEngine(
                graph, jobs=2, shards=2, backend="thread"
            )
            engine.find_instances(MOTIF, collect=False)
        roots = stitch_trace(observation.spans())
        assert len(roots) == 1
        names = [c.span.name for c in roots[0].children]
        assert names.count("worker.shard_task") == 2
        # Dispatcher state must be restored after per-task activation.
        assert obs_metrics.active() is None
        assert obs_tracing.active() is None


class TestNoopMode:
    def test_disabled_records_nothing_and_leaks_nothing(self):
        assert obs_metrics.active() is None
        assert obs_tracing.active() is None
        graph = _graph(num_events=400)
        with ParallelFlowMotifEngine(
            graph, jobs=2, shards=2, backend="process"
        ) as engine:
            engine.find_instances(MOTIF, collect=False)
        assert obs_metrics.active() is None
        assert obs_tracing.active() is None

    def test_task_envelopes_untouched_when_disabled(self):
        graph = _graph(num_events=200)
        engine = ParallelFlowMotifEngine(
            graph, jobs=1, shards=2, backend="serial"
        )
        tasks = ["sentinel-a", "sentinel-b"]
        assert engine._wrap_traced(tasks) is tasks

    def test_observation_scoped_to_with_block(self):
        graph = _graph(num_events=300)
        engine = FlowMotifEngine(graph)
        with obs.observe() as observation:
            engine.find_instances(MOTIF, collect=False)
        before = len(observation.spans())
        engine.find_instances(MOTIF, collect=False)  # outside the block
        assert len(observation.spans()) == before
        assert observation.snapshot()["counters"]["p2.instances"] > 0

    def test_sink_round_trip(self, tmp_path):
        graph = _graph(num_events=300)
        path = str(tmp_path / "obs.jsonl")
        with obs.observe() as observation:
            FlowMotifEngine(graph).find_instances(MOTIF, collect=False)
        observation.write_jsonl(path)
        snapshot, spans, _events = obs.load_observations([path])
        assert snapshot["counters"] == observation.snapshot()["counters"]
        assert len(spans) == len(observation.spans())
        roots = stitch_trace(spans)
        assert len(roots) == 1
