"""Registry semantics: determinism, associativity, escaping, activation."""

import itertools
import random
import threading

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    render_prometheus,
    render_text,
    split_key,
)


def _random_registry(rng: random.Random) -> MetricsRegistry:
    reg = MetricsRegistry()
    for _ in range(rng.randrange(0, 12)):
        kind = rng.choice(("counter", "gauge", "histogram"))
        name = rng.choice(("p1.matches", "p2.dp.cells", "stream.events"))
        labels = {}
        if rng.random() < 0.5:
            labels["motif"] = rng.choice(("M(3,2)", "M(3,3)", "0-1-2-0"))
        if kind == "counter":
            reg.counter(name, **labels).inc(rng.randrange(1, 100))
        elif kind == "gauge":
            reg.gauge(name, **labels).set(rng.uniform(0, 10))
        else:
            reg.histogram(name, **labels).observe(rng.uniform(0, 200))
    return reg


class TestMergeAssociativity:
    @pytest.mark.parametrize("seed", range(8))
    def test_any_merge_order_renders_identically(self, seed):
        """Property: folding worker snapshots in any order gives the same
        rendered report — counters sum, gauges max, buckets sum."""
        rng = random.Random(seed)
        snapshots = [_random_registry(rng).snapshot() for _ in range(4)]
        rendered = set()
        for order in itertools.permutations(range(len(snapshots))):
            merged = MetricsRegistry()
            for i in order:
                merged.merge(snapshots[i])
            rendered.add(
                (merged.render_text(), merged.render_prometheus())
            )
        assert len(rendered) == 1

    def test_merge_is_associative_not_just_commutative(self):
        a = MetricsRegistry()
        a.counter("c").inc(1)
        b = MetricsRegistry()
        b.counter("c").inc(2)
        b.gauge("g").set(5.0)
        c = MetricsRegistry()
        c.gauge("g").set(3.0)
        c.histogram("h").observe(0.5)

        left = MetricsRegistry.from_snapshot(a.snapshot())
        left.merge(b.snapshot())
        left.merge(c.snapshot())

        bc = MetricsRegistry.from_snapshot(b.snapshot())
        bc.merge(c.snapshot())
        right = MetricsRegistry.from_snapshot(a.snapshot())
        right.merge(bc.snapshot())

        assert left.snapshot() == right.snapshot()

    def test_counter_sum_gauge_max_bucket_sum(self):
        a = MetricsRegistry()
        a.counter("n").inc(3)
        a.gauge("g").set(7.0)
        a.histogram("h").observe(0.005)
        b = MetricsRegistry()
        b.counter("n").inc(4)
        b.gauge("g").set(2.0)
        b.histogram("h").observe(0.005)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["n"] == 7
        assert snap["gauges"]["g"] == 7.0
        assert sum(snap["histograms"]["h"]["counts"]) == 2
        assert snap["histograms"]["h"]["count"] == 2

    def test_mismatched_histogram_buckets_rejected(self):
        a = MetricsRegistry()
        a.histogram("h").observe(1.0)
        snap = a.snapshot()
        snap["histograms"]["h"]["buckets"] = [1.0, 2.0]
        snap["histograms"]["h"]["counts"] = [0, 1, 0]
        b = MetricsRegistry()
        b.histogram("h").observe(1.0)
        with pytest.raises(ValueError):
            b.merge(snap)


class TestSnapshotDeterminism:
    def test_snapshot_independent_of_insertion_order(self):
        a = MetricsRegistry()
        a.counter("x").inc()
        a.counter("y", motif="M(3,2)").inc(2)
        b = MetricsRegistry()
        b.counter("y", motif="M(3,2)").inc(2)
        b.counter("x").inc()
        assert a.snapshot() == b.snapshot()
        assert a.render_prometheus() == b.render_prometheus()

    def test_snapshot_is_a_deep_copy(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        snap = reg.snapshot()
        reg.counter("x").inc()
        assert snap["counters"]["x"] == 1


class TestLabelEscaping:
    def test_commas_and_equals_in_label_values_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("p2.dp.windows", motif="M(3,2)", expr="a=b").inc()
        key = next(iter(reg.snapshot()["counters"]))
        name, labels = split_key(key)
        assert name == "p2.dp.windows"
        assert dict(labels) == {"motif": "M(3,2)", "expr": "a=b"}

    def test_backslash_in_label_value_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("c", path="a\\b,c=d").inc()
        _, labels = split_key(next(iter(reg.snapshot()["counters"])))
        assert dict(labels) == {"path": "a\\b,c=d"}

    def test_prometheus_rendering_quotes_label_values(self):
        reg = MetricsRegistry()
        reg.counter("p1.matches", motif="M(3,2)").inc(5)
        out = reg.render_prometheus()
        assert 'p1_matches_total{motif="M(3,2)"} 5' in out


class TestPrometheusExposition:
    def test_counter_gauge_histogram_families(self):
        reg = MetricsRegistry()
        reg.counter("stream.events").inc(10)
        reg.gauge("stream.watermark_lag").set(1.5)
        reg.histogram("p2.window_seconds").observe(0.05)
        out = reg.render_prometheus()
        assert "# TYPE stream_events_total counter" in out
        assert "stream_events_total 10" in out
        assert "# TYPE stream_watermark_lag gauge" in out
        assert "# TYPE p2_window_seconds histogram" in out
        assert 'p2_window_seconds_bucket{le="+Inf"} 1' in out
        assert "p2_window_seconds_count 1" in out
        assert out.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)
        out = render_prometheus(reg.snapshot())
        assert 'h_bucket{le="1"} 1' in out
        assert 'h_bucket{le="10"} 2' in out
        assert 'h_bucket{le="+Inf"} 3' in out

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""
        assert "no metrics" in render_text(MetricsRegistry().snapshot())


class TestActivation:
    def test_inactive_by_default(self):
        assert metrics.active() is None

    def test_activate_returns_previous(self):
        reg = MetricsRegistry()
        prev = metrics.activate(reg)
        try:
            assert metrics.active() is reg
        finally:
            metrics.activate(prev)
        assert metrics.active() is prev

    def test_activation_is_thread_local(self):
        reg = MetricsRegistry()
        prev = metrics.activate(reg)
        seen = []
        try:
            t = threading.Thread(target=lambda: seen.append(metrics.active()))
            t.start()
            t.join()
        finally:
            metrics.activate(prev)
        assert seen == [None]

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestHistogramQuantiles:
    def _snapshot(self, values, buckets=(1.0, 10.0, 100.0)):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=buckets)
        for v in values:
            h.observe(v)
        return reg.snapshot()["histograms"]["h"]

    def test_interpolates_within_bucket(self):
        # 10 observations all landing in (1, 10]: p50 sits at the
        # bucket's midpoint under the uniform-within-bucket assumption.
        data = self._snapshot([5.0] * 10)
        assert metrics.histogram_quantile(data, 0.5) == pytest.approx(5.5)

    def test_first_bucket_lower_bound_is_zero(self):
        data = self._snapshot([0.5] * 4)
        # rank 2 of 4 in bucket (0, 1]: 0 + 1 * (2/4)
        assert metrics.histogram_quantile(data, 0.5) == pytest.approx(0.5)

    def test_overflow_clamps_to_last_finite_bound(self):
        data = self._snapshot([1e6] * 3)
        assert metrics.histogram_quantile(data, 0.99) == 100.0

    def test_monotone_in_q(self):
        data = self._snapshot([0.5, 2.0, 3.0, 20.0, 50.0, 99.0])
        qs = [metrics.histogram_quantile(data, q) for q in (0.1, 0.5, 0.9, 1.0)]
        assert qs == sorted(qs)

    def test_empty_histogram_is_zero(self):
        data = self._snapshot([])
        assert metrics.histogram_quantile(data, 0.5) == 0.0

    def test_out_of_range_q_rejected(self):
        data = self._snapshot([1.0])
        with pytest.raises(ValueError):
            metrics.histogram_quantile(data, 1.5)
        with pytest.raises(ValueError):
            metrics.histogram_quantile(data, -0.1)

    def test_render_text_includes_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("p2.window_seconds", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 5.0):
            h.observe(v)
        out = render_text(reg.snapshot())
        assert "p50=" in out
        assert "p95=" in out
        assert "p99=" in out

    def test_render_text_empty_histogram_has_no_percentiles(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        out = render_text(reg.snapshot())
        assert "p50=" not in out
