"""Utility helpers: timing, tables, validation."""

from __future__ import annotations

import pytest

from repro.utils.tables import format_series, format_table
from repro.utils.timing import Stopwatch, Timer
from repro.utils.validation import require, require_non_negative, require_positive


class TestTimer:
    def test_measures_nonnegative(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0

    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch.measure("p1"):
            pass
        with watch.measure("p1"):
            pass
        with watch.measure("p2"):
            pass
        assert watch.total("p1") >= 0.0
        assert set(watch.phases()) == {"p1", "p2"}
        watch.reset()
        assert watch.phases() == {}

    def test_unknown_phase_is_zero(self):
        assert Stopwatch().total("nothing") == 0.0

    def test_stopwatch_concurrent_adds_are_exact(self):
        """Regression: add() is a read-modify-write; without the lock,
        concurrent threads lose updates and the total drifts low."""
        import threading

        watch = Stopwatch()
        threads = 8
        per_thread = 2000
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                watch.add("phase", 1.0)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert watch.total("phase") == float(threads * per_thread)


class TestTables:
    def test_alignment(self):
        text = format_table(["a", "long_header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "long_header" in lines[0]

    def test_markdown(self):
        text = format_table(["x"], [[1]], markdown=True)
        assert text.splitlines()[0] == "| x |"
        assert text.splitlines()[1].startswith("|-")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["v"], [[1.23456789]])
        assert "1.235" in text

    def test_series(self):
        text = format_series("k", [1, 5], {"M(3,2)": [10, 8], "M(3,3)": [4, 2]})
        lines = text.splitlines()
        assert lines[0].split()[:1] == ["k"]
        assert "M(3,2)" in lines[0] and "M(3,3)" in lines[0]
        assert len(lines) == 4

    def test_series_short_line_padded(self):
        text = format_series("k", [1, 5], {"a": [10]})
        assert text  # missing values render as blanks, no crash


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    @pytest.mark.parametrize("value", [1, 0.5, 1e9])
    def test_positive_ok(self, value):
        require_positive(value, "x")

    @pytest.mark.parametrize("value", [0, -1, float("nan"), float("inf")])
    def test_positive_rejects(self, value):
        with pytest.raises(ValueError):
            require_positive(value, "x")

    def test_positive_rejects_non_numbers(self):
        with pytest.raises(TypeError):
            require_positive("3", "x")
        with pytest.raises(TypeError):
            require_positive(True, "x")

    def test_non_negative(self):
        require_non_negative(0, "x")
        with pytest.raises(ValueError):
            require_non_negative(-0.1, "x")
