"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import random
import zlib

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif
from repro.datasets.fixtures import (
    figure1_graph,
    figure2_graph,
    figure7_match_graph,
)

#: Single knob behind every randomized (non-hypothesis) test. The default
#: keeps CI deterministic; override to explore or reproduce:
#:
#:     REPRO_TEST_SEED=12345 pytest tests/property tests/parallel
BASE_TEST_SEED = int(os.environ.get("REPRO_TEST_SEED", "20260729"))


@pytest.fixture
def base_seed(request):
    """Per-test reproducible seed, printed so failures carry it.

    Derived from ``REPRO_TEST_SEED`` and the test's node id, so each test
    (and each parametrization) gets a distinct but reproducible stream.
    The print lands in "Captured stdout setup" of any failure report;
    rerunning with the same ``REPRO_TEST_SEED`` reproduces it exactly.
    """
    derived = zlib.crc32(request.node.nodeid.encode("utf-8")) ^ BASE_TEST_SEED
    print(
        f"[seeded-rng] REPRO_TEST_SEED={BASE_TEST_SEED} "
        f"derived_seed={derived} nodeid={request.node.nodeid}"
    )
    return derived


@pytest.fixture
def seeded_rng(base_seed):
    """A ``random.Random`` seeded from :func:`base_seed`."""
    return random.Random(base_seed)


@pytest.fixture
def fig2_graph():
    """The running-example bitcoin user graph (Figures 2/5)."""
    return figure2_graph()


@pytest.fixture
def fig7_graph():
    """The Figure 7 / Table 2 triangle-match graph."""
    return figure7_match_graph()


@pytest.fixture
def fig1_graph():
    """The introduction's toy multigraph (Figure 1)."""
    return figure1_graph()


@pytest.fixture
def fig2_engine(fig2_graph):
    return FlowMotifEngine(fig2_graph)


@pytest.fixture
def fig7_engine(fig7_graph):
    return FlowMotifEngine(fig7_graph)


@pytest.fixture
def triangle():
    """M(3,3) with the Figure 4 constraints (δ=10, φ=7)."""
    return Motif.cycle(3, delta=10, phi=7)


@pytest.fixture
def triangle_phi0():
    """M(3,3) with δ=10 and no flow constraint (Figure 7 walkthrough)."""
    return Motif.cycle(3, delta=10, phi=0)
