"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif
from repro.datasets.fixtures import (
    figure1_graph,
    figure2_graph,
    figure7_match_graph,
)


@pytest.fixture
def fig2_graph():
    """The running-example bitcoin user graph (Figures 2/5)."""
    return figure2_graph()


@pytest.fixture
def fig7_graph():
    """The Figure 7 / Table 2 triangle-match graph."""
    return figure7_match_graph()


@pytest.fixture
def fig1_graph():
    """The introduction's toy multigraph (Figure 1)."""
    return figure1_graph()


@pytest.fixture
def fig2_engine(fig2_graph):
    return FlowMotifEngine(fig2_graph)


@pytest.fixture
def fig7_engine(fig7_graph):
    return FlowMotifEngine(fig7_graph)


@pytest.fixture
def triangle():
    """M(3,3) with the Figure 4 constraints (δ=10, φ=7)."""
    return Motif.cycle(3, delta=10, phi=7)


@pytest.fixture
def triangle_phi0():
    """M(3,3) with δ=10 and no flow constraint (Figure 7 walkthrough)."""
    return Motif.cycle(3, delta=10, phi=0)
