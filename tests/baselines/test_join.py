"""The join-algorithm baseline (Section 6.2.1)."""

from __future__ import annotations

import pytest

from repro.baselines.join import build_interval_tuples, join_find_instances
from repro.core.enumeration import find_instances
from repro.core.matching import find_structural_matches
from repro.core.motif import Motif, paper_motifs
from repro.graph.interaction import InteractionGraph


def keys(instances):
    return {
        (i.vertex_map, tuple(tuple(sorted(r.items())) for r in i.runs))
        for i in instances
    }


class TestIntervalTuples:
    def test_runs_within_delta(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 0, 1.0), ("a", "b", 5, 2.0), ("a", "b", 20, 4.0)]
        )
        tuples = build_interval_tuples(g.to_time_series(), delta=6, phi=0)
        spans = {(t.ts, t.te, t.flow) for t in tuples}
        assert spans == {
            (0, 0, 1.0), (5, 5, 2.0), (20, 20, 4.0), (0, 5, 3.0),
        }

    def test_phi_filter(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 0, 1.0), ("a", "b", 5, 2.0)]
        )
        tuples = build_interval_tuples(g.to_time_series(), delta=6, phi=2.5)
        assert {(t.ts, t.te) for t in tuples} == {(0, 5)}

    def test_tied_timestamps_grouped(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 5, 1.0), ("a", "b", 5, 2.0), ("a", "b", 7, 1.0)]
        )
        tuples = build_interval_tuples(g.to_time_series(), delta=10, phi=0)
        # A run may not split a tie group: runs are {both@5}, {@7}, {all}.
        assert {(t.lo, t.hi) for t in tuples} == {(0, 1), (2, 2), (0, 2)}


class TestJoinEqualsTwoPhase:
    def test_figure2(self, fig2_graph):
        ts = fig2_graph.to_time_series()
        motif = Motif.cycle(3, delta=10, phi=7)
        matches = find_structural_matches(ts, motif)
        assert keys(join_find_instances(ts, motif)) == keys(
            find_instances(matches)
        )

    def test_figure7_all_phis(self, fig7_graph):
        ts = fig7_graph.to_time_series()
        for phi in (0, 3, 5, 8):
            motif = Motif.cycle(3, delta=10, phi=phi)
            matches = find_structural_matches(ts, motif)
            assert keys(join_find_instances(ts, motif)) == keys(
                find_instances(matches)
            ), phi

    def test_catalog_on_synthetic(self):
        from repro.datasets.synthetic import planted_cascade_graph

        graph, _ = planted_cascade_graph((0, 1, 2, 0), noise_edges=40)
        ts = graph.to_time_series()
        for name, motif in paper_motifs(delta=120, phi=1).items():
            matches = find_structural_matches(ts, motif)
            assert keys(join_find_instances(ts, motif)) == keys(
                find_instances(matches)
            ), name

    def test_constraint_overrides(self, fig7_graph):
        ts = fig7_graph.to_time_series()
        motif = Motif.cycle(3, delta=999, phi=99)
        joined = join_find_instances(ts, motif, delta=10, phi=0)
        matches = find_structural_matches(ts, motif)
        assert keys(joined) == keys(find_instances(matches, delta=10, phi=0))

    def test_empty_graph(self):
        ts = InteractionGraph().to_time_series()
        assert join_find_instances(ts, Motif.chain(3, 10)) == []
