"""Sanity checks of the brute-force oracle itself (on hand-solved inputs)."""

from __future__ import annotations

import pytest

from repro.baselines.bruteforce import brute_force_instances
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph


class TestOracleOnHandSolvedInputs:
    def test_figure4_instance(self, fig2_graph):
        motif = Motif.cycle(3, delta=10, phi=7)
        result = brute_force_instances(fig2_graph.to_time_series(), motif)
        assert len(result) == 1
        ((vertex_map, edge_sets),) = result
        assert vertex_map == ("u3", "u1", "u2")
        assert edge_sets == (
            ((10, 10),),
            ((13, 5), (15, 7)),
            ((18, 20),),
        )

    def test_figure7_count(self, fig7_graph):
        motif = Motif.cycle(3, delta=10, phi=0)
        result = brute_force_instances(fig7_graph.to_time_series(), motif)
        assert len(result) == 6  # 4 on the u3 rotation + 2 on others

    def test_non_maximal_rejected(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 1, 1.0), ("a", "b", 2, 1.0), ("b", "c", 3, 1.0)]
        )
        motif = Motif.chain(3, delta=10, phi=0)
        result = brute_force_instances(g.to_time_series(), motif)
        # Only the instance taking BOTH (a,b) elements is maximal.
        assert len(result) == 1
        ((_, edge_sets),) = result
        assert edge_sets[0] == ((1, 1.0), (2, 1.0))

    def test_series_length_guard(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", float(t), 1.0) for t in range(20)]
        )
        motif = Motif.chain(2, delta=100, phi=0)
        with pytest.raises(ValueError, match="too long"):
            brute_force_instances(
                g.to_time_series(), motif, max_series_elements=10
            )
