"""The flow-agnostic temporal-motif baseline ([14]-style)."""

from __future__ import annotations

import pytest

from repro.baselines.temporal import count_temporal_motif_instances
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph


class TestTemporalCounting:
    def test_single_chain(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 1, 1.0), ("b", "c", 2, 1.0)]
        )
        motif = Motif.chain(3, delta=10)
        assert count_temporal_motif_instances(g.to_time_series(), motif) == 1

    def test_counts_single_edge_selections(self):
        """Each choice of one edge per motif edge counts separately."""
        g = InteractionGraph.from_tuples(
            [
                ("a", "b", 1, 1.0),
                ("a", "b", 2, 1.0),
                ("b", "c", 3, 1.0),
                ("b", "c", 4, 1.0),
            ]
        )
        motif = Motif.chain(3, delta=10)
        # 2 choices for e1 × 2 for e2, all time-respecting.
        assert count_temporal_motif_instances(g.to_time_series(), motif) == 4

    def test_order_restricts_choices(self):
        g = InteractionGraph.from_tuples(
            [
                ("a", "b", 1, 1.0),
                ("a", "b", 5, 1.0),
                ("b", "c", 3, 1.0),
            ]
        )
        motif = Motif.chain(3, delta=10)
        # Only (1 → 3); the (5, ·) edge is after the only (b,c) event.
        assert count_temporal_motif_instances(g.to_time_series(), motif) == 1

    def test_delta_restricts_choices(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 1, 1.0), ("b", "c", 50, 1.0)]
        )
        motif = Motif.chain(3, delta=10)
        assert count_temporal_motif_instances(g.to_time_series(), motif) == 0

    def test_cycle_counting(self, fig2_graph):
        motif = Motif.cycle(3, delta=10)
        count = count_temporal_motif_instances(
            fig2_graph.to_time_series(), motif
        )
        # u3→u1 (10), u1→u2 (13 or 15), u2→u3 (18): two selections.
        assert count == 2

    def test_strict_order_blocks_ties(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 5, 1.0), ("b", "c", 5, 1.0)]
        )
        motif = Motif.chain(3, delta=10)
        assert count_temporal_motif_instances(g.to_time_series(), motif) == 0

    def test_delta_override(self, fig2_graph):
        motif = Motif.cycle(3, delta=1)
        assert (
            count_temporal_motif_instances(
                fig2_graph.to_time_series(), motif, delta=10
            )
            == 2
        )
