"""The paper-example fixtures themselves."""

from __future__ import annotations

from repro.datasets.fixtures import (
    figure1_graph,
    figure2_graph,
    figure7_match_graph,
)


class TestFigure2Fixture:
    def test_edge_inventory(self):
        g = figure2_graph()
        assert g.num_nodes == 4
        assert g.num_edges == 10
        assert g.num_connected_pairs == 7

    def test_series_contents(self):
        ts = figure2_graph().to_time_series()
        assert list(ts.series("u1", "u2")) == [(13, 5), (15, 7)]
        assert list(ts.series("u3", "u1")) == [(10, 10)]
        assert list(ts.series("u4", "u3")) == [(19, 5), (21, 4)]


class TestFigure7Fixture:
    def test_series_match_paper(self):
        ts = figure7_match_graph().to_time_series()
        assert list(ts.series("u3", "u1")) == [(10, 5), (13, 2), (15, 3), (18, 7)]
        assert list(ts.series("u1", "u2")) == [(9, 4), (11, 3), (16, 3)]
        assert list(ts.series("u2", "u3")) == [(14, 4), (19, 6), (24, 3), (25, 2)]


class TestFigure1Fixture:
    def test_shape(self):
        g = figure1_graph()
        assert g.num_nodes == 4
        assert g.num_edges == 7
