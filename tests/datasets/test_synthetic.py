"""Synthetic dataset generators: determinism, statistics, planted signal."""

from __future__ import annotations

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif
from repro.datasets.synthetic import (
    DATASET_GENERATORS,
    bitcoin_like,
    facebook_like,
    passenger_like,
    planted_cascade_graph,
)
from repro.graph.statistics import dataset_statistics


class TestDeterminism:
    @pytest.mark.parametrize("generator", [bitcoin_like, facebook_like, passenger_like])
    def test_same_seed_same_graph(self, generator):
        a = generator(scale=0.3, seed=5)
        b = generator(scale=0.3, seed=5)
        assert a.interactions_sorted() == b.interactions_sorted()

    @pytest.mark.parametrize("generator", [bitcoin_like, facebook_like, passenger_like])
    def test_different_seed_different_graph(self, generator):
        a = generator(scale=0.3, seed=5)
        b = generator(scale=0.3, seed=6)
        assert a.interactions_sorted() != b.interactions_sorted()


class TestStatisticalShape:
    def test_bitcoin_statistics(self):
        stats = dataset_statistics(bitcoin_like())
        # Paper: avg flow/edge ≈ 4.85, sparse, rare parallel edges.
        assert 3.0 <= stats.average_flow <= 8.0
        assert stats.edges_per_pair < 2.0
        assert stats.density < 0.05

    def test_facebook_statistics(self):
        stats = dataset_statistics(facebook_like())
        # Paper: avg flow ≈ 3.0 (30 s interaction counts).
        assert 2.0 <= stats.average_flow <= 5.0
        assert stats.edges_per_pair >= 1.5

    def test_facebook_flows_are_integral_counts(self):
        g = facebook_like(scale=0.4)
        assert all(float(it.flow).is_integer() for it in g.interactions())

    def test_facebook_timestamps_bucketed(self):
        g = facebook_like(scale=0.4)
        assert all(it.time % 30.0 == 0.0 for it in g.interactions())

    def test_passenger_statistics(self):
        stats = dataset_statistics(passenger_like())
        # Paper: avg flow ≈ 1.9 passengers; ours runs slightly leaner (1.3+)
        # to keep the flow constraint statistically binding (DESIGN.md §2).
        assert 1.2 <= stats.average_flow <= 2.5
        assert stats.num_nodes < 100

    def test_passenger_flows_are_passenger_counts(self):
        g = passenger_like(scale=0.4)
        flows = {it.flow for it in g.interactions()}
        assert all(f >= 1 and float(f).is_integer() for f in flows)

    def test_scale_shrinks_graph(self):
        small = bitcoin_like(scale=0.2)
        full = bitcoin_like(scale=1.0)
        assert small.num_edges < full.num_edges
        assert small.num_nodes < full.num_nodes


class TestRegistry:
    def test_registry_contents(self):
        assert list(DATASET_GENERATORS) == ["Bitcoin", "Facebook", "Passenger"]
        for generator, delta, phi in DATASET_GENERATORS.values():
            assert callable(generator)
            assert delta > 0 and phi > 0


class TestPlantedCascade:
    def test_planted_chain_is_found(self):
        graph, events = planted_cascade_graph((0, 1, 2, 3), seed=4)
        engine = FlowMotifEngine(graph)
        motif = Motif.chain(4, delta=100, phi=10)
        result = engine.find_instances(motif)
        planted_first_events = {hop[0][0] for hop in events}
        found = False
        for inst in result.instances:
            if inst.vertex_map == (0, 1, 2, 3):
                times = {run.first_time for run in inst.runs}
                if planted_first_events <= times:
                    found = True
        assert found, "planted cascade not recovered"

    def test_planted_cycle_is_found(self):
        graph, _ = planted_cascade_graph((0, 1, 2, 0), seed=9)
        engine = FlowMotifEngine(graph)
        motif = Motif.cycle(3, delta=100, phi=10)
        result = engine.find_instances(motif)
        assert any(i.vertex_map == (0, 1, 2) for i in result.instances)

    def test_cascade_flow_conservation(self):
        _, events = planted_cascade_graph((0, 1, 2, 3), seed=4, amount=50.0)
        hop_totals = [sum(f for _, f in hop) for hop in events]
        # loss=0.0 in the fixture: every hop forwards the full amount.
        for total in hop_totals:
            assert total == pytest.approx(50.0)

    def test_cascade_hops_are_time_ordered(self):
        _, events = planted_cascade_graph((0, 1, 2, 3, 0), seed=11)
        for earlier, later in zip(events, events[1:]):
            assert max(t for t, _ in earlier) < min(t for t, _ in later)


class TestCascadeSignal:
    """Cascades make high-φ instances; noise alone does not."""

    def test_instances_concentrate_on_planted_paths(self):
        graph, _ = planted_cascade_graph(
            (5, 6, 7), seed=2, noise_edges=60, amount=40.0
        )
        engine = FlowMotifEngine(graph)
        motif = Motif.chain(3, delta=100, phi=20)
        result = engine.find_instances(motif)
        assert result.count >= 1
        assert all(i.vertex_map == (5, 6, 7) for i in result.instances)
