"""Shared-prefix phase-2 evaluation must equal per-match enumeration."""

from __future__ import annotations

import random

import pytest

from repro.core.enumeration import find_instances
from repro.core.matching import find_structural_matches
from repro.core.motif import Motif, paper_motifs
from repro.core.prefix_sharing import find_instances_shared
from repro.graph.interaction import InteractionGraph


def random_graph(seed, nodes=7, events=60, horizon=60):
    rng = random.Random(seed)
    g = InteractionGraph()
    for _ in range(events):
        src = rng.randrange(nodes)
        dst = rng.randrange(nodes)
        while dst == src:
            dst = rng.randrange(nodes)
        g.add_interaction(src, dst, rng.uniform(0, horizon), rng.uniform(0.5, 5))
    return g


def keys(instances):
    return {i.canonical_key() for i in instances}


class TestSharedEqualsPlain:
    @pytest.mark.parametrize("seed", range(6))
    def test_chain(self, seed):
        g = random_graph(seed)
        motif = Motif.chain(3, delta=15, phi=1)
        matches = find_structural_matches(g.to_time_series(), motif)
        assert keys(find_instances_shared(matches)) == keys(
            find_instances(matches)
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_cycle(self, seed):
        g = random_graph(seed, nodes=5)
        motif = Motif.cycle(3, delta=15, phi=0)
        matches = find_structural_matches(g.to_time_series(), motif)
        assert keys(find_instances_shared(matches)) == keys(
            find_instances(matches)
        )

    def test_figure7(self, fig7_graph):
        motif = Motif.cycle(3, delta=10, phi=0)
        matches = find_structural_matches(fig7_graph.to_time_series(), motif)
        assert keys(find_instances_shared(matches)) == keys(
            find_instances(matches)
        )

    def test_full_catalog(self):
        g = random_graph(123, nodes=8, events=80)
        ts = g.to_time_series()
        for name, motif in paper_motifs(delta=12, phi=1).items():
            matches = find_structural_matches(ts, motif)
            assert keys(find_instances_shared(matches)) == keys(
                find_instances(matches)
            ), name

    def test_empty_matches(self):
        assert find_instances_shared([]) == []

    def test_streaming_callback(self, fig7_graph):
        motif = Motif.cycle(3, delta=10, phi=0)
        matches = find_structural_matches(fig7_graph.to_time_series(), motif)
        seen = []
        returned = find_instances_shared(matches, on_instance=seen.append)
        assert returned == []
        assert len(seen) == 6

    def test_constraint_overrides(self, fig7_graph):
        motif = Motif.cycle(3, delta=999, phi=99)
        matches = find_structural_matches(fig7_graph.to_time_series(), motif)
        shared = find_instances_shared(matches, delta=10, phi=5)
        plain = find_instances(matches, delta=10, phi=5)
        assert keys(shared) == keys(plain)
